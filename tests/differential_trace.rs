//! Differential tests for the observability layer's no-perturbation
//! guarantee: running with tracing and metrics enabled must be
//! *observationally identical* — bit for bit, energy included — to the
//! same run with observability off, under every engine.
//!
//! This is the contract that makes the trace trustworthy: emission never
//! touches simulation state, metrics sampling only reads cumulative
//! counters the power monitor already maintains, so instrumented runs
//! measure the machine, not the measurement.
//!
//! Set `SWALLOW_ENGINE` (`lockstep` | `fastforward` | `parallel`, with
//! `SWALLOW_THREADS`) to pin the suite to one engine, as the CI matrix
//! does for its dedicated parallel leg.

use swallow_repro::swallow::energy::NodeCategory;
use swallow_repro::swallow::{EngineMode, SwallowSystem, SystemBuilder, TimeDelta};
use swallow_repro::swallow_workloads::{client_server, farm, pipeline};

/// Thread counts exercised under the parallel engine.
const PARALLEL_THREADS: [usize; 2] = [1, 4];

/// Everything observable about a finished run. Energy compares
/// *bit-for-bit*: same engine, same schedule, so even float association
/// must be untouched by observability.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    quiescent: bool,
    now_ps: u64,
    instret: u64,
    outputs: Vec<String>,
    energy: Vec<(NodeCategory, f64)>,
}

fn fingerprint(system: &SwallowSystem, quiescent: bool) -> Fingerprint {
    Fingerprint {
        quiescent,
        now_ps: system.now().as_ps(),
        instret: system.perf_report().instret,
        outputs: system
            .nodes()
            .map(|n| system.output(n).to_owned())
            .collect(),
        energy: system
            .power_report()
            .ledger
            .iter()
            .map(|(cat, e)| (cat, e.as_joules()))
            .collect(),
    }
}

/// Engines the on/off comparison runs under (`SWALLOW_ENGINE` pins one).
fn engines_under_test() -> Vec<EngineMode> {
    if let Ok(name) = std::env::var("SWALLOW_ENGINE") {
        let threads: usize = std::env::var("SWALLOW_THREADS")
            .ok()
            .and_then(|t| t.parse().ok())
            .unwrap_or(0);
        return vec![match name.as_str() {
            "lockstep" => EngineMode::LockStep,
            "fastforward" => EngineMode::FastForward,
            "parallel" => EngineMode::Parallel { threads },
            other => panic!("unknown SWALLOW_ENGINE {other:?}"),
        }];
    }
    let mut engines = vec![EngineMode::LockStep, EngineMode::FastForward];
    engines.extend(PARALLEL_THREADS.map(|threads| EngineMode::Parallel { threads }));
    engines
}

/// Runs the same setup twice per engine — observability off, then
/// tracing + metrics on — and requires identical fingerprints. Also
/// checks the instrumented run actually captured something.
fn assert_observability_is_free(budget: TimeDelta, mut setup: impl FnMut(&mut SwallowSystem)) {
    for engine in engines_under_test() {
        let mut run = |instrumented: bool| {
            let mut builder = SystemBuilder::new().engine(engine);
            if instrumented {
                builder = builder.tracing().metrics();
            }
            let mut system = builder.build().expect("builds");
            setup(&mut system);
            let quiescent = system.run_until_quiescent(budget);
            (fingerprint(&system, quiescent), system)
        };
        let (plain, _) = run(false);
        let (traced, system) = run(true);
        assert_eq!(
            traced, plain,
            "{engine:?}: tracing+metrics must not perturb the run"
        );
        let log = system.trace_log();
        assert!(
            !log.is_empty(),
            "{engine:?}: instrumented run captured no trace events"
        );
        assert!(
            !system.machine().metrics().rows().is_empty(),
            "{engine:?}: instrumented run recorded no supply rows"
        );
        // The merged log must be chronological whatever the engine did.
        assert!(
            log.records.windows(2).all(|w| w[0].at <= w[1].at),
            "{engine:?}: merged trace log out of order"
        );
    }
}

#[test]
fn pipeline_is_unperturbed_by_observability() {
    let spec = pipeline::PipelineSpec {
        stages: 6,
        items: 24,
        work_per_item: 3,
    };
    assert_observability_is_free(TimeDelta::from_ms(20), |system| {
        pipeline::generate(&spec, system.machine().spec())
            .expect("generates")
            .apply(system)
            .expect("loads");
    });
}

#[test]
fn farm_is_unperturbed_by_observability() {
    let spec = farm::FarmSpec {
        workers: 5,
        tasks: 20,
        work_per_task: 4,
    };
    assert_observability_is_free(TimeDelta::from_ms(20), |system| {
        farm::generate(&spec, system.machine().spec())
            .expect("generates")
            .apply(system)
            .expect("loads");
    });
}

#[test]
fn ping_pong_is_unperturbed_by_observability() {
    let spec = client_server::ServiceSpec {
        clients: 2,
        requests_per_client: 8,
    };
    assert_observability_is_free(TimeDelta::from_ms(50), |system| {
        client_server::generate(&spec, system.machine().spec())
            .expect("generates")
            .apply(system)
            .expect("loads");
    });
}

#[test]
fn parallel_instrumented_runs_are_bit_identical() {
    // Determinism of the *observability* output itself: under the
    // parallel engine the merged trace and the metrics rows must come out
    // identical run after run (rings travel with cores across host
    // threads; the merge is order-fixed).
    let spec = pipeline::PipelineSpec {
        stages: 6,
        items: 24,
        work_per_item: 3,
    };
    let run = || {
        let mut system = SystemBuilder::new()
            .parallel(4)
            .tracing()
            .metrics()
            .build()
            .expect("builds");
        pipeline::generate(&spec, system.machine().spec())
            .expect("generates")
            .apply(&mut system)
            .expect("loads");
        system.run_until_quiescent(TimeDelta::from_ms(20));
        system.flush_metrics();
        (
            system.trace_log(),
            system.machine().metrics().rows().to_vec(),
        )
    };
    let (log_a, rows_a) = run();
    let (log_b, rows_b) = run();
    assert_eq!(log_a, log_b, "merged trace logs differ between runs");
    assert_eq!(rows_a, rows_b, "metrics rows differ between runs");
    assert!(!log_a.is_empty() && !rows_a.is_empty());
}
