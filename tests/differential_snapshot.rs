//! Differential continuation tests for the snapshot/restore subsystem:
//! checkpointing a running machine at an arbitrary instant and restoring
//! it — under *any* engine — must continue bit-identically with the
//! original run. The fingerprint is the same one the engine-equivalence
//! suite uses (final instant, retired instructions, program outputs,
//! fault counters all exact; energy within f64 association), plus one
//! extra obligation unique to snapshots: `restore(snapshot())` must
//! re-emit the very same bytes, proving the codec is lossless.
//!
//! Scenarios cover the representative regimes: a communication-heavy
//! pipeline, a master/worker farm, long timer sleeps (checkpointing
//! cores that are mid-`tmwait`), and a fault storm where the checkpoint
//! lands *inside* a corruption window, a core stall and a brownout — so
//! the fault engine's cursor, the derated frequencies and the fabric's
//! per-link fault windows all have to survive the round trip.
//!
//! `SWALLOW_ENGINE` / `SWALLOW_THREADS` pin the restore targets to one
//! engine, matching the CI matrix legs.

use std::sync::OnceLock;

use swallow_repro::swallow::energy::NodeCategory;
use swallow_repro::swallow::noc::{Direction, LinkId};
use swallow_repro::swallow::{
    Assembler, EngineMode, EpochMode, FaultCounters, FaultPlan, NodeId, SwallowSystem,
    SystemBuilder, Time, TimeDelta,
};
use swallow_repro::swallow_workloads::{farm, pipeline};
use swallow_testkit::proptest::prelude::*;

/// Relative energy tolerance between engines (f64 association only).
const ENERGY_RTOL: f64 = 1e-9;

/// Everything observable about a finished continuation. `PartialEq`
/// compares energy bit-for-bit (used for same-engine determinism).
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    quiescent: bool,
    now_ps: u64,
    instret: u64,
    outputs: Vec<String>,
    energy: Vec<(NodeCategory, f64)>,
    faults: FaultCounters,
}

fn fingerprint(system: &SwallowSystem, quiescent: bool) -> Fingerprint {
    Fingerprint {
        quiescent,
        now_ps: system.now().as_ps(),
        instret: system.perf_report().instret,
        outputs: system
            .nodes()
            .map(|n| system.output(n).to_owned())
            .collect(),
        energy: system
            .power_report()
            .ledger
            .iter()
            .map(|(cat, e)| (cat, e.as_joules()))
            .collect(),
        faults: system.machine().fault_counters(),
    }
}

fn assert_continuation(
    at_us: u64,
    engine: EngineMode,
    epoch: Option<EpochMode>,
    got: &Fingerprint,
    reference: &Fingerprint,
) {
    let who = format!("restore@{at_us}µs under {engine:?}/{epoch:?}");
    assert_eq!(
        got.quiescent, reference.quiescent,
        "{who}: quiescence verdicts differ"
    );
    assert_eq!(
        got.now_ps, reference.now_ps,
        "{who}: final simulated time differs"
    );
    assert_eq!(
        got.instret, reference.instret,
        "{who}: retired instruction counts differ"
    );
    assert_eq!(got.outputs, reference.outputs, "{who}: outputs differ");
    assert_eq!(
        got.faults, reference.faults,
        "{who}: fault/resilience counters differ"
    );
    for (&(cat, a), &(_, b)) in got.energy.iter().zip(&reference.energy) {
        let scale = a.abs().max(b.abs()).max(f64::MIN_POSITIVE);
        assert!(
            (a - b).abs() <= ENERGY_RTOL * scale,
            "{who}: {cat} energy diverged: {a} J vs {b} J"
        );
    }
}

/// The engines (and, for the parallel engine, epoch modes) every
/// checkpoint is restored under. `SWALLOW_ENGINE` / `SWALLOW_THREADS`
/// pin the list to one engine for the CI matrix legs.
fn restore_targets() -> Vec<(EngineMode, Option<EpochMode>)> {
    if let Ok(name) = std::env::var("SWALLOW_ENGINE") {
        let threads: usize = std::env::var("SWALLOW_THREADS")
            .ok()
            .and_then(|t| t.parse().ok())
            .unwrap_or(0);
        return match name.as_str() {
            "lockstep" => vec![(EngineMode::LockStep, None)],
            "fastforward" => vec![(EngineMode::FastForward, None)],
            "parallel" => vec![
                (
                    EngineMode::Parallel { threads },
                    Some(EpochMode::Negotiated),
                ),
                (EngineMode::Parallel { threads }, Some(EpochMode::Global)),
            ],
            other => panic!("unknown SWALLOW_ENGINE {other:?}"),
        };
    }
    vec![
        (EngineMode::LockStep, None),
        (EngineMode::FastForward, None),
        (
            EngineMode::Parallel { threads: 1 },
            Some(EpochMode::Negotiated),
        ),
        (
            EngineMode::Parallel { threads: 4 },
            Some(EpochMode::Negotiated),
        ),
        (EngineMode::Parallel { threads: 4 }, Some(EpochMode::Global)),
    ]
}

/// Restores `bytes`, re-targets the engine, and runs to quiescence.
fn continue_after_restore(
    bytes: &[u8],
    engine: EngineMode,
    epoch: Option<EpochMode>,
    budget: TimeDelta,
) -> Fingerprint {
    let mut system = SwallowSystem::restore(bytes).expect("snapshot restores");
    system.machine_mut().set_engine(engine);
    if let Some(mode) = epoch {
        system.machine_mut().set_epoch_mode(mode);
    }
    let quiescent = system.run_until_quiescent(budget);
    fingerprint(&system, quiescent)
}

/// The core harness: for each checkpoint instant, run a cold system to
/// that instant, snapshot it, let the *original* finish (the reference),
/// then restore the snapshot under every engine under test and demand a
/// bit-identical continuation. Also checks the round trip is lossless:
/// restoring and re-snapshotting must reproduce the same bytes.
fn differential_snapshot(
    budget: TimeDelta,
    instants_us: &[u64],
    builder: impl Fn() -> SystemBuilder,
    mut setup: impl FnMut(&mut SwallowSystem),
) -> Fingerprint {
    let mut last = None;
    for &us in instants_us {
        let mut original = builder().build().expect("builds");
        setup(&mut original);
        original.run_for(TimeDelta::from_us(us));
        let bytes = original.snapshot();
        let reread = SwallowSystem::restore(&bytes).expect("snapshot restores");
        assert!(
            bytes == reread.snapshot(),
            "snapshot at {us} µs: restore→snapshot is not byte-identical"
        );
        let quiescent = original.run_until_quiescent(budget);
        let reference = fingerprint(&original, quiescent);
        for (engine, epoch) in restore_targets() {
            let got = continue_after_restore(&bytes, engine, epoch, budget);
            assert_continuation(us, engine, epoch, &got, &reference);
        }
        last = Some(reference);
    }
    last.expect("at least one checkpoint instant")
}

fn t(us: u64) -> Time {
    Time::ZERO + TimeDelta::from_us(us)
}

const PIPE: pipeline::PipelineSpec = pipeline::PipelineSpec {
    stages: 6,
    items: 24,
    work_per_item: 3,
};

fn load_pipeline(system: &mut SwallowSystem) {
    pipeline::generate(&PIPE, system.machine().spec())
        .expect("generates")
        .apply(system)
        .expect("loads");
}

/// One link of the aggregated internal bundle between two nodes.
fn internal_link_between(system: &SwallowSystem, from: u16, to: u16) -> LinkId {
    system
        .machine()
        .link_descs()
        .iter()
        .find(|d| d.dir == Direction::Internal && d.from == NodeId(from) && d.to == NodeId(to))
        .expect("internal link exists")
        .id
}

#[test]
fn pipeline_checkpoints_continue_bit_identically() {
    // Early (wind-up), steady-state and late (drain) checkpoints of the
    // communication-heavy pipeline: tokens are in flight, sticky flows
    // are bound and channel endpoints hold partial state at all three.
    let reference = differential_snapshot(
        TimeDelta::from_ms(20),
        &[2, 9, 17],
        SystemBuilder::new,
        load_pipeline,
    );
    assert!(reference.quiescent, "pipeline must drain");
    assert_eq!(
        reference.outputs[5].trim(),
        pipeline::checksum(&PIPE).to_string()
    );
}

#[test]
fn farm_checkpoints_continue_bit_identically() {
    // Master/worker farm: round-robin dispatch state lives in registers
    // and per-worker channels; both checkpoints land mid-dispatch.
    let spec = farm::FarmSpec {
        workers: 5,
        tasks: 20,
        work_per_task: 4,
    };
    let reference = differential_snapshot(
        TimeDelta::from_ms(50),
        &[3, 11],
        SystemBuilder::new,
        |system| {
            farm::generate(&spec, system.machine().spec())
                .expect("generates")
                .apply(system)
                .expect("loads");
        },
    );
    assert!(reference.quiescent, "farm must drain");
    assert_eq!(
        reference.outputs[0].trim(),
        farm::expected_sum(&spec).to_string()
    );
}

#[test]
fn timer_sleep_checkpoints_continue_bit_identically() {
    // Cores parked in `tmwait` (wakes at 500–650 µs on the 10 ns timer
    // tick): the 100 µs checkpoint catches all three mid-sleep, the
    // 600 µs one catches a mix of woken and still-sleeping cores. The
    // restored runs must land on exactly the original wake instants.
    let load_sleepers = |system: &mut SwallowSystem| {
        for (node, ticks) in [(0u16, 50_000u32), (7, 63_456), (15, 65_001)] {
            let program = Assembler::new()
                .assemble(&format!(
                    "
                        getr  r0, timer
                        in    r1, r0
                        add   r2, r1, {ticks}
                        tmwait r0, r2
                        in    r3, r0
                        lsu   r4, r3, r2      # woke early? must be 0
                        print r4
                        freet
                    "
                ))
                .expect("assembles");
            system.load_program(NodeId(node), &program).expect("fits");
        }
    };
    let reference = differential_snapshot(
        TimeDelta::from_ms(10),
        &[100, 600],
        SystemBuilder::new,
        load_sleepers,
    );
    assert!(reference.quiescent, "all sleepers must wake and drain");
    for node in [0usize, 7, 15] {
        assert_eq!(
            reference.outputs[node].trim(),
            "0",
            "core {node} woke early"
        );
    }
}

#[test]
fn mid_fault_window_checkpoints_continue_bit_identically() {
    // The hard case: checkpoints taken *inside* active fault windows.
    // At 6 µs a corruption window is live on one link and a core stall
    // on node 2 is in progress; at 13 µs every core is browned out to
    // 600/1000 of nominal frequency with derated power models. The
    // fault engine's cursor, the saved nominal operating points and the
    // fabric's fault windows must all restore exactly — under every
    // engine — for the timelines to agree.
    let probe = SystemBuilder::new().build().expect("builds");
    let hop01 = internal_link_between(&probe, 0, 1);
    let hop23 = internal_link_between(&probe, 2, 3);
    let plan = FaultPlan::new()
        .link_down(t(2), hop01)
        .link_up(t(8), hop01)
        .corrupt_window(t(5), hop23, TimeDelta::from_us(2))
        .stall_core(t(6), NodeId(2), TimeDelta::from_us(3))
        .brownout(t(12), 600, TimeDelta::from_us(3));
    let reference = differential_snapshot(
        TimeDelta::from_ms(20),
        &[6, 13],
        || SystemBuilder::new().faults(plan.clone()),
        load_pipeline,
    );
    assert!(reference.quiescent, "storm must be survivable");
    assert_eq!(
        reference.outputs[5].trim(),
        pipeline::checksum(&PIPE).to_string(),
        "checksum must survive the storm"
    );
    assert_eq!(reference.faults.core_stalls, 1);
    assert_eq!(reference.faults.brownouts, 1);
    assert!(reference.faults.reroutes >= 2);
}

/// A snapshot of a busy machine, built once and shared by the corruption
/// property below (the bytes themselves are deterministic).
fn busy_snapshot() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut system = SystemBuilder::new().build().expect("builds");
        load_pipeline(&mut system);
        system.run_for(TimeDelta::from_us(5));
        system.snapshot()
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case is a whole-machine run plus two restores
        .. ProptestConfig::default()
    })]

    /// Random snapshot instants on random sleeper programs: the
    /// snapshot→restore→snapshot round trip must be byte-identical, and
    /// the restored continuation must reach the same quiescent state.
    #[test]
    fn random_instants_round_trip_byte_identically(
        schedule in proptest::collection::vec((0u16..16, 1u32..60_000), 1..6),
        instant_us in 1u64..400,
    ) {
        let mut system = SystemBuilder::new().build().expect("builds");
        let mut nodes_used = Vec::new();
        for &(node, ticks) in &schedule {
            if nodes_used.contains(&node) {
                continue; // one sleeper per core
            }
            nodes_used.push(node);
            let program = Assembler::new()
                .assemble(&format!(
                    "
                        getr  r0, timer
                        in    r1, r0
                        add   r2, r1, {ticks}
                        tmwait r0, r2
                        in    r3, r0
                        lsu   r4, r3, r2
                        print r4
                        freet
                    "
                ))
                .expect("assembles");
            system.load_program(NodeId(node), &program).expect("fits");
        }
        system.run_for(TimeDelta::from_us(instant_us));
        let bytes = system.snapshot();
        let restored = SwallowSystem::restore(&bytes).expect("snapshot restores");
        prop_assert_eq!(restored.now(), system.now());
        prop_assert!(
            bytes == restored.snapshot(),
            "restore→snapshot must be byte-identical"
        );
        let budget = TimeDelta::from_ms(10);
        let quiescent = system.run_until_quiescent(budget);
        let reference = fingerprint(&system, quiescent);
        let got = continue_after_restore(&bytes, EngineMode::FastForward, None, budget);
        prop_assert_eq!(&got.outputs, &reference.outputs);
        prop_assert_eq!(got.now_ps, reference.now_ps);
        prop_assert_eq!(got.instret, reference.instret);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256, // pure parsing, no simulation
        .. ProptestConfig::default()
    })]

    /// Flipping any single byte of a valid snapshot must yield a clean
    /// decode error — never a panic, never a silently-wrong machine
    /// (the per-section checksums and header checks see to that).
    #[test]
    fn corrupt_one_byte_is_rejected_not_panicking(
        offset in 0usize..usize::MAX,
        mask in 1u8..=255,
    ) {
        let mut bytes = busy_snapshot().to_vec();
        let offset = offset % bytes.len();
        bytes[offset] ^= mask;
        prop_assert!(
            SwallowSystem::restore(&bytes).is_err(),
            "flipping byte {} must be rejected",
            offset
        );
    }

    /// Truncating a valid snapshot anywhere must also fail cleanly.
    #[test]
    fn truncated_snapshots_are_rejected_not_panicking(
        keep in 0usize..usize::MAX,
    ) {
        let bytes = busy_snapshot();
        let keep = keep % bytes.len(); // strictly shorter than the original
        prop_assert!(
            SwallowSystem::restore(&bytes[..keep]).is_err(),
            "truncating to {} bytes must be rejected",
            keep
        );
    }
}
