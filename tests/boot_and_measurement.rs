//! §II and §V.E features end-to-end: loading a program over the Ethernet
//! bridge, and capturing ADC traces on the measurement daughter-board.

use swallow_repro::swallow::energy::{AdcBoard, AdcConfig};
use swallow_repro::swallow::{Assembler, NodeId, SystemBuilder, TimeDelta};

/// A resident first-stage boot loader: receives `[len, words..] END` on
/// its channel end, stores the image at 0x4000 and jumps to it. This is
/// how a physical Swallow is programmed: "using this bridge, it is
/// possible to load programs into and stream data in/out of Swallow over
/// Ethernet" (§V.E).
const BOOTLOADER: &str = "
        getr  r0, chanend        # boot channel
        in    r1, r0             # image length in words
        ldc   r2, 0x4000         # load base
        mov   r3, r2
    bl_loop:
        in    r4, r0
        stw   r4, r3[0]
        add   r3, r3, 4
        sub   r1, r1, 1
        bt    r1, bl_loop
        chkct r0, end
        bau   r2                 # enter the downloaded program
";

#[test]
fn program_loads_over_the_ethernet_bridge() {
    let mut system = SystemBuilder::new().bridge().build().expect("builds");
    let boot = Assembler::new().assemble(BOOTLOADER).expect("assembles");
    system.load_program(NodeId(6), &boot).expect("fits");

    // The payload is ordinary assembly; branches are pc-relative, so it
    // runs at the 0x4000 load address unmodified.
    let payload = Assembler::new()
        .assemble(
            "
                ldc   r0, 4
                ldc   r1, 0
            acc:
                add   r1, r1, r0
                sub   r0, r0, 1
                bt    r0, acc
                print r1          # 4+3+2+1
                freet
            ",
        )
        .expect("assembles");

    // Host side: stream [len, words...] END to the boot loader's chanend.
    let target = swallow_repro::swallow::ResourceId::new(
        NodeId(6),
        0,
        swallow_repro::swallow::ResType::Chanend,
    );
    {
        let bridge = system.machine_mut().bridge_mut().expect("fitted");
        bridge.send_word(target, payload.words().len() as u32);
        for &w in payload.words() {
            bridge.send_word(target, w);
        }
        bridge.send_ct(target, swallow_repro::swallow::isa::ControlToken::END);
    }

    assert!(
        system.run_until_quiescent(TimeDelta::from_ms(5)),
        "boot did not complete: {:?}",
        system.first_trap()
    );
    assert_eq!(system.output(NodeId(6)), "10\n");
    // The image really lives at 0x4000.
    assert_eq!(
        system.machine().core(NodeId(6)).sram().read_u32(0x4000),
        Ok(payload.words()[0])
    );
}

#[test]
fn adc_board_captures_power_traces() {
    let mut system = SystemBuilder::new().build().expect("builds");
    // Fit the measurement daughter-board: all five channels at 1 MS/s
    // (its fastest simultaneous mode, §II). The monitor samples it on
    // its 1 µs cadence.
    system
        .machine_mut()
        .monitor_mut()
        .fit_adc(0, AdcBoard::new(AdcConfig::all_channels_max()));

    // Load half the cores so rails differ.
    let busy = Assembler::new()
        .assemble("wl: add r1, r1, 1\n bu wl")
        .expect("assembles");
    for n in 0..8u16 {
        system.load_program(NodeId(n), &busy).expect("fits");
    }
    system.run_for(TimeDelta::from_us(12));

    let adc = system.machine().monitor().adc(0).expect("fitted");
    // ~11 samples in 12 µs at 1 MS/s (first due at t = 1 µs).
    let trace0 = adc.trace(0).expect("channel 0");
    assert!(
        (10..=13).contains(&trace0.len()),
        "samples = {}",
        trace0.len()
    );
    // Rail 0 (cores 0..4: packages 0,1 — all busy) out-draws rail 3
    // (cores 12..16 — idle). Busy single-thread cores ≈ 133 mW each.
    let rail0 = trace0.mean_power().as_milliwatts();
    let rail3 = adc
        .trace(3)
        .expect("channel 3")
        .mean_power()
        .as_milliwatts();
    assert!(rail0 > rail3 + 50.0, "rail0 = {rail0}, rail3 = {rail3}");
    // The I/O rail carries the support-logic floor.
    let io = adc
        .trace(4)
        .expect("io channel")
        .mean_power()
        .as_milliwatts();
    assert!((140.0..200.0).contains(&io), "io rail = {io}");
    // Total mean across channels equals the monitor's slice load.
    let total = adc.total_mean_power().as_watts();
    let load = system.machine().monitor().slice_load_power(0).as_watts();
    assert!((total - load).abs() / load < 0.15, "{total} vs {load}");
}
