//! Repository-level integration tests: whole-machine scenarios spanning
//! every crate (ISA → core → fabric → board → workloads).

use swallow_repro::swallow::{Assembler, Frequency, NodeId, SystemBuilder, TimeDelta};
use swallow_repro::swallow_workloads::{client_server, farm, pipeline, shared_mem, traffic};

#[test]
fn mixed_workloads_share_one_machine() {
    // A pipeline on nodes 0..4 and a client/server group on nodes 8..12,
    // concurrently, without interference.
    let mut system = SystemBuilder::new().build().expect("builds");

    let pipe_spec = pipeline::PipelineSpec {
        stages: 4,
        items: 16,
        work_per_item: 4,
    };
    pipeline::generate(&pipe_spec, system.machine().spec())
        .expect("generates")
        .apply(&mut system)
        .expect("loads");

    // Client/server shifted onto the second package row by hand: reuse
    // the generator onto a fresh system is simpler — here we assemble a
    // small dedicated pair instead.
    let server = Assembler::new()
        .assemble(
            "
                getr  r0, chanend
                getr  r1, chanend
                ldc   r3, 6
            svl:
                in    r4, r0
                in    r5, r0
                chkct r0, end
                setd  r1, r4
                add   r6, r5, r5
                out   r1, r6
                outct r1, end
                sub   r3, r3, 1
                bt    r3, svl
                freet
            ",
        )
        .expect("assembles");
    system.load_program(NodeId(8), &server).expect("fits");
    for (i, node) in [9u16, 10, 11].into_iter().enumerate() {
        let client = Assembler::new()
            .assemble(&format!(
                "
                    getr  r0, chanend
                    getr  r1, chanend
                    ldc   r2, 0x00080002
                    setd  r1, r2
                    ldc   r3, 2
                    ldc   r4, {value}
                    ldc   r6, {my}
                cl:
                    out   r1, r6
                    out   r1, r4
                    outct r1, end
                    in    r7, r0
                    chkct r0, end
                    sub   r3, r3, 1
                    bt    r3, cl
                    print r7
                    freet
                ",
                value = 10 * (i + 1),
                my = (node as u32) << 16 | 2,
            ))
            .expect("assembles");
        system.load_program(NodeId(node), &client).expect("fits");
    }

    assert!(
        system.run_until_quiescent(TimeDelta::from_ms(20)),
        "machine did not drain: {:?}",
        system.first_trap()
    );
    // Pipeline checksum correct despite the unrelated traffic.
    assert_eq!(
        system.output(NodeId(3)).trim(),
        pipeline::checksum(&pipe_spec).to_string()
    );
    // Each client got 2×value.
    assert_eq!(system.output(NodeId(9)).trim(), "20");
    assert_eq!(system.output(NodeId(10)).trim(), "40");
    assert_eq!(system.output(NodeId(11)).trim(), "60");
}

#[test]
fn event_select_server_multiplexes_two_remote_clients() {
    // One thread on node 4 serves two channels by events (`setv`/`eeu`/
    // `waiteu`) — the XS1 select mechanism — with clients on two other
    // cores. No per-channel threads, no polling.
    let mut system = SystemBuilder::new().build().expect("builds");
    let server = Assembler::new()
        .assemble(
            "
                getr  r0, chanend      # from client A
                getr  r1, chanend      # from client B
                setv  r0, ha
                setv  r1, hb
                eeu   r0
                eeu   r1
                ldc   r5, 6            # six packets total
            loop:
                waiteu
            ha:
                in    r2, r0
                chkct r0, end
                print r2
                bu    check
            hb:
                in    r2, r1
                chkct r1, end
                neg   r2, r2
                print r2
            check:
                sub   r5, r5, 1
                bt    r5, loop
                freet
            ",
        )
        .expect("assembles");
    system.load_program(NodeId(4), &server).expect("fits");
    for (node, chan_idx, base) in [(1u16, 0u32, 10u32), (9, 1, 20)] {
        let dest = (4u32 << 16) | (chan_idx << 8) | 2; // node 4, chanend idx, type
        let client = Assembler::new()
            .assemble(&format!(
                "
                    getr  r0, chanend
                    ldc   r1, {dest}
                    setd  r0, r1
                    ldc   r3, 3
                    ldc   r4, {base}
                cl:
                    out   r0, r4
                    outct r0, end
                    add   r4, r4, 1
                    sub   r3, r3, 1
                    bt    r3, cl
                    freet
                "
            ))
            .expect("assembles");
        system.load_program(NodeId(node), &client).expect("fits");
    }
    assert!(
        system.run_until_quiescent(TimeDelta::from_ms(10)),
        "server did not finish: {:?}",
        system.first_trap()
    );
    // Six lines: 10,11,12 positive (client A) and 20,21,22 negated
    // (client B), in some interleaving.
    let mut lines: Vec<i32> = system
        .output(NodeId(4))
        .lines()
        .map(|l| l.parse().expect("number"))
        .collect();
    lines.sort_unstable();
    assert_eq!(lines, [-22, -21, -20, 10, 11, 12]);
}

#[test]
fn four_slice_grid_runs_a_long_pipeline() {
    // 2×2 slices = 64 cores; a 24-stage pipeline crosses slice
    // boundaries (FFC cables) on the way.
    let mut system = SystemBuilder::new().slices(2, 2).build().expect("builds");
    assert_eq!(system.core_count(), 64);
    let spec = pipeline::PipelineSpec {
        stages: 24,
        items: 8,
        work_per_item: 2,
    };
    let placement = pipeline::generate(&spec, system.machine().spec()).expect("generates");
    placement.apply(&mut system).expect("loads");
    assert!(
        system.run_until_quiescent(TimeDelta::from_ms(50)),
        "trap: {:?}",
        system.first_trap()
    );
    assert_eq!(
        system.output(placement.last_node()).trim(),
        pipeline::checksum(&spec).to_string()
    );
    assert_eq!(system.machine().fabric().unroutable_tokens(), 0);
}

#[test]
fn whole_machine_replay_is_deterministic() {
    let run_once = || {
        let mut system = SystemBuilder::new().build().expect("builds");
        let spec = farm::FarmSpec {
            workers: 6,
            tasks: 18,
            work_per_task: 3,
        };
        farm::generate(&spec, system.machine().spec())
            .expect("generates")
            .apply(&mut system)
            .expect("loads");
        assert!(system.run_until_quiescent(TimeDelta::from_ms(20)));
        (
            system.now().as_ps(),
            system.perf_report().instret,
            system.power_report().ledger.total().as_joules(),
            system.output(NodeId(0)).to_owned(),
        )
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "time-deterministic platform must replay identically");
}

#[test]
fn shared_memory_is_sequentially_consistent_under_load() {
    let spec = shared_mem::SharedMemSpec {
        clients: 8,
        ops_per_client: 10,
    };
    let mut system = SystemBuilder::new().build().expect("builds");
    shared_mem::generate(&spec, system.machine().spec())
        .expect("generates")
        .apply(&mut system)
        .expect("loads");
    assert!(
        system.run_until_quiescent(TimeDelta::from_ms(100)),
        "trap: {:?}",
        system.first_trap()
    );
    for i in 0..8 {
        assert_eq!(
            system.output(NodeId((i + 1) as u16)).trim(),
            shared_mem::expected_client_sum(&spec, i).to_string(),
            "client {i}"
        );
    }
}

#[test]
fn energy_scales_roughly_linearly_with_slices() {
    // Energy proportionality at system level (§III): an idle 2-slice
    // machine burns about twice the power of an idle 1-slice machine.
    let power_of = |x: u16| {
        let mut system = SystemBuilder::new().slices(x, 1).build().expect("builds");
        system.run_for(TimeDelta::from_us(5));
        system.power_report().mean_power.as_watts()
    };
    let one = power_of(1);
    let two = power_of(2);
    assert!((two / one - 2.0).abs() < 0.05, "one={one} two={two}");
}

#[test]
fn slower_clock_slows_but_does_not_break_messaging() {
    let mut system = SystemBuilder::new()
        .frequency(Frequency::from_mhz(71))
        .build()
        .expect("builds");
    traffic::stream(&traffic::StreamSpec {
        src: NodeId(0),
        dst: NodeId(8),
        words: 32,
        packet_words: 8,
    })
    .expect("generates")
    .apply(&mut system)
    .expect("loads");
    assert!(system.run_until_quiescent(TimeDelta::from_ms(10)));
    assert_eq!(system.output(NodeId(8)).trim(), "32");
}

#[test]
fn client_server_under_clock_heterogeneity() {
    // Clients at different clock speeds still get correct replies.
    let spec = client_server::ServiceSpec {
        clients: 3,
        requests_per_client: 4,
    };
    let mut system = SystemBuilder::new().build().expect("builds");
    client_server::generate(&spec, system.machine().spec())
        .expect("generates")
        .apply(&mut system)
        .expect("loads");
    system
        .machine_mut()
        .set_core_frequency(NodeId(2), Frequency::from_mhz(100));
    assert!(
        system.run_until_quiescent(TimeDelta::from_ms(50)),
        "trap: {:?}",
        system.first_trap()
    );
    for i in 0..3 {
        assert_eq!(
            system.output(NodeId((i + 1) as u16)).trim(),
            client_server::expected_client_sum(&spec, i).to_string()
        );
    }
}
