//! Differential tests for the fault-injection subsystem: a scheduled
//! fault plan must produce the *same* fault timeline, program outputs,
//! resilience counters and (within f64 association) energy under every
//! engine — lock-step, fast-forward and parallel at several thread
//! counts — and an empty plan must perturb nothing at all.
//!
//! Faults are applied serially at grid instants before any core runs
//! (DESIGN.md §3.10); these tests pin that engine-invariance down, plus
//! the recovery behaviours: retry under corruption, reroute + sticky
//! rebind around a dead link, quarantine of partitioned cores, and
//! energy conservation with retransmit energy included.

use swallow_repro::swallow::energy::NodeCategory;
use swallow_repro::swallow::noc::{Direction, LinkId};
use swallow_repro::swallow::{
    EngineMode, FaultCounters, FaultPlan, NodeId, SwallowSystem, SystemBuilder, Time, TimeDelta,
};
use swallow_repro::swallow_workloads::pipeline;

/// Relative energy tolerance between the engines (f64 association only).
const ENERGY_RTOL: f64 = 1e-9;

/// Thread counts for the parallel engine: degenerate, even and uneven.
const PARALLEL_THREADS: [usize; 3] = [1, 2, 4];

/// Everything observable about a finished faulted run, fault counters
/// included. `PartialEq` compares energy bit-for-bit (used for the
/// repeated-run determinism check).
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    quiescent: bool,
    now_ps: u64,
    instret: u64,
    outputs: Vec<String>,
    energy: Vec<(NodeCategory, f64)>,
    faults: FaultCounters,
}

fn fingerprint(system: &SwallowSystem, quiescent: bool) -> Fingerprint {
    Fingerprint {
        quiescent,
        now_ps: system.now().as_ps(),
        instret: system.perf_report().instret,
        outputs: system
            .nodes()
            .map(|n| system.output(n).to_owned())
            .collect(),
        energy: system
            .power_report()
            .ledger
            .iter()
            .map(|(cat, e)| (cat, e.as_joules()))
            .collect(),
        faults: system.machine().fault_counters(),
    }
}

fn assert_equivalent(engine: EngineMode, got: &Fingerprint, ls: &Fingerprint) {
    assert_eq!(
        got.quiescent, ls.quiescent,
        "{engine:?}: quiescence verdicts differ"
    );
    assert_eq!(
        got.now_ps, ls.now_ps,
        "{engine:?}: final simulated time differs"
    );
    assert_eq!(
        got.instret, ls.instret,
        "{engine:?}: retired instruction counts differ"
    );
    assert_eq!(
        got.outputs, ls.outputs,
        "{engine:?}: program outputs differ"
    );
    assert_eq!(
        got.faults, ls.faults,
        "{engine:?}: fault/resilience counters differ"
    );
    for (&(cat, a), &(_, b)) in got.energy.iter().zip(&ls.energy) {
        let scale = a.abs().max(b.abs()).max(f64::MIN_POSITIVE);
        assert!(
            (a - b).abs() <= ENERGY_RTOL * scale,
            "{engine:?}: {cat} energy diverged: {a} J vs lock-step {b} J"
        );
    }
}

/// Engines under test, honouring the CI matrix's `SWALLOW_ENGINE` /
/// `SWALLOW_THREADS` pinning.
fn engines_under_test() -> Vec<EngineMode> {
    if let Ok(name) = std::env::var("SWALLOW_ENGINE") {
        let threads: usize = std::env::var("SWALLOW_THREADS")
            .ok()
            .and_then(|t| t.parse().ok())
            .unwrap_or(0);
        return vec![match name.as_str() {
            "lockstep" => EngineMode::LockStep,
            "fastforward" => EngineMode::FastForward,
            "parallel" => EngineMode::Parallel { threads },
            other => panic!("unknown SWALLOW_ENGINE {other:?}"),
        }];
    }
    let mut engines = vec![EngineMode::FastForward];
    engines.extend(PARALLEL_THREADS.map(|threads| EngineMode::Parallel { threads }));
    engines
}

/// Runs the same faulted setup under lock-step and every engine under
/// test; parallel engines run twice and must be bit-identical.
fn run_differential(
    budget: TimeDelta,
    builder: impl Fn() -> SystemBuilder,
    mut setup: impl FnMut(&mut SwallowSystem),
) -> (Fingerprint, Fingerprint) {
    let mut run = |engine: EngineMode| {
        let mut system = builder().engine(engine).build().expect("builds");
        setup(&mut system);
        let quiescent = system.run_until_quiescent(budget);
        fingerprint(&system, quiescent)
    };
    let ls = run(EngineMode::LockStep);
    let mut first = None;
    for engine in engines_under_test() {
        let fp = run(engine);
        assert_equivalent(engine, &fp, &ls);
        if matches!(engine, EngineMode::Parallel { .. }) {
            let again = run(engine);
            assert_eq!(fp, again, "{engine:?}: repeated runs must be bit-identical");
        }
        first.get_or_insert(fp);
    }
    (first.expect("at least one engine under test"), ls)
}

fn t(us: u64) -> Time {
    Time::ZERO + TimeDelta::from_us(us)
}

const PIPE: pipeline::PipelineSpec = pipeline::PipelineSpec {
    stages: 6,
    items: 24,
    work_per_item: 3,
};

fn load_pipeline(system: &mut SwallowSystem) {
    pipeline::generate(&PIPE, system.machine().spec())
        .expect("generates")
        .apply(system)
        .expect("loads");
}

/// One link of the aggregated internal bundle between two nodes — the
/// kind of link a pipeline hop rides, with three spares alongside.
fn internal_link_between(system: &SwallowSystem, from: u16, to: u16) -> LinkId {
    system
        .machine()
        .link_descs()
        .iter()
        .find(|d| d.dir == Direction::Internal && d.from == NodeId(from) && d.to == NodeId(to))
        .expect("internal link exists")
        .id
}

#[test]
fn empty_fault_plan_perturbs_nothing() {
    // An explicitly-attached empty plan must leave every fingerprint
    // bit-identical to a build with no plan at all (PartialEq compares
    // the energy f64s exactly).
    let run = |with_empty_plan: bool| {
        let mut builder = SystemBuilder::new();
        if with_empty_plan {
            builder = builder.faults(FaultPlan::new());
        }
        let mut system = builder.build().expect("builds");
        load_pipeline(&mut system);
        let quiescent = system.run_until_quiescent(TimeDelta::from_ms(20));
        fingerprint(&system, quiescent)
    };
    let bare = run(false);
    let planned = run(true);
    assert!(bare.quiescent);
    assert_eq!(bare, planned, "an empty plan must be a perfect no-op");
    assert!(bare.faults.is_quiet());
}

#[test]
fn recoverable_fault_storm_runs_identically_under_every_engine() {
    // Transient link death (with recovery), a corruption window on a
    // second link, a core stall and a brownout — all while the pipeline
    // runs. Every engine must agree on the full timeline and the
    // pipeline must still deliver the right checksum.
    let probe = SystemBuilder::new().build().expect("builds");
    let hop01 = internal_link_between(&probe, 0, 1);
    let hop23 = internal_link_between(&probe, 2, 3);
    // The pipeline quiesces around 27 µs fault-free, with steady traffic
    // on every hop from ~1 µs — all instants below land inside that.
    let plan = FaultPlan::new()
        .link_down(t(2), hop01)
        .link_up(t(8), hop01)
        .corrupt_window(t(5), hop23, TimeDelta::from_us(2))
        .stall_core(t(6), NodeId(2), TimeDelta::from_us(3))
        .brownout(t(12), 600, TimeDelta::from_us(3));
    let (fp, _) = run_differential(
        TimeDelta::from_ms(20),
        || SystemBuilder::new().faults(plan.clone()),
        load_pipeline,
    );
    assert!(fp.quiescent, "storm must be survivable");
    assert_eq!(
        fp.outputs[5].trim(),
        pipeline::checksum(&PIPE).to_string(),
        "checksum must survive the storm"
    );
    assert!(fp.faults.link_downs >= 1);
    assert_eq!(fp.faults.link_ups, 1);
    assert_eq!(fp.faults.core_stalls, 1);
    assert_eq!(fp.faults.brownouts, 1);
    assert!(fp.faults.reroutes >= 2, "down and up each recompute routes");
    assert_eq!(fp.faults.quarantined_cores, 0);
}

#[test]
fn killed_link_reroutes_instead_of_deadlocking() {
    // Kill one internal link on the pipeline's first hop and never
    // restore it: flows sticky-bound to it must unbind, re-open their
    // route over a surviving aggregated link, and the pipeline must
    // drain to the correct checksum under every engine.
    let probe = SystemBuilder::new().build().expect("builds");
    let hop01 = internal_link_between(&probe, 0, 1);
    let plan = FaultPlan::new().link_down(t(1), hop01);
    let (fp, _) = run_differential(
        TimeDelta::from_ms(20),
        || SystemBuilder::new().faults(plan.clone()),
        load_pipeline,
    );
    assert!(fp.quiescent, "reroute must beat the bounded timeout");
    assert_eq!(fp.outputs[5].trim(), pipeline::checksum(&PIPE).to_string());
    assert_eq!(fp.faults.link_downs, 1);
    assert!(fp.faults.reroutes >= 1);
    assert_eq!(
        fp.faults.quarantined_cores, 0,
        "three aggregated links survive; nothing is unreachable"
    );
}

#[test]
fn drop_window_loses_tokens_identically_under_every_engine() {
    // A drop window across the pipeline's first hop: data tokens are
    // lost (their energy already spent), so the pipeline may hang — the
    // point here is that every engine agrees exactly on what was lost,
    // what was delivered and what the hang looks like.
    let probe = SystemBuilder::new().build().expect("builds");
    let descs: Vec<LinkId> = probe
        .machine()
        .link_descs()
        .iter()
        .filter(|d| d.dir == Direction::Internal && d.from == NodeId(0) && d.to == NodeId(1))
        .map(|d| d.id)
        .collect();
    let mut plan = FaultPlan::new();
    for lid in descs {
        plan = plan.drop_window(t(1), lid, TimeDelta::from_us(40));
    }
    let (fp, _) = run_differential(
        TimeDelta::from_us(300),
        || SystemBuilder::new().faults(plan.clone()),
        load_pipeline,
    );
    assert!(
        fp.faults.dropped_tokens > 0,
        "the window must actually lose data tokens"
    );
    assert!(fp.faults.delivered_rate() < 1.0);
}

#[test]
fn partition_quarantines_the_cut_off_core() {
    // Cut every link touching node 3: after the reroute the machine's
    // majority can no longer exchange tokens with it, so it must be
    // quarantined (counted and halted) — and the run must not wedge.
    let probe = SystemBuilder::new().build().expect("builds");
    let cut: Vec<LinkId> = probe
        .machine()
        .link_descs()
        .iter()
        .filter(|d| d.from == NodeId(3) || d.to == NodeId(3))
        .map(|d| d.id)
        .collect();
    assert!(!cut.is_empty());
    let mut plan = FaultPlan::new();
    for lid in cut {
        plan = plan.link_down(t(1), lid);
    }
    let (fp, _) = run_differential(
        TimeDelta::from_us(300),
        || SystemBuilder::new().faults(plan.clone()),
        load_pipeline,
    );
    assert_eq!(fp.faults.quarantined_cores, 1, "exactly node 3 is cut off");
    let mut system = SystemBuilder::new()
        .faults(
            probe
                .machine()
                .link_descs()
                .iter()
                .filter(|d| d.from == NodeId(3) || d.to == NodeId(3))
                .fold(FaultPlan::new(), |p, d| p.link_down(t(1), d.id)),
        )
        .build()
        .expect("builds");
    system.run_for(TimeDelta::from_us(10));
    assert!(
        system.machine().core(NodeId(3)).is_halted(),
        "a quarantined core is dead"
    );
}

#[test]
fn interslice_cable_fault_reroutes_identically_on_a_grid() {
    // A 2×1-slice machine: pipeline stages 0..6 span both slices, so
    // stage traffic rides an inter-slice FFC cable. Killing one cable
    // mid-run forces a route recompute — and, under the negotiated
    // parallel engine, a refresh of the shard-pair lookahead matrix —
    // while cross-slice traffic is in flight; restoring the cable
    // recomputes both again. Every engine must agree on the timeline.
    let probe = SystemBuilder::new().slices(2, 1).build().expect("builds");
    let spec = probe.machine().spec();
    let cable = probe
        .machine()
        .link_descs()
        .iter()
        .find(|d| spec.slice_of(d.from) != spec.slice_of(d.to))
        .expect("a 2x1 grid has inter-slice cables")
        .id;
    let plan = FaultPlan::new()
        .link_down(t(2), cable)
        .link_up(t(10), cable);
    let (fp, _) = run_differential(
        TimeDelta::from_ms(20),
        || SystemBuilder::new().slices(2, 1).faults(plan.clone()),
        load_pipeline,
    );
    assert!(fp.quiescent, "the spare cabling must carry the pipeline");
    assert_eq!(fp.outputs[5].trim(), pipeline::checksum(&PIPE).to_string());
    assert_eq!(fp.faults.link_downs, 1);
    assert_eq!(fp.faults.link_ups, 1);
    assert!(fp.faults.reroutes >= 2, "down and up each recompute routes");
    assert_eq!(fp.faults.quarantined_cores, 0);
}

#[test]
fn energy_conservation_holds_with_faults_under_every_engine() {
    // With faults on (including retransmit and drop energy charged at
    // the links), the metered supply rows must still integrate to the
    // machine ledger total to 1e-9 under each engine.
    let probe = SystemBuilder::new().build().expect("builds");
    let hop01 = internal_link_between(&probe, 0, 1);
    let hop23 = internal_link_between(&probe, 2, 3);
    let plan = FaultPlan::new()
        .link_down(t(2), hop01)
        .corrupt_window(t(5), hop23, TimeDelta::from_us(2))
        .brownout(t(12), 600, TimeDelta::from_us(3));
    let mut engines = vec![EngineMode::LockStep];
    engines.extend(engines_under_test());
    for engine in engines {
        let mut system = SystemBuilder::new()
            .faults(plan.clone())
            .metrics()
            .engine(engine)
            .build()
            .expect("builds");
        load_pipeline(&mut system);
        assert!(system.run_until_quiescent(TimeDelta::from_ms(20)));
        system.flush_metrics();
        let report = system.metrics_report();
        assert!(
            report.faults.retransmits > 0,
            "{engine:?}: corruption window must cost retransmits"
        );
        let metered = report.metered_energy.as_joules();
        let ledger = report.ledger_energy.as_joules();
        let scale = ledger.abs().max(f64::MIN_POSITIVE);
        assert!(
            (metered - ledger).abs() <= ENERGY_RTOL * scale,
            "{engine:?}: conservation broke: metered {metered} J vs ledger {ledger} J"
        );
    }
}
