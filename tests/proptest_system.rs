//! Property tests at machine level: arbitrary (valid) workload parameters
//! never wedge, corrupt or crash the platform.

use swallow_repro::swallow::{NodeId, SystemBuilder, TimeDelta};
use swallow_repro::swallow_workloads::{farm, pipeline, traffic};
use swallow_testkit::proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // whole-machine runs are expensive
        .. ProptestConfig::default()
    })]

    /// Any pipeline shape drains and produces the predicted checksum.
    #[test]
    fn pipelines_always_checksum(
        stages in 2usize..10,
        items in 1u32..20,
        work in 0u32..8,
    ) {
        let spec = pipeline::PipelineSpec { stages, items, work_per_item: work };
        let mut system = SystemBuilder::new().build().expect("builds");
        let placement = pipeline::generate(&spec, system.machine().spec()).expect("generates");
        placement.apply(&mut system).expect("loads");
        prop_assert!(system.run_until_quiescent(TimeDelta::from_ms(50)));
        prop_assert_eq!(
            system.output(placement.last_node()).trim(),
            pipeline::checksum(&spec).to_string()
        );
        prop_assert_eq!(system.machine().fabric().unroutable_tokens(), 0);
    }

    /// Any farm shape computes the predicted sum.
    #[test]
    fn farms_always_sum(
        workers in 1usize..8,
        tasks in 1u32..30,
        work in 0u32..5,
    ) {
        let spec = farm::FarmSpec { workers, tasks, work_per_task: work };
        let mut system = SystemBuilder::new().build().expect("builds");
        farm::generate(&spec, system.machine().spec())
            .expect("generates")
            .apply(&mut system)
            .expect("loads");
        prop_assert!(
            system.run_until_quiescent(TimeDelta::from_ms(100)),
            "trap: {:?}", system.first_trap()
        );
        prop_assert_eq!(
            system.output(NodeId(0)).trim(),
            farm::expected_sum(&spec).to_string()
        );
    }

    /// Streams between arbitrary distinct cores always deliver every word,
    /// regardless of packetisation.
    #[test]
    fn streams_always_deliver(
        src in 0u16..16,
        dst in 0u16..16,
        packets in 1u32..12,
        packet_words in 1u32..16,
    ) {
        prop_assume!(src != dst);
        let words = packets * packet_words;
        let mut system = SystemBuilder::new().build().expect("builds");
        traffic::stream(&traffic::StreamSpec {
            src: NodeId(src),
            dst: NodeId(dst),
            words,
            packet_words,
        })
        .expect("generates")
        .apply(&mut system)
        .expect("loads");
        prop_assert!(system.run_until_quiescent(TimeDelta::from_ms(100)));
        prop_assert_eq!(system.output(NodeId(dst)).trim(), words.to_string());
        prop_assert_eq!(system.machine().fabric().unroutable_tokens(), 0);
    }
}
