//! Differential tests for the predecoded-instruction cache: with the
//! cache on vs off, every engine must produce *bit-identical* quiescence
//! verdicts, final simulated time, retired-instruction counts and
//! program outputs, and energy equal to 1e-9 relative (the ledgers are
//! charged from identical per-instruction values, so in practice they
//! match exactly).
//!
//! The cache entries are pure functions of the SRAM words they were
//! decoded from, and every SRAM write funnel invalidates, so the only
//! way these tests can fail is a stale entry surviving a code store —
//! which the self-modifying scenario below constructs deliberately.
//!
//! Set `SWALLOW_ENGINE` (`lockstep` | `fastforward` | `parallel`, with
//! `SWALLOW_THREADS`) to pin the suite to one engine; the CI decode-cache
//! leg additionally runs the whole workspace with
//! `SWALLOW_DECODE_CACHE=off`.

use swallow_repro::swallow::energy::NodeCategory;
use swallow_repro::swallow::{
    Assembler, EngineMode, NodeId, SwallowSystem, SystemBuilder, TimeDelta,
};
use swallow_repro::swallow_workloads::{farm, pipeline};

/// Relative energy tolerance (f64 association only; see module doc).
const ENERGY_RTOL: f64 = 1e-9;

#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    quiescent: bool,
    now_ps: u64,
    instret: u64,
    outputs: Vec<String>,
    energy: Vec<(NodeCategory, f64)>,
}

fn fingerprint(system: &SwallowSystem, quiescent: bool) -> Fingerprint {
    Fingerprint {
        quiescent,
        now_ps: system.now().as_ps(),
        instret: system.perf_report().instret,
        outputs: system
            .nodes()
            .map(|n| system.output(n).to_owned())
            .collect(),
        energy: system
            .power_report()
            .ledger
            .iter()
            .map(|(cat, e)| (cat, e.as_joules()))
            .collect(),
    }
}

/// The engines the cache toggle is exercised under. `SWALLOW_ENGINE` /
/// `SWALLOW_THREADS` pin the list to one engine for the CI matrix.
fn engines_under_test() -> Vec<EngineMode> {
    if let Ok(name) = std::env::var("SWALLOW_ENGINE") {
        let threads: usize = std::env::var("SWALLOW_THREADS")
            .ok()
            .and_then(|t| t.parse().ok())
            .unwrap_or(0);
        return vec![match name.as_str() {
            "lockstep" => EngineMode::LockStep,
            "fastforward" => EngineMode::FastForward,
            "parallel" => EngineMode::Parallel { threads },
            other => panic!("unknown SWALLOW_ENGINE {other:?}"),
        }];
    }
    vec![
        EngineMode::LockStep,
        EngineMode::FastForward,
        EngineMode::Parallel { threads: 1 },
        EngineMode::Parallel { threads: 4 },
    ]
}

/// Runs the same setup with the cache on and off under every engine and
/// asserts the fingerprints agree. Returns the cache-on fingerprint of
/// the first engine (for scenario-level output checks).
fn run_cache_differential(
    budget: TimeDelta,
    mut setup: impl FnMut(&mut SwallowSystem),
) -> Fingerprint {
    let mut first = None;
    for engine in engines_under_test() {
        let mut run = |cache: bool| {
            let mut system = SystemBuilder::new()
                .engine(engine)
                .decode_cache(cache)
                .build()
                .expect("builds");
            setup(&mut system);
            let quiescent = system.run_until_quiescent(budget);
            fingerprint(&system, quiescent)
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(
            on.quiescent, off.quiescent,
            "{engine:?}: quiescence differs with the cache on"
        );
        assert_eq!(
            on.now_ps, off.now_ps,
            "{engine:?}: final simulated time differs with the cache on"
        );
        assert_eq!(
            on.instret, off.instret,
            "{engine:?}: retired instructions differ with the cache on"
        );
        assert_eq!(
            on.outputs, off.outputs,
            "{engine:?}: outputs differ with the cache on"
        );
        for (&(cat, a), &(_, b)) in on.energy.iter().zip(&off.energy) {
            let scale = a.abs().max(b.abs()).max(f64::MIN_POSITIVE);
            assert!(
                (a - b).abs() <= ENERGY_RTOL * scale,
                "{engine:?}: {cat} energy diverged with the cache on: {a} J vs {b} J"
            );
        }
        first.get_or_insert(on);
    }
    first.expect("at least one engine under test")
}

#[test]
fn pipeline_is_cache_invariant_under_every_engine() {
    let spec = pipeline::PipelineSpec {
        stages: 6,
        items: 24,
        work_per_item: 3,
    };
    let fp = run_cache_differential(TimeDelta::from_ms(20), |system| {
        pipeline::generate(&spec, system.machine().spec())
            .expect("generates")
            .apply(system)
            .expect("loads");
    });
    assert!(fp.quiescent, "pipeline must drain");
    assert_eq!(fp.outputs[5].trim(), pipeline::checksum(&spec).to_string());
}

#[test]
fn farm_is_cache_invariant_under_every_engine() {
    let spec = farm::FarmSpec {
        workers: 5,
        tasks: 20,
        work_per_task: 4,
    };
    let fp = run_cache_differential(TimeDelta::from_ms(20), |system| {
        farm::generate(&spec, system.machine().spec())
            .expect("generates")
            .apply(system)
            .expect("loads");
    });
    assert!(fp.quiescent, "farm must drain");
    assert_eq!(fp.outputs[0].trim(), farm::expected_sum(&spec).to_string());
}

#[test]
fn timer_sleeps_are_cache_invariant() {
    // Mostly idle machine: the cache changes nothing, and fast-forward's
    // analytic skips must land on the same instants either way.
    let fp = run_cache_differential(TimeDelta::from_ms(10), |system| {
        for (node, ticks) in [(0u16, 40_000u32), (9, 55_555)] {
            let program = Assembler::new()
                .assemble(&format!(
                    "
                        getr  r0, timer
                        in    r1, r0
                        add   r2, r1, {ticks}
                        tmwait r0, r2
                        in    r3, r0
                        lsu   r4, r3, r2
                        print r4
                        freet
                    "
                ))
                .expect("assembles");
            system.load_program(NodeId(node), &program).expect("fits");
        }
    });
    assert!(fp.quiescent);
    for node in [0usize, 9] {
        assert_eq!(fp.outputs[node].trim(), "0", "core {node} woke early");
    }
}

#[test]
fn self_modifying_code_is_cache_invariant() {
    use swallow_repro::swallow::isa::{encode, Instr, Reg};

    // The program executes `dst:` once as a nop (caching the entry),
    // then stores the encoding of `ldc r0, 99` over it and jumps back.
    // Correct invalidation executes the new instruction and prints 99; a
    // stale entry would keep executing the nop and spin forever. Both
    // cache settings must agree on every engine.
    let patch = encode(&Instr::Ldc {
        d: Reg::R0,
        imm: 99,
    })
    .expect("encodes");
    assert_eq!(patch.words().len(), 1, "small ldc must be one word");
    let patch_word = patch.words()[0];

    let fp = run_cache_differential(TimeDelta::from_ms(5), |system| {
        let program = Assembler::new()
            .assemble(&format!(
                "
                        ldap  r1, patch
                        ldw   r2, r1[0]
                        ldap  r3, dst
                        ldc   r0, 0
                    dst:
                        nop
                        bt    r0, done
                        stw   r2, r3[0]
                        bu    dst
                    done:
                        print r0
                        freet
                    patch:
                        .word {patch_word}
                "
            ))
            .expect("assembles");
        system.load_program(NodeId(0), &program).expect("fits");
    });
    assert!(fp.quiescent, "self-modifying program must terminate");
    assert_eq!(
        fp.outputs[0].trim(),
        "99",
        "the spliced instruction must execute after the store"
    );
}
