//! Observability-layer pinning tests: the Chrome-trace exporter against
//! a golden file (structural JSON comparison — formatting may drift, the
//! structure may not), the CSV schema, and energy conservation between
//! the metrics time series and the energy ledger under every engine.
//!
//! Regenerate the golden after an intentional schema change with
//! `UPDATE_GOLDEN=1 cargo test --test observability`.

use swallow_repro::swallow::{
    chrome_trace_json, supply_csv, EngineMode, SystemBuilder, Time, TimeDelta, TraceEvent,
    TraceLog, TraceRecord,
};
use swallow_repro::swallow_workloads::pipeline;
use swallow_testkit::json;

const GOLDEN_PATH: &str = "tests/golden/chrome_trace.json";

/// Relative tolerance between integrated metrics and the ledger.
const CONSERVATION_RTOL: f64 = 1e-9;

/// A synthetic log exercising every event variant at fixed instants, so
/// the golden file pins the full exporter surface.
fn synthetic_log() -> TraceLog {
    let rec = |ps: u64, event: TraceEvent| TraceRecord {
        at: Time::from_ps(ps),
        event,
    };
    TraceLog {
        records: vec![
            rec(1_000, TraceEvent::CoreWake { core: 0 }),
            rec(
                1_000,
                TraceEvent::ThreadSchedule {
                    core: 0,
                    thread: 0,
                    pc: 0x40,
                },
            ),
            rec(
                2_000,
                TraceEvent::ChannelOpen {
                    core: 0,
                    chanend: 1,
                },
            ),
            rec(
                3_000,
                TraceEvent::DvfsChange {
                    core: 0,
                    hz: 250_000_000,
                },
            ),
            rec(
                4_000,
                TraceEvent::TokenSend {
                    core: 0,
                    chanend: 1,
                    dest_node: 3,
                    dest_chanend: 0,
                    tokens: 4,
                    ctrl: false,
                },
            ),
            rec(
                5_000,
                TraceEvent::LinkTransit {
                    link: 12,
                    from: 0,
                    to: 3,
                    ctrl: false,
                    busy: TimeDelta::from_ns(4),
                },
            ),
            rec(
                9_000,
                TraceEvent::TokenReceive {
                    core: 3,
                    chanend: 0,
                    ctrl: false,
                },
            ),
            rec(
                10_000,
                TraceEvent::BlockRetire {
                    core: 0,
                    thread: 0,
                    instret: 17,
                    since: Time::from_ps(1_000),
                    reason: "send",
                },
            ),
            rec(
                10_000,
                TraceEvent::ChannelClose {
                    core: 0,
                    chanend: 1,
                },
            ),
            rec(10_000, TraceEvent::CoreSleep { core: 0 }),
            rec(
                11_000,
                TraceEvent::SupplySample {
                    slice: 0,
                    rail: 2,
                    microwatts: 312_500,
                },
            ),
        ],
        dropped: 3,
    }
}

#[test]
fn chrome_trace_matches_the_golden_file() {
    let rendered = chrome_trace_json(&synthetic_log());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("writes golden");
    }
    let golden_text = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file present (regenerate with UPDATE_GOLDEN=1)");
    let golden = json::parse(&golden_text).expect("golden parses");
    let actual = json::parse(&rendered).expect("rendered trace parses");
    assert_eq!(
        actual, golden,
        "Chrome-trace exporter output diverged structurally from {GOLDEN_PATH}; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn chrome_trace_is_wellformed_for_a_real_run() {
    let spec = pipeline::PipelineSpec {
        stages: 6,
        items: 24,
        work_per_item: 3,
    };
    let mut system = SystemBuilder::new()
        .tracing()
        .metrics()
        .build()
        .expect("builds");
    pipeline::generate(&spec, system.machine().spec())
        .expect("generates")
        .apply(&mut system)
        .expect("loads");
    assert!(system.run_until_quiescent(TimeDelta::from_ms(20)));
    system.flush_metrics();

    let doc = json::parse(&chrome_trace_json(&system.trace_log())).expect("valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(json::Value::as_array)
        .expect("traceEvents array");
    assert!(events.len() > 100, "only {} events captured", events.len());
    let mut phases_seen = std::collections::BTreeSet::new();
    for event in events {
        let ph = event
            .get("ph")
            .and_then(json::Value::as_str)
            .expect("every event has ph");
        phases_seen.insert(ph.to_owned());
        assert!(event.get("pid").is_some(), "every event has pid");
        if ph != "M" {
            let ts = event
                .get("ts")
                .and_then(json::Value::as_f64)
                .expect("every non-metadata event has numeric ts");
            assert!(ts >= 0.0);
        }
        if ph == "X" {
            assert!(
                event.get("dur").and_then(json::Value::as_f64).is_some(),
                "duration events carry dur"
            );
        }
    }
    // A real pipeline run exercises spans, instants, counters, metadata.
    for needed in ["M", "X", "i", "C"] {
        assert!(phases_seen.contains(needed), "no {needed:?} events emitted");
    }
}

#[test]
fn supply_csv_schema_is_stable() {
    let mut system = SystemBuilder::new().metrics().build().expect("builds");
    system.run_for(TimeDelta::from_us(5));
    system.flush_metrics();
    let csv = supply_csv(system.machine().metrics().rows());
    let mut lines = csv.lines();
    let header = lines.next().expect("header row");
    assert_eq!(
        header,
        "time_us,span_us,slice,rail0_mw,rail1_mw,rail2_mw,rail3_mw,rail4_mw,loss_mw"
    );
    let columns = header.split(',').count();
    let mut rows = 0;
    let mut last_time = f64::MIN;
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), columns, "ragged row: {line}");
        let time: f64 = fields[0].parse().expect("numeric time");
        let span: f64 = fields[1].parse().expect("numeric span");
        let _slice: u16 = fields[2].parse().expect("integer slice");
        assert!(time >= last_time, "rows out of order");
        assert!(span > 0.0, "non-positive span");
        for field in &fields[3..] {
            let mw: f64 = field.parse().expect("numeric power");
            assert!(mw.is_finite());
        }
        last_time = time;
        rows += 1;
    }
    // 5 µs of the default 1 µs cadence plus the flush row.
    assert!(rows >= 5, "only {rows} rows for a 5 µs run");
}

#[test]
fn metrics_conserve_energy_under_every_engine() {
    let spec = pipeline::PipelineSpec {
        stages: 6,
        items: 24,
        work_per_item: 3,
    };
    for engine in [
        EngineMode::LockStep,
        EngineMode::FastForward,
        EngineMode::Parallel { threads: 1 },
        EngineMode::Parallel { threads: 4 },
    ] {
        let mut system = SystemBuilder::new()
            .engine(engine)
            .metrics()
            .build()
            .expect("builds");
        pipeline::generate(&spec, system.machine().spec())
            .expect("generates")
            .apply(&mut system)
            .expect("loads");
        system.run_until_quiescent(TimeDelta::from_ms(20));
        system.flush_metrics();
        let metered = system.machine().metrics().total_energy().as_joules();
        let ledger = system.machine().machine_ledger().total().as_joules();
        assert!(ledger > 0.0, "{engine:?}: no energy charged at all");
        let rel = (metered - ledger).abs() / ledger;
        assert!(
            rel <= CONSERVATION_RTOL,
            "{engine:?}: metrics integrate to {metered} J but the ledger holds \
             {ledger} J (rel {rel:.3e})"
        );
        // The report surfaces the same comparison.
        let report = system.metrics_report();
        assert_eq!(report.metered_energy.as_joules(), metered);
        assert_eq!(report.ledger_energy.as_joules(), ledger);
        assert!(report.supply_rows > 0);
    }
}

#[test]
fn metrics_report_reflects_core_activity() {
    let spec = pipeline::PipelineSpec {
        stages: 6,
        items: 24,
        work_per_item: 3,
    };
    let mut system = SystemBuilder::new().metrics().build().expect("builds");
    pipeline::generate(&spec, system.machine().spec())
        .expect("generates")
        .apply(&mut system)
        .expect("loads");
    system.run_until_quiescent(TimeDelta::from_ms(20));
    let report = system.metrics_report();
    assert_eq!(report.cores.len(), 16);
    let busy = report.cores.iter().filter(|c| c.instret > 0).count();
    assert!(busy >= 6, "at least the six pipeline stages ran");
    for core in &report.cores {
        assert!((0.0..=1.0).contains(&core.utilization));
        assert_eq!(
            core.thread_instret.iter().sum::<u64>(),
            core.instret,
            "per-thread counts must sum to the core count"
        );
    }
    assert!(report.active_links() > 0, "pipeline traffic crossed links");
    assert!(report.mean_utilization() > 0.0);
    let text = report.to_string();
    assert!(text.contains("cores"), "{text}");
}
