//! Fleet-level integration tests: the many-machine serving layer end to
//! end, through the same crates the `reproduce fleet` harness uses.
//!
//! The obligations here are the ones the subsystem is sold on:
//!
//! - the whole `BENCH_fleet.json` artefact — not just the summary
//!   counters — is byte-identical across repeat runs and across host
//!   thread counts, and so is the merged fleet-wide request log;
//! - a warm-started fleet (every machine revived from one `SWLWSNAP`
//!   template) takes exactly the cold-started fleet's trajectory;
//! - a machine can be snapshotted *mid-run*, revived, and driven to the
//!   end with the same `Driver`, landing on the uninterrupted outcome —
//!   the mid-run handoff story;
//! - ingress backpressure rejects deterministically and every accepted
//!   request still passes the reply oracle.

use swallow_repro::swallow::sim::DetRng;
use swallow_repro::swallow::{SwallowSystem, SystemBuilder, Time, TimeDelta};
use swallow_repro::swallow_bench::experiments::fleet as fleet_bench;
use swallow_repro::swallow_fleet::{
    self, drive, generate_arrivals, ArrivalKind, Driver, FleetSpec,
};
use swallow_repro::swallow_workloads::serve::{self, ServeSpec};

/// A fleet spec sized for integration testing: three machines, enough
/// requests per machine that schedules interleave across the merge.
fn fleet_spec() -> FleetSpec {
    FleetSpec {
        machines: 3,
        workers: 6,
        requests: 10,
        work: 4,
        rate_rps: 250_000.0,
        drain: TimeDelta::from_us(300),
        metrics: true,
        ..FleetSpec::default()
    }
}

#[test]
fn bench_artifact_is_identical_across_thread_counts() {
    let base = fleet_spec();
    let rates = [100e3, 400e3];
    let reference = fleet_bench::run_sweep(&base, &rates).expect("sweeps");
    let reference_json = reference.to_json();
    for threads in [2, 3, 8] {
        let spec = FleetSpec {
            threads,
            ..base.clone()
        };
        let bench = fleet_bench::run_sweep(&spec, &rates).expect("sweeps");
        assert_eq!(
            bench.to_json(),
            reference_json,
            "BENCH_fleet.json differs at {threads} threads"
        );
    }
}

#[test]
fn request_log_is_identical_across_thread_counts() {
    let base = fleet_spec();
    let one = swallow_fleet::run(&base).expect("runs");
    assert_eq!(one.completed, 30);
    assert_eq!(one.wrong, 0);
    for threads in [2, 3] {
        let spec = FleetSpec {
            threads,
            ..base.clone()
        };
        let many = swallow_fleet::run(&spec).expect("runs");
        assert_eq!(
            many.completions, one.completions,
            "merged request log differs at {threads} threads"
        );
        assert_eq!(many, one, "full fleet result differs at {threads} threads");
    }
}

#[test]
fn warm_started_fleet_reaches_cold_fingerprints() {
    let cold_spec = fleet_spec();
    let warm_spec = FleetSpec {
        warm_start: true,
        threads: 2,
        ..cold_spec.clone()
    };
    let cold = swallow_fleet::run(&cold_spec).expect("cold runs");
    let warm = swallow_fleet::run(&warm_spec).expect("warm runs");
    for (m, (c, w)) in cold.machines.iter().zip(&warm.machines).enumerate() {
        assert_eq!(
            c.fingerprint, w.fingerprint,
            "machine {m} diverged under warm start"
        );
    }
    assert_eq!(cold, warm);
}

#[test]
fn midrun_snapshot_handoff_matches_uninterrupted_run() {
    let service = ServeSpec {
        workers: 4,
        max_requests: 10,
        work: 3,
    };
    let build = || -> SwallowSystem {
        let mut system = SystemBuilder::new().bridge().build().expect("builds");
        let placement = serve::generate(&service, system.machine().spec()).expect("generates");
        placement.apply(&mut system).expect("loads");
        system
    };
    let arrivals = generate_arrivals(
        ArrivalKind::Poisson,
        200_000.0,
        10,
        0,
        &mut DetRng::seed_from(7),
    );
    let drain = TimeDelta::from_us(300);

    // The uninterrupted reference run.
    let mut reference_system = build();
    let reference = drive(&mut reference_system, &arrivals, service.work, drain);
    assert_eq!(reference.completions.len(), 10);
    assert_eq!(reference.wrong, 0);

    // The same schedule, handed off mid-run: once a few requests have
    // completed, the machine is serialized, dropped, revived from the
    // bytes, and the *same* driver carries on against the revived one.
    let mut first_host = build();
    let mut driver = Driver::new(&arrivals, service.work, drain);
    while driver.completed() < 4 {
        driver.step(&mut first_host);
    }
    let snapshot = first_host.snapshot();
    drop(first_host);
    let mut second_host = SwallowSystem::restore(&snapshot).expect("revives");
    while !driver.done(&second_host) {
        driver.step(&mut second_host);
    }
    let handed_off = driver.finish(&mut second_host);
    assert_eq!(handed_off, reference, "handoff changed the trajectory");
}

#[test]
fn ingress_backpressure_rejects_deterministically() {
    // A 16-request burst lands at one instant against an ingress cap of
    // two frames' worth of tokens (2-word frame = 9 tokens): the bridge
    // must reject most of it, deterministically, and every accepted
    // request must still serve correctly.
    let spec = FleetSpec {
        machines: 2,
        workers: 4,
        requests: 16,
        arrivals: ArrivalKind::Bursty { burst: 16 },
        rate_rps: 400_000.0,
        ingress_capacity: Some(18),
        drain: TimeDelta::from_us(300),
        ..FleetSpec::default()
    };
    let a = swallow_fleet::run(&spec).expect("runs");
    assert_eq!(a.offered, 32);
    assert!(a.rejected > 0, "the cap never bit");
    assert_eq!(a.injected + a.rejected, a.offered);
    assert_eq!(a.completed, a.injected, "every accepted request served");
    assert_eq!(a.wrong, 0);
    for (outcome, rejected) in a.machines.iter().zip([true, true]) {
        assert_eq!(outcome.fingerprint.rejected > 0, rejected);
    }
    let b = swallow_fleet::run(&spec).expect("runs");
    assert_eq!(a, b, "backpressure is part of the deterministic state");
}

#[test]
fn rebalanced_schedules_keep_tags_and_oracle() {
    let spec = FleetSpec {
        machines: 3,
        workers: 4,
        requests: 6,
        provision: Some(18),
        rate_rps: 200_000.0,
        ..FleetSpec::default()
    };
    let mut schedules = spec.schedules();
    // Drain machine 0 out of the fleet shortly after its second arrival.
    let cut: Time = schedules[0][1].at;
    let moved = swallow_fleet::rebalance(&mut schedules, 0, cut, 2);
    assert_eq!(moved as usize, schedules[2].len() - 6);
    let result = swallow_fleet::run_with_schedules(&spec, &schedules).expect("runs");
    assert_eq!(result.completed, 18);
    assert_eq!(result.wrong, 0);
    assert_eq!(result.machines[0].completions.len(), 2);
    // Moved requests kept their fleet-unique tags: machine 2's log holds
    // its own tag range plus the tail of machine 0's.
    let tags: Vec<u32> = result.machines[2]
        .completions
        .iter()
        .map(|c| c.tag)
        .collect();
    assert!(tags.iter().any(|&t| t < 6), "no migrated tag was served");
    assert!(tags.iter().any(|&t| (12..18).contains(&t)));
}
