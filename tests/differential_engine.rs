//! Differential tests: the event-driven fast-forward engine and the
//! parallel conservative-epoch engine must both be observationally
//! identical to the cycle-by-cycle lock-step reference.
//!
//! Every engine processes exactly the same grid-aligned instants at which
//! anything can happen (core ticks, wake-ups, fabric hops, bridge pacing,
//! monitor updates); fast-forward merely skips the provably idle instants
//! in between and charges their energy analytically, and the parallel
//! engine additionally batches independent spans onto host threads. These
//! tests pin that equivalence down for representative workloads:
//! identical retired instruction counts, identical final simulated time,
//! identical program outputs, and energy ledgers equal to within
//! floating-point association error (the only permitted difference: `n`
//! idle-tick charges summed one by one versus multiplied out in one shot,
//! or grouped per shard). The parallel engine is additionally required to
//! be *bit-identical* across repeated runs at every tested thread count.
//!
//! Set `SWALLOW_ENGINE` (`lockstep` | `fastforward` | `parallel`, with
//! `SWALLOW_THREADS` for the latter) to pin the suite to one engine — the
//! CI matrix uses this to get a dedicated parallel leg.

use swallow_repro::swallow::energy::NodeCategory;
use swallow_repro::swallow::{
    Assembler, EngineMode, NodeId, RouterKind, SwallowSystem, SystemBuilder, TimeDelta,
};
use swallow_repro::swallow_workloads::{client_server, farm, pipeline};
use swallow_testkit::proptest::prelude::*;

/// Relative energy tolerance between the engines (f64 association only).
const ENERGY_RTOL: f64 = 1e-9;

/// Thread counts every scenario is exercised at under the parallel
/// engine: degenerate (1), even splits (2, 4) and an uneven split (7)
/// that leaves shards of different sizes on a 16-core slice.
const PARALLEL_THREADS: [usize; 4] = [1, 2, 4, 7];

/// Everything observable about a finished run. `PartialEq` compares
/// energy bit-for-bit — used for the repeated-run determinism check,
/// not for cross-engine comparison (which allows `ENERGY_RTOL`).
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    quiescent: bool,
    now_ps: u64,
    instret: u64,
    outputs: Vec<String>,
    energy: Vec<(NodeCategory, f64)>,
}

fn fingerprint(system: &SwallowSystem, quiescent: bool) -> Fingerprint {
    Fingerprint {
        quiescent,
        now_ps: system.now().as_ps(),
        instret: system.perf_report().instret,
        outputs: system
            .nodes()
            .map(|n| system.output(n).to_owned())
            .collect(),
        energy: system
            .power_report()
            .ledger
            .iter()
            .map(|(cat, e)| (cat, e.as_joules()))
            .collect(),
    }
}

fn assert_equivalent(engine: EngineMode, got: &Fingerprint, ls: &Fingerprint) {
    assert_eq!(
        got.quiescent, ls.quiescent,
        "{engine:?}: quiescence verdicts differ"
    );
    assert_eq!(
        got.now_ps, ls.now_ps,
        "{engine:?}: final simulated time differs"
    );
    assert_eq!(
        got.instret, ls.instret,
        "{engine:?}: retired instruction counts differ"
    );
    assert_eq!(
        got.outputs, ls.outputs,
        "{engine:?}: program outputs differ"
    );
    for (&(cat, a), &(_, b)) in got.energy.iter().zip(&ls.energy) {
        let scale = a.abs().max(b.abs()).max(f64::MIN_POSITIVE);
        assert!(
            (a - b).abs() <= ENERGY_RTOL * scale,
            "{engine:?}: {cat} energy diverged: {a} J vs lock-step {b} J"
        );
    }
}

/// The engines every scenario runs under (and compares with lock-step).
/// `SWALLOW_ENGINE` / `SWALLOW_THREADS` pin the list to one engine.
fn engines_under_test() -> Vec<EngineMode> {
    if let Ok(name) = std::env::var("SWALLOW_ENGINE") {
        let threads: usize = std::env::var("SWALLOW_THREADS")
            .ok()
            .and_then(|t| t.parse().ok())
            .unwrap_or(0);
        return vec![match name.as_str() {
            "lockstep" => EngineMode::LockStep,
            "fastforward" => EngineMode::FastForward,
            "parallel" => EngineMode::Parallel { threads },
            other => panic!("unknown SWALLOW_ENGINE {other:?}"),
        }];
    }
    let mut engines = vec![EngineMode::FastForward];
    engines.extend(PARALLEL_THREADS.map(|threads| EngineMode::Parallel { threads }));
    engines
}

/// Runs the same setup under lock-step and every engine under test,
/// checking each fingerprint against the reference. Parallel engines run
/// twice and must be bit-identical across runs. Returns the first
/// engine's fingerprint and the lock-step one.
fn run_differential_with(
    budget: TimeDelta,
    builder: impl Fn() -> SystemBuilder,
    mut setup: impl FnMut(&mut SwallowSystem),
) -> (Fingerprint, Fingerprint) {
    let mut run = |engine: EngineMode| {
        let mut system = builder().engine(engine).build().expect("builds");
        setup(&mut system);
        let quiescent = system.run_until_quiescent(budget);
        fingerprint(&system, quiescent)
    };
    let ls = run(EngineMode::LockStep);
    let mut first = None;
    for engine in engines_under_test() {
        let fp = run(engine);
        assert_equivalent(engine, &fp, &ls);
        if matches!(engine, EngineMode::Parallel { .. }) {
            let again = run(engine);
            assert_eq!(fp, again, "{engine:?}: repeated runs must be bit-identical");
        }
        first.get_or_insert(fp);
    }
    (first.expect("at least one engine under test"), ls)
}

/// [`run_differential_with`] on the default one-slice builder.
fn run_differential(
    budget: TimeDelta,
    setup: impl FnMut(&mut SwallowSystem),
) -> (Fingerprint, Fingerprint) {
    run_differential_with(budget, SystemBuilder::new, setup)
}

#[test]
fn pipeline_runs_identically_under_both_engines() {
    let spec = pipeline::PipelineSpec {
        stages: 6,
        items: 24,
        work_per_item: 3,
    };
    let (ff, _) = run_differential(TimeDelta::from_ms(20), |system| {
        pipeline::generate(&spec, system.machine().spec())
            .expect("generates")
            .apply(system)
            .expect("loads");
    });
    assert!(ff.quiescent, "pipeline must drain");
    assert_eq!(
        ff.outputs[5].trim(),
        pipeline::checksum(&spec).to_string(),
        "and still compute the right checksum"
    );
}

#[test]
fn farm_runs_identically_under_both_engines() {
    let spec = farm::FarmSpec {
        workers: 5,
        tasks: 20,
        work_per_task: 4,
    };
    let (ff, _) = run_differential(TimeDelta::from_ms(20), |system| {
        farm::generate(&spec, system.machine().spec())
            .expect("generates")
            .apply(system)
            .expect("loads");
    });
    assert!(ff.quiescent, "farm must drain");
    assert_eq!(ff.outputs[0].trim(), farm::expected_sum(&spec).to_string());
}

#[test]
fn ping_pong_runs_identically_under_both_engines() {
    // Request/reply round trips: latency-bound, so almost all simulated
    // time is idle — the regime where fast-forward does the most work.
    let spec = client_server::ServiceSpec {
        clients: 2,
        requests_per_client: 8,
    };
    let (ff, _) = run_differential(TimeDelta::from_ms(50), |system| {
        client_server::generate(&spec, system.machine().spec())
            .expect("generates")
            .apply(system)
            .expect("loads");
    });
    assert!(ff.quiescent, "ping-pong must drain");
    for i in 0..2 {
        assert_eq!(
            ff.outputs[i + 1].trim(),
            client_server::expected_client_sum(&spec, i).to_string()
        );
    }
}

#[test]
fn long_timer_sleeps_fast_forward_to_the_same_instant() {
    // Sleeps far longer than any workload message gap: the fast-forward
    // engine jumps hundreds of thousands of ticks at once here, yet must
    // land on exactly the wake instants the lock-step engine reaches.
    let (ff, _) = run_differential(TimeDelta::from_ms(10), |system| {
        for (node, ticks) in [(0u16, 50_000u32), (7, 63_456), (15, 65_001)] {
            let program = Assembler::new()
                .assemble(&format!(
                    "
                        getr  r0, timer
                        in    r1, r0
                        add   r2, r1, {ticks}
                        tmwait r0, r2
                        in    r3, r0
                        lsu   r4, r3, r2      # woke early? must be 0
                        print r4
                        freet
                    "
                ))
                .expect("assembles");
            system.load_program(NodeId(node), &program).expect("fits");
        }
    });
    assert!(ff.quiescent);
    for node in [0usize, 7, 15] {
        assert_eq!(ff.outputs[node].trim(), "0", "core {node} woke early");
    }
}

#[test]
fn idle_machine_burns_identical_energy() {
    // A fully idle slice for 200 µs: every tick of every core is skipped
    // analytically, and the ledgers must still agree to 1e-9.
    let run = |engine: EngineMode| {
        let mut system = SystemBuilder::new().engine(engine).build().expect("builds");
        system.run_for(TimeDelta::from_us(200));
        fingerprint(&system, true)
    };
    let ls = run(EngineMode::LockStep);
    let mut total = 0.0;
    for engine in engines_under_test() {
        let fp = run(engine);
        assert_equivalent(engine, &fp, &ls);
        total = fp.energy.iter().map(|(_, j)| j).sum::<f64>();
    }
    assert!(total > 0.0, "idle energy must still be charged");
}

#[test]
fn parallel_agrees_on_shortest_paths_routing() {
    // Same pipeline, but routed breadth-first instead of vertical-first:
    // different hop counts and link orderings must not perturb the
    // conservative epoch horizon or the reconciliation order.
    let spec = pipeline::PipelineSpec {
        stages: 6,
        items: 16,
        work_per_item: 3,
    };
    let (fp, _) = run_differential_with(
        TimeDelta::from_ms(20),
        || SystemBuilder::new().router(RouterKind::ShortestPaths),
        |system| {
            pipeline::generate(&spec, system.machine().spec())
                .expect("generates")
                .apply(system)
                .expect("loads");
        },
    );
    assert!(fp.quiescent, "pipeline must drain under shortest-paths");
    assert_eq!(fp.outputs[5].trim(), pipeline::checksum(&spec).to_string());
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10, // each case is two whole-machine runs
        .. ProptestConfig::default()
    })]

    /// Random wake schedules: cores sleep for arbitrary spans and then
    /// must all wake — fast-forward may never jump past a wake instant,
    /// and has to agree with lock-step on when each wake happened.
    #[test]
    fn fast_forward_never_skips_a_wake(
        schedule in proptest::collection::vec((0u16..16, 1u32..60_000), 1..6),
    ) {
        let mut nodes_used = Vec::new();
        let (ff, _) = run_differential(TimeDelta::from_ms(10), |system| {
            nodes_used.clear();
            for &(node, ticks) in &schedule {
                if nodes_used.contains(&node) {
                    continue; // one sleeper per core
                }
                nodes_used.push(node);
                let program = Assembler::new()
                    .assemble(&format!(
                        "
                            getr  r0, timer
                            in    r1, r0
                            add   r2, r1, {ticks}
                            tmwait r0, r2
                            in    r3, r0
                            lsu   r4, r3, r2
                            print r4
                            freet
                        "
                    ))
                    .expect("assembles");
                system.load_program(NodeId(node), &program).expect("fits");
            }
        });
        prop_assert!(ff.quiescent, "all sleepers must wake and drain");
        for &node in &nodes_used {
            prop_assert_eq!(
                ff.outputs[node as usize].trim(),
                "0",
                "core {} skipped past its wake instant",
                node
            );
        }
    }
}
