//! Umbrella crate for the Swallow reproduction workspace.
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! directories required by the project layout. All functionality lives in
//! the workspace crates; the most useful entry point is the [`swallow`]
//! crate, re-exported here for convenience.
//!
//! ```
//! use swallow_repro::swallow::SystemBuilder;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = SystemBuilder::new().slices(1, 1).build()?;
//! assert_eq!(system.core_count(), 16);
//! # Ok(())
//! # }
//! ```

pub use swallow;
pub use swallow_bench;
pub use swallow_fleet;
pub use swallow_workloads;
