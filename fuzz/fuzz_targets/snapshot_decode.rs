//! The snapshot deserializer: `Machine::restore` on arbitrary bytes
//! must reject cleanly (bad magic, bad version, checksum mismatch,
//! truncation, hostile lengths) — never panic, never allocate absurdly
//! — and anything it accepts must re-serialize byte-identically.

use swallow::{Machine, MachineConfig};
use swallow_fuzz::fuzz_target;

fuzz_target!(
    seeds = {
        // A real snapshot of a pristine one-slice machine: single-byte
        // mutations of it exercise every section decoder far deeper
        // than random bytes, which die at the magic check.
        vec![Machine::new(MachineConfig::one_slice()).snapshot()]
    },
    |data: &[u8]| {
        if let Ok(machine) = Machine::restore(data) {
            assert_eq!(
                machine.snapshot(),
                data,
                "accepted snapshots must re-serialize byte-identically"
            );
        }
    }
);
