//! The `--faults` command-line grammar: any string must parse to a
//! plan or a human-readable error — never panic — and a parsed plan's
//! events must come out time-sorted (the invariant the fault engine's
//! cursor relies on).

use swallow::FaultPlan;
use swallow_fuzz::fuzz_target;

fuzz_target!(|data: &[u8]| {
    let Ok(spec) = std::str::from_utf8(data) else {
        return;
    };
    if let Ok(plan) = FaultPlan::parse(spec) {
        let events = plan.events();
        assert!(
            events.windows(2).all(|w| w[0].at <= w[1].at),
            "parsed plan must be time-sorted"
        );
    }
});
