//! Token-level link framing: the fabric's state codec carries every
//! link's in-flight token queue, receive buffer and fault windows. An
//! arbitrary byte stream fed to `restore_state` must either decode
//! cleanly or be rejected with a `CodecError` — never panic — and any
//! state it *does* accept must re-encode and restore again (the decoder
//! accepts only states the encoder can represent).

use swallow::energy::WireClass;
use swallow::noc::{Direction, Fabric, FabricBuilder, LinkParams, TableRouter};
use swallow::sim::{ByteReader, ByteWriter};
use swallow::NodeId;
use swallow_fuzz::fuzz_target;

fn small_fabric() -> Fabric {
    let mut b = FabricBuilder::new(3);
    b.link_two_way(
        NodeId(0),
        NodeId(1),
        Direction::East,
        LinkParams::from_class(WireClass::OnChip),
    );
    b.link_two_way(
        NodeId(1),
        NodeId(2),
        Direction::East,
        LinkParams::from_class(WireClass::OnChip),
    );
    let router = TableRouter::shortest_paths(3, b.link_descs());
    b.build(Box::new(router))
}

fuzz_target!(
    seeds = {
        // A freshly-encoded pristine fabric: mutations of a *valid*
        // frame probe much deeper than random bytes.
        let mut w = ByteWriter::new();
        small_fabric().encode_state(&mut w);
        vec![w.finish()]
    },
    |data: &[u8]| {
        let mut fabric = small_fabric();
        if fabric.restore_state(&mut ByteReader::new(data)).is_ok() {
            // Accepted frames must round-trip: encode what was restored
            // and restore it again into a second fabric.
            let mut w = ByteWriter::new();
            fabric.encode_state(&mut w);
            let bytes = w.finish();
            small_fabric()
                .restore_state(&mut ByteReader::new(&bytes))
                .expect("re-encoded fabric state must restore");
        }
    }
);
