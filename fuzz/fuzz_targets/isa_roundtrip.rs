//! ISA decode/encode round trip: any word stream that decodes must
//! re-encode to an instruction stream that decodes back to the *same*
//! instruction — and operand-field strictness means a successfully
//! decoded single word re-encodes bit-identically (the wide `ldc32`
//! long form is the one documented exception: it re-encodes short when
//! its constant fits 16 bits).

use swallow::isa::{decode, encode, Instr};
use swallow_fuzz::fuzz_target;

fuzz_target!(|data: &[u8]| {
    let words: Vec<u32> = data
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let mut at = 0;
    while at < words.len() {
        let Ok((instr, consumed)) = decode(&words[at..]) else {
            break;
        };
        // The formatter must hold for every decodable instruction.
        let _ = instr.to_string();
        let enc = encode(&instr).expect("decoded instructions must re-encode");
        let (back, n) = decode(enc.words()).expect("re-encoded instructions must decode");
        assert_eq!(back, instr, "decode(encode(i)) must be i");
        assert_eq!(n, enc.len());
        if consumed == 1 && !matches!(instr, Instr::Ldc { .. }) {
            // Strict operand decoding makes single-word encodings
            // canonical: the round trip reproduces the exact bits.
            assert_eq!(enc.words(), &words[at..at + 1], "canonical word changed");
        }
        at += consumed;
    }
});
