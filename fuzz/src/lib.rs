//! In-tree fuzzing shim: a bounded, deterministic, dependency-free
//! driver behind a libFuzzer-compatible target layout.
//!
//! Each file under `fuzz_targets/` is an ordinary binary written in the
//! `cargo-fuzz` idiom — `fuzz_target!(|data: &[u8]| { ... })` — so the
//! corpus layout (`fuzz/corpus/<target>/`), the artifact layout
//! (`fuzz/artifacts/<target>/`) and the harness bodies would carry over
//! unchanged to real libFuzzer instrumentation. Because this workspace
//! builds fully offline, the macro expands to a self-contained driver
//! instead of linking `libfuzzer-sys`:
//!
//! 1. replay every checked-in corpus entry (sorted, so deterministic);
//! 2. run `SWALLOW_FUZZ_ITERS` (default 256) mutated inputs derived
//!    from the corpus with a seeded xorshift RNG (`SWALLOW_FUZZ_SEED`);
//! 3. on any panic, write the offending input to
//!    `fuzz/artifacts/<target>/crash-<hash>` and exit non-zero.
//!
//! A run is reproducible from its seed alone: same corpus + same seed +
//! same iteration count replays the identical input sequence.

use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;

/// Default iteration budget when `SWALLOW_FUZZ_ITERS` is unset — small
/// enough for a CI smoke leg, large enough to shake out shallow panics.
pub const DEFAULT_ITERS: u64 = 256;

/// Default RNG seed when `SWALLOW_FUZZ_SEED` is unset.
pub const DEFAULT_SEED: u64 = 0x5EED_5EED_5EED_5EED;

/// Deterministic xorshift64* generator — the only randomness source, so
/// every run is reproducible from its seed.
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a non-zero-normalised seed.
    pub fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    /// Next pseudo-random u64.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound` (bound 0 yields 0).
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// FNV-1a 64 over `bytes` — names crash artifacts content-addressably.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Loads the checked-in corpus for `target`, sorted by file name so the
/// replay order is deterministic. A missing directory is an empty corpus.
pub fn load_corpus(target: &str) -> Vec<Vec<u8>> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("corpus")
        .join(target);
    let mut entries: Vec<(String, Vec<u8>)> = Vec::new();
    if let Ok(rd) = fs::read_dir(&dir) {
        for entry in rd.flatten() {
            if let Ok(bytes) = fs::read(entry.path()) {
                entries.push((entry.file_name().to_string_lossy().into_owned(), bytes));
            }
        }
    }
    entries.sort();
    entries.into_iter().map(|(_, b)| b).collect()
}

/// One mutation step: flip, insert, delete, truncate, extend or splice.
fn mutate(input: &mut Vec<u8>, corpus: &[Vec<u8>], rng: &mut Rng) {
    match rng.below(6) {
        0 if !input.is_empty() => {
            // Flip one byte.
            let at = rng.below(input.len());
            input[at] ^= (rng.next_u64() % 255 + 1) as u8;
        }
        1 => {
            // Insert a random byte.
            let at = rng.below(input.len() + 1);
            input.insert(at, rng.next_u64() as u8);
        }
        2 if !input.is_empty() => {
            // Delete one byte.
            let at = rng.below(input.len());
            input.remove(at);
        }
        3 if !input.is_empty() => {
            // Truncate.
            input.truncate(rng.below(input.len()));
        }
        4 => {
            // Append a short random block.
            for _ in 0..rng.below(16) + 1 {
                input.push(rng.next_u64() as u8);
            }
        }
        _ => {
            // Splice a window from another corpus entry (or scramble the
            // whole input when the corpus is empty).
            if let Some(other) = corpus.get(rng.below(corpus.len().max(1))) {
                if !other.is_empty() && !input.is_empty() {
                    let src = rng.below(other.len());
                    let dst = rng.below(input.len());
                    let n = rng.below((other.len() - src).min(input.len() - dst)) + 1;
                    input[dst..dst + n].copy_from_slice(&other[src..src + n]);
                    return;
                }
            }
            let extra = rng.next_u64().to_le_bytes();
            input.extend_from_slice(&extra);
        }
    }
}

/// Runs `harness` over the corpus plus a bounded stream of mutated
/// inputs. `extra_seeds` join the corpus (for seeds too large or too
/// environment-dependent to check in, e.g. a freshly-taken snapshot).
///
/// On a panic the input is written to `fuzz/artifacts/<target>/` and the
/// process exits with a non-zero status, mirroring libFuzzer.
pub fn run_with_seeds(target: &str, extra_seeds: Vec<Vec<u8>>, harness: impl Fn(&[u8])) {
    let iters = env_u64("SWALLOW_FUZZ_ITERS", DEFAULT_ITERS);
    let seed = env_u64("SWALLOW_FUZZ_SEED", DEFAULT_SEED);
    let mut corpus = load_corpus(target);
    corpus.extend(extra_seeds);
    let mut rng = Rng::new(seed);
    let mut executed: u64 = 0;

    let mut check = |input: &[u8]| {
        executed += 1;
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| harness(input)));
        if outcome.is_err() {
            let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("artifacts")
                .join(target);
            let _ = fs::create_dir_all(&dir);
            let path = dir.join(format!("crash-{:016x}", fnv1a64(input)));
            let _ = fs::write(&path, input);
            eprintln!(
                "{target}: input of {} bytes panicked; artifact written to {}",
                input.len(),
                path.display()
            );
            std::process::exit(101);
        }
    };

    for entry in &corpus {
        check(entry);
    }
    for _ in 0..iters {
        let mut input = corpus
            .get(rng.below(corpus.len().max(1)))
            .cloned()
            .unwrap_or_default();
        for _ in 0..rng.below(4) + 1 {
            mutate(&mut input, &corpus, &mut rng);
        }
        check(&input);
    }
    println!(
        "{target}: {executed} inputs ({} corpus + {iters} mutated), 0 crashes",
        corpus.len()
    );
}

/// [`run_with_seeds`] without extra in-memory seeds.
pub fn run(target: &str, harness: impl Fn(&[u8])) {
    run_with_seeds(target, Vec::new(), harness);
}

/// The `cargo-fuzz` entry-point idiom, expanded to the bounded driver.
/// The optional `seeds = <expr>` form contributes in-memory seed inputs
/// (a `Vec<Vec<u8>>`) on top of the checked-in corpus.
#[macro_export]
macro_rules! fuzz_target {
    (|$data:ident: &[u8]| $body:block) => {
        fn main() {
            $crate::run(env!("CARGO_BIN_NAME"), |$data: &[u8]| $body);
        }
    };
    (seeds = $seeds:expr, |$data:ident: &[u8]| $body:block) => {
        fn main() {
            $crate::run_with_seeds(env!("CARGO_BIN_NAME"), $seeds, |$data: &[u8]| $body);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn mutation_stream_is_reproducible() {
        let corpus = vec![vec![1u8, 2, 3, 4], vec![0xFF; 8]];
        let gen = |seed: u64| {
            let mut rng = Rng::new(seed);
            let mut out = Vec::new();
            for _ in 0..50 {
                let mut input = corpus[rng.below(corpus.len())].clone();
                mutate(&mut input, &corpus, &mut rng);
                out.push(input);
            }
            out
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8), "different seeds must diverge");
    }
}
