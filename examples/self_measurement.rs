//! The paper's novel energy-transparency feature (§II): "it is possible
//! to create a program that can measure its own power consumption and
//! adapt to the results."
//!
//! A program on core 5 reads its slice's core-rail power through a
//! power-probe resource twice: once while the slice idles, once after it
//! has spun up three more busy threads — and *decides* (in software, on
//! the simulated machine) whether it raised the power draw.
//!
//! ```text
//! cargo run --release --example self_measurement
//! ```

use swallow_repro::swallow::{Assembler, NodeId, SystemBuilder, TimeDelta};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut system = SystemBuilder::new().build()?;

    let program = Assembler::new().assemble(
        "
            getr  r0, probe          # the ADC daughter-board, as a resource
            ldc   r1, 1
            setd  r0, r1             # channel 1: our package's 1 V rail
            getr  r2, timer

            # Phase 1: idle. Wait 4 us (four monitor updates), then read.
            in    r3, r2
            add   r3, r3, 400
            tmwait r2, r3
            in    r4, r0             # microwatts, rail 1, mostly idle
            print r4

            # Phase 2: spin up three busy threads and measure again.
            ldc   r5, 3
            ldap  r6, busy
        spawn:
            tspawn r7, r6, r5
            sub   r5, r5, 1
            bt    r5, spawn
            in    r3, r2
            add   r3, r3, 400
            tmwait r2, r3
            in    r8, r0             # microwatts, rail 1, loaded
            print r8

            # Adapt to the measurement: report 1 if power rose >5%
            # (three busy threads on one of the rail's four cores move
            # the shared rail by ~10%).
            ldc   r9, 21
            mul   r10, r4, r9        # 21 * idle
            ldc   r9, 20
            mul   r11, r8, r9        # 20 * loaded
            lsu   r9, r10, r11       # 21*idle < 20*loaded <=> loaded > 1.05*idle
            print r9
            halt
        busy:
            add   r1, r1, 1
            bu    busy
        ",
    )?;
    // Node 5 sits on rail 1 (packages 2 and 3 share the second SMPS).
    system.load_program(NodeId(5), &program)?;
    system.run_until_quiescent(TimeDelta::from_ms(1));

    let lines: Vec<&str> = system.output(NodeId(5)).lines().collect();
    let [idle_uw, loaded_uw, decision] = lines.as_slice() else {
        panic!("expected three printed values, got {lines:?}");
    };
    println!("self-measured rail power, idle:   {idle_uw} uW");
    println!("self-measured rail power, loaded: {loaded_uw} uW");
    println!(
        "program's own conclusion: load {} the rail power (decision bit = {decision})",
        if decision.trim() == "1" {
            "raised"
        } else {
            "did not raise"
        }
    );

    // Cross-check against the host-side monitor.
    let rail = system.machine().monitor().rail_power(0, 1);
    println!("host-side monitor agrees:         {rail}");
    Ok(())
}
