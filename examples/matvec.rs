//! Distributed matrix–vector multiply on a Swallow slice: the vector is
//! broadcast over channels, matrix rows live in each worker's private
//! 64 KiB SRAM, results stream back to the coordinator — with the energy
//! bill itemised at the end.
//!
//! ```text
//! cargo run --release --example matvec
//! ```

use swallow_repro::swallow::{NodeId, SystemBuilder, TimeDelta};
use swallow_repro::swallow_workloads::matvec::{self, MatVecSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = MatVecSpec {
        n: 12,
        workers: 12,
        seed: 2016, // the year Swallow was published
    };
    let mut system = SystemBuilder::new().build()?;
    let placement = matvec::generate(&spec, system.machine().spec())?;
    placement.apply(&mut system)?;
    let finished = system.run_until_quiescent(TimeDelta::from_ms(50));
    assert!(finished, "matvec should finish");

    let y: Vec<i32> = system
        .output(NodeId(0))
        .lines()
        .map(|l| l.parse().expect("coordinator prints numbers"))
        .collect();
    assert_eq!(y, matvec::expected_y(&spec), "hardware result == oracle");

    println!(
        "y = A·x over {} workers ({}×{} matrix):",
        spec.workers, spec.n, spec.n
    );
    for (i, v) in y.iter().enumerate() {
        println!("  y[{i:>2}] = {v}");
    }
    println!("\ncompleted in {}", system.elapsed());
    println!("{}", system.perf_report());
    println!("\n{}", system.power_report());
    Ok(())
}
