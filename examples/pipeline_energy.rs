//! Energy exploration of a stream pipeline — the kind of parallel-program
//! study Swallow was built for (§I).
//!
//! Runs the same 8-stage pipeline at three clock frequencies and reports
//! energy per item: because static power burns regardless of speed, the
//! slowest clock is *not* the most energy-efficient — the classic
//! race-to-idle trade-off made visible by the platform's energy
//! transparency.
//!
//! ```text
//! cargo run --release --example pipeline_energy
//! ```

use swallow_repro::swallow::{Frequency, SystemBuilder, TimeDelta};
use swallow_repro::swallow_workloads::pipeline::{self, PipelineSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = PipelineSpec {
        stages: 8,
        items: 64,
        work_per_item: 50,
    };
    println!(
        "8-stage pipeline, {} items, {} squarings per item per stage\n",
        spec.items, spec.work_per_item
    );
    println!(
        "{:>8} {:>12} {:>14} {:>16}",
        "clock", "finish time", "total energy", "energy per item"
    );

    for mhz in [100u64, 250, 500] {
        let mut system = SystemBuilder::new()
            .frequency(Frequency::from_mhz(mhz))
            .build()?;
        let placement = pipeline::generate(&spec, system.machine().spec())?;
        placement.apply(&mut system)?;
        let done = system.run_until_quiescent(TimeDelta::from_ms(100));
        assert!(done, "pipeline should drain");
        assert_eq!(
            system.output(placement.last_node()).trim(),
            pipeline::checksum(&spec).to_string(),
            "checksum mismatch at {mhz} MHz"
        );
        let report = system.power_report();
        let per_item = report.ledger.total() * (1.0 / spec.items as f64);
        println!(
            "{:>5}MHz {:>12} {:>14} {:>16}",
            mhz,
            system.elapsed().to_string(),
            report.ledger.total().to_string(),
            per_item.to_string(),
        );
    }
    println!(
        "\nNote the shape: halving the clock does not halve energy —\n\
         static power (46 mW/core) accrues for longer. Swallow's answer\n\
         is DVFS (see the fig4 experiment) or racing to idle."
    );
    Ok(())
}
