//! Quickstart: boot a 16-core Swallow slice, run a program on one core,
//! exchange a message between two cores, and read the energy report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use swallow_repro::swallow::{Assembler, NodeId, SystemBuilder, TimeDelta};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One Swallow slice: eight XS1-L2A packages, sixteen cores, unwoven
    // lattice network, five-supply power tree.
    let mut system = SystemBuilder::new().slices(1, 1).build()?;
    println!("booted {} cores", system.core_count());

    // Core 0 computes 6 × 7 and sends the result to core 8 (its vertical
    // neighbour, one board link South). Core 8 prints whatever arrives.
    let sender = Assembler::new().assemble(
        "
            getr  r0, chanend        # allocate a channel end
            ldc   r1, 0x00080002     # core 8's first chanend (node<<16|type)
            setd  r0, r1             # aim it
            ldc   r2, 6
            ldc   r3, 7
            mul   r4, r2, r3
            out   r0, r4             # 32-bit word -> 4 tokens on the wire
            outct r0, end            # close the route (wormhole release)
            freet
        ",
    )?;
    let receiver = Assembler::new().assemble(
        "
            getr  r0, chanend
            in    r1, r0             # blocks until the word arrives
            chkct r0, end
            print r1
            freet
        ",
    )?;
    system.load_program(NodeId(0), &sender)?;
    system.load_program(NodeId(8), &receiver)?;

    let finished = system.run_until_quiescent(TimeDelta::from_us(100));
    assert!(finished, "programs should drain quickly");
    println!("core 8 printed: {}", system.output(NodeId(8)).trim());

    // Energy transparency: every joule of the run is attributed.
    println!("\n{}", system.power_report());
    println!("\n{}", system.perf_report());
    Ok(())
}
