//! DVFS tuning (§III.B / Fig. 4): find the most energy-efficient clock
//! for a fixed batch of work.
//!
//! At a fixed 1 V, finishing fast and idling ("race to idle") usually
//! wins because static power accrues with time. With the DVFS voltage
//! curve the paper measured (0.60 V @ 71 MHz … 0.95 V @ 500 MHz), slower
//! clocks become competitive. This example computes energy-to-completion
//! for a farm workload across clocks under both supply policies.
//!
//! ```text
//! cargo run --release --example dvfs_tuning
//! ```

use swallow_repro::swallow::energy::{CorePowerModel, DvfsTable};
use swallow_repro::swallow::{Frequency, NodeId, SystemBuilder, TimeDelta};
use swallow_repro::swallow_workloads::farm::{self, FarmSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = FarmSpec {
        workers: 8,
        tasks: 40,
        work_per_task: 100,
    };
    let table = DvfsTable::swallow();
    println!(
        "farm: {} workers, {} tasks, {} squarings/task\n",
        spec.workers, spec.tasks, spec.work_per_task
    );
    println!(
        "{:>8} {:>12} {:>14} {:>8} {:>16}",
        "clock", "finish", "E @ 1V", "V(f)", "E @ DVFS"
    );

    let mut best: Option<(u64, f64)> = None;
    for mhz in [71u64, 100, 150, 250, 350, 500] {
        let f = Frequency::from_mhz(mhz);
        let volts = table.voltage_at(f);
        let mut system = SystemBuilder::new().frequency(f).build()?;
        // Apply the DVFS voltage to every core's power model.
        for node in system.nodes().collect::<Vec<_>>() {
            let model = CorePowerModel::swallow().at_voltage(volts);
            system.machine_mut().core_mut(node).set_power_model(model);
        }
        let placement = farm::generate(&spec, system.machine().spec())?;
        placement.apply(&mut system)?;
        let done = system.run_until_quiescent(TimeDelta::from_ms(200));
        assert!(done, "farm should finish at {mhz} MHz");
        assert_eq!(
            system.output(NodeId(0)).trim(),
            farm::expected_sum(&spec).to_string()
        );
        let e_dvfs = system.power_report().ledger.total();
        // The same run at 1 V scales by 1/V² (P = C·V²·f).
        let e_1v = e_dvfs * (1.0 / volts.squared());
        println!(
            "{:>5}MHz {:>12} {:>14} {:>7.2}V {:>16}",
            mhz,
            system.elapsed().to_string(),
            e_1v.to_string(),
            volts.as_volts(),
            e_dvfs.to_string(),
        );
        let joules = e_dvfs.as_joules();
        if best.map(|(_, e)| joules < e).unwrap_or(true) {
            best = Some((mhz, joules));
        }
    }
    let (mhz, _) = best.expect("swept at least one clock");
    println!("\nmost efficient clock under DVFS for this workload: {mhz} MHz");
    Ok(())
}
