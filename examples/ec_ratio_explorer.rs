//! Explore the §V.D computation-to-communication (EC) ratio ladder.
//!
//! Prints the analytic E, C and EC for each locality level, then runs the
//! chip-aggregate and contended scenarios on a simulated slice to show
//! what link aggregation buys (four flows over four internal links vs
//! four flows fighting for one external link).
//!
//! ```text
//! cargo run --release --example ec_ratio_explorer
//! ```

use swallow_repro::swallow::{Frequency, SystemBuilder, TimeDelta};
use swallow_repro::swallow_workloads::ec::EcScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let f = Frequency::from_mhz(500);
    println!("analytic EC ladder at {f} (paper §V.D: 1 / 16 / 64 / 256 / 512):\n");
    println!(
        "{:<30} {:>10} {:>10} {:>8} {:>8}",
        "scenario", "E (Gb/s)", "C (Gb/s)", "E/C", "paper"
    );
    for s in EcScenario::ALL {
        println!(
            "{:<30} {:>10.2} {:>10.3} {:>8.0} {:>8.0}",
            s.name(),
            s.compute_bandwidth_bps(f) / 1e9,
            s.comm_bandwidth_bps(f) / 1e9,
            s.analytic_ratio(f),
            s.paper_ratio()
        );
    }

    println!("\nmeasured achieved bandwidth (64 words per flow):");
    for scenario in [EcScenario::ChipAggregate, EcScenario::ExternalContended] {
        let mut system = SystemBuilder::new().build()?;
        scenario.workload(64)?.apply(&mut system)?;
        let t0 = system.now();
        let done = system.run_until_quiescent(TimeDelta::from_ms(50));
        assert!(done, "{} should drain", scenario.name());
        let secs = system.now().since(t0).as_secs_f64();
        let bits = 4.0 * 64.0 * 32.0;
        println!(
            "  {:<30} {:>8.1} Mb/s (C budget {:>7.1} Mb/s)",
            scenario.name(),
            bits / secs / 1e6,
            scenario.comm_bandwidth_bps(f) / 1e6
        );
    }
    println!(
        "\nThe paper's advice follows directly: keep communication core- or\n\
         chip-local where possible; off-chip links are the scarce resource."
    );
    Ok(())
}
