//! The decode→execute hot loop: one busy core ticked through a
//! calibrated ALU/memory/branch mix, with the predecoded-instruction
//! cache on vs off. The delta is what decode-once execution buys in the
//! steady state (the cache-on path is a single array load per issue
//! slot; the cache-off path re-decodes the SRAM words every time).

use swallow_isa::{Assembler, NodeId};
use swallow_testkit::criterion::{criterion_group, criterion_main, Criterion};
use swallow_xcore::{Core, CoreConfig};

/// Clock edges per timed sample (enough to dwarf setup cost).
const TICKS: u64 = 50_000;

fn busy_core(decode_cache: bool) -> Core {
    let program = Assembler::new()
        .assemble(
            "
                ldc   r0, 0
                ldc   r10, 0x1000
            mix:
                add   r1, r1, 1
                add   r2, r2, r1
                xor   r3, r3, r1
                shl   r4, r1, 3
                and   r5, r3, r4
                or    r6, r5, r2
                sub   r7, r6, r1
                mul   r8, r1, r2
                ldw   r9, r10[0]
                stw   r9, r10[1]
                bu    mix
            ",
        )
        .expect("mix assembles");
    let mut core = Core::new(CoreConfig::swallow(NodeId(0)));
    core.set_decode_cache(decode_cache);
    core.load_program(&program).expect("fits");
    core
}

fn run(core: &mut Core) -> u64 {
    for _ in 0..TICKS {
        core.tick(core.next_tick_at());
    }
    assert!(core.trap().is_none(), "trap: {:?}", core.trap());
    core.instret()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("step_thread");
    g.sample_size(10);
    for (id, cache) in [("cache_on", true), ("cache_off", false)] {
        g.bench_function(id, |b| {
            b.iter(|| {
                let mut core = busy_core(cache);
                run(&mut core)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
