//! Core-local resources: channel ends, timers, synchronisers, locks and
//! power probes.
//!
//! Resources are the XS1's ISA-level I/O abstraction: `getr` allocates
//! one, `in`/`out`/`setd` operate on it, `freer` releases it. Channel
//! ends are the network endpoints; their identifiers are globally
//! routable (see [`swallow_isa::ident`]).

use std::collections::VecDeque;
use swallow_isa::{ResType, ResourceId, ThreadId, Token};

/// Token capacity of a channel end's input and output buffers. The input
/// buffer bound is what credit-based flow control protects (§V.B): a
/// switch only forwards a token when the destination buffer has room.
pub const CHANEND_BUF_TOKENS: usize = 8;

/// Event configuration of a resource (the XS1 select mechanism): a
/// handler address, the owning thread, and an armed flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventCfg {
    /// Absolute handler address (`setv`).
    pub vector: u32,
    /// The thread that armed the event (`eeu` executor).
    pub owner: ThreadId,
    /// Whether events are currently enabled (`eeu`/`edu`).
    pub enabled: bool,
}

/// A channel end.
///
/// Outgoing tokens carry the destination that was configured when they
/// were emitted (the route header is conceptually built at `out` time);
/// a later `setd` affects only subsequent output.
#[derive(Clone, Debug, Default)]
pub struct Chanend {
    /// Destination resource set by `setd`; `None` until routed.
    pub dest: Option<ResourceId>,
    /// Tokens awaiting transmission (drained by the local switch), each
    /// stamped with its destination.
    pub out_buf: VecDeque<(Token, ResourceId)>,
    /// Tokens delivered by the network, awaiting `in`/`int`/`chkct`.
    pub in_buf: VecDeque<Token>,
    /// Event configuration (`setv`/`eeu`).
    pub event: Option<EventCfg>,
}

impl Chanend {
    /// Free space in the output buffer, in tokens.
    pub fn out_space(&self) -> usize {
        CHANEND_BUF_TOKENS - self.out_buf.len()
    }

    /// Free space in the input buffer, in tokens (the credit the network
    /// sees).
    pub fn in_space(&self) -> usize {
        CHANEND_BUF_TOKENS - self.in_buf.len()
    }
}

/// A synchroniser (barrier). `setd` sets the expected party count.
#[derive(Clone, Debug)]
pub struct Sync {
    /// Parties required to release the barrier (including the master).
    pub expected: u32,
    /// Threads currently waiting.
    pub waiting: Vec<ThreadId>,
}

impl Default for Sync {
    fn default() -> Self {
        // A lone master passes straight through until `setd` raises the
        // count — the forgiving default keeps single-thread tests simple.
        Sync {
            expected: 1,
            waiting: Vec::new(),
        }
    }
}

/// A hardware lock: `in` acquires (queueing the thread), `out` releases.
#[derive(Clone, Debug, Default)]
pub struct Lock {
    /// Current owner.
    pub held_by: Option<ThreadId>,
    /// Threads queued for acquisition, FIFO.
    pub queue: VecDeque<ThreadId>,
}

/// A power probe: reads the live power of one measurement channel
/// (Swallow's self-measurement feature, §II). `setd` selects the channel.
#[derive(Clone, Debug, Default)]
pub struct Probe {
    /// Selected ADC channel (0–4).
    pub channel: u8,
}

/// A timer resource: reading one samples the 100 MHz reference clock;
/// with a threshold (`setd`) and an armed event it fires when the clock
/// passes the threshold.
#[derive(Clone, Debug, Default)]
pub struct Timer {
    /// Event trigger threshold in reference ticks (`setd`).
    pub threshold: Option<u32>,
    /// Event configuration (`setv`/`eeu`).
    pub event: Option<EventCfg>,
}

/// The per-core resource table.
#[derive(Clone, Debug)]
pub struct ResourceTable {
    /// Channel ends; `None` = unallocated.
    pub chanends: Vec<Option<Chanend>>,
    /// Timers; `None` = unallocated.
    pub timers: Vec<Option<Timer>>,
    /// Synchronisers.
    pub syncs: Vec<Option<Sync>>,
    /// Locks.
    pub locks: Vec<Option<Lock>>,
    /// Power probes.
    pub probes: Vec<Option<Probe>>,
}

impl ResourceTable {
    /// Creates a table with XS1-L-like resource counts.
    pub fn new(chanends: u8, timers: u8, syncs: u8, locks: u8, probes: u8) -> Self {
        ResourceTable {
            chanends: vec![None; chanends as usize],
            timers: vec![None; timers as usize],
            syncs: vec![None; syncs as usize],
            locks: vec![None; locks as usize],
            probes: vec![None; probes as usize],
        }
    }

    /// Allocates a resource of the given type, returning its index.
    pub fn alloc(&mut self, ty: ResType) -> Option<u8> {
        fn grab<T: Default>(slots: &mut [Option<T>]) -> Option<u8> {
            let idx = slots.iter().position(|s| s.is_none())?;
            slots[idx] = Some(T::default());
            Some(idx as u8)
        }
        match ty {
            ResType::Chanend => grab(&mut self.chanends),
            ResType::Sync => grab(&mut self.syncs),
            ResType::Lock => grab(&mut self.locks),
            ResType::PowerProbe => grab(&mut self.probes),
            ResType::Timer => grab(&mut self.timers),
        }
    }

    /// Frees a resource. Returns false if it was not allocated.
    pub fn free(&mut self, ty: ResType, index: u8) -> bool {
        let index = index as usize;
        match ty {
            ResType::Chanend => self
                .chanends
                .get_mut(index)
                .map(|s| s.take().is_some())
                .unwrap_or(false),
            ResType::Sync => self
                .syncs
                .get_mut(index)
                .map(|s| s.take().is_some())
                .unwrap_or(false),
            ResType::Lock => self
                .locks
                .get_mut(index)
                .map(|s| s.take().is_some())
                .unwrap_or(false),
            ResType::PowerProbe => self
                .probes
                .get_mut(index)
                .map(|s| s.take().is_some())
                .unwrap_or(false),
            ResType::Timer => self
                .timers
                .get_mut(index)
                .map(|s| s.take().is_some())
                .unwrap_or(false),
        }
    }

    /// Accesses an allocated channel end.
    pub fn chanend(&self, index: u8) -> Option<&Chanend> {
        self.chanends.get(index as usize)?.as_ref()
    }

    /// Mutable access to an allocated channel end.
    pub fn chanend_mut(&mut self, index: u8) -> Option<&mut Chanend> {
        self.chanends.get_mut(index as usize)?.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_exhausts_and_frees() {
        let mut table = ResourceTable::new(2, 1, 1, 1, 1);
        let a = table.alloc(ResType::Chanend).expect("first");
        let b = table.alloc(ResType::Chanend).expect("second");
        assert_ne!(a, b);
        assert_eq!(table.alloc(ResType::Chanend), None);
        assert!(table.free(ResType::Chanend, a));
        assert!(!table.free(ResType::Chanend, a));
        assert_eq!(table.alloc(ResType::Chanend), Some(a));
    }

    #[test]
    fn every_type_allocates_independently() {
        let mut table = ResourceTable::new(1, 1, 1, 1, 1);
        for ty in ResType::ALL {
            assert_eq!(table.alloc(ty), Some(0), "{ty}");
            assert_eq!(table.alloc(ty), None, "{ty}");
            assert!(table.free(ty, 0), "{ty}");
        }
    }

    #[test]
    fn chanend_buffer_accounting() {
        let mut ch = Chanend::default();
        assert_eq!(ch.out_space(), CHANEND_BUF_TOKENS);
        let dest = ResourceId::new(swallow_isa::NodeId(0), 0, ResType::Chanend);
        ch.out_buf.push_back((Token::Data(1), dest));
        assert_eq!(ch.out_space(), CHANEND_BUF_TOKENS - 1);
        ch.in_buf.extend([Token::Data(2); 8]);
        assert_eq!(ch.in_space(), 0);
    }

    #[test]
    fn sync_default_is_single_party() {
        assert_eq!(Sync::default().expected, 1);
    }

    #[test]
    fn out_of_range_free_is_rejected() {
        let mut table = ResourceTable::new(1, 1, 1, 1, 1);
        assert!(!table.free(ResType::Chanend, 200));
        assert!(!table.free(ResType::Timer, 200));
    }
}
