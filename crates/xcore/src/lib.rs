//! XS1-L-style core microarchitecture simulator.
//!
//! This crate models one Swallow processor core: the four-stage pipeline
//! with up to eight zero-overhead hardware threads (Eq. 2 of the paper),
//! the 64 KiB single-cycle SRAM, the ISA-level resources (channel ends,
//! timers, synchronisers, locks and — Swallow-specific — power probes),
//! and cycle-by-cycle energy accounting against the models in
//! `swallow-energy`.
//!
//! A [`Core`] is driven by calling [`Core::tick`] once per clock period
//! and exchanging tokens through its channel ends; it has no knowledge of
//! the network fabric (`swallow-noc`) or the physical board
//! (`swallow-board`) above it.
//!
//! ```
//! use swallow_isa::{Assembler, NodeId};
//! use swallow_xcore::{Core, CoreConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut core = Core::new(CoreConfig::swallow(NodeId(0)));
//! core.load_program(&Assembler::new().assemble(
//!     "ldc r0, 6\n ldc r1, 7\n mul r2, r0, r1\n print r2\n freet",
//! )?)?;
//! while !core.is_quiescent() {
//!     core.tick(core.next_tick_at());
//! }
//! assert_eq!(core.output(), "42\n");
//! # Ok(())
//! # }
//! ```

pub mod core;
pub mod decode_cache;
pub mod resource;
mod snapshot;
pub mod sram;
pub mod thread;

pub use crate::core::{ClassCounts, Core, CoreConfig, DeliverError, LoadError, Trap, TrapCause};
pub use decode_cache::{decode_cache_default, DecodeCache, DECODE_CACHE_ENV};
pub use resource::{Chanend, ResourceTable, CHANEND_BUF_TOKENS};
pub use sram::{FetchError, MemError, Sram, DEFAULT_SRAM_BYTES};
pub use thread::{Block, Thread, ThreadState, MAX_THREADS, TERMINATOR_PC};
