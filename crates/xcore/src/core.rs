//! The XS1-L-style core model.
//!
//! One [`Core`] is one processor: a four-stage pipeline interleaving up to
//! eight hardware threads (one instruction issue per cycle, each thread at
//! most once per four cycles — Eq. 2 of the paper), 64 KiB of single-cycle
//! SRAM, and a table of ISA-managed resources (channel ends, timers,
//! synchronisers, locks, power probes).
//!
//! The core is *network-agnostic*: channel-end output buffers are drained
//! by whoever owns the core (a switch model, or a test), and tokens are
//! delivered back with [`Core::deliver`]. Credit-based flow control falls
//! out of [`Core::can_accept`]: the network must not deliver into a full
//! buffer.
//!
//! Every cycle charges static leakage plus clock-tree energy; every issued
//! instruction charges its class energy (see `swallow-energy`). The split
//! between the Fig. 2 categories is made here, at the moment of spending.

use crate::resource::{EventCfg, ResourceTable};
use crate::snapshot;
use crate::sram::{FetchError, MemError, Sram, DEFAULT_SRAM_BYTES};
use crate::thread::{Block, Thread, ThreadState, MAX_THREADS, TERMINATOR_PC};
use std::fmt;
use swallow_energy::core_power::IDLE_NETWORK_FRACTION;
use swallow_energy::{CorePowerModel, Energy, EnergyLedger, NodeCategory, Voltage};
use swallow_isa::token::{bytes_to_word, word_to_tokens};
use swallow_isa::{
    issue_cycles, DecodeError, EnergyClass, HostcallFn, Instr, MemOffset, NodeId, Predecoded, Reg,
    ResType, ResourceId, ThreadId, Token,
};
use swallow_sim::{
    ByteReader, ByteWriter, CodecError, Frequency, Time, TimeDelta, TraceEvent, TraceSink, Tracer,
};

/// Reference-clock tick period of the architectural timers (100 MHz).
pub const TIMER_TICK_PS: u64 = 10_000;

/// Per-thread stack carve-out used by `tspawn` and boot, in bytes.
pub const DEFAULT_STACK_BYTES: u32 = 4096;

/// Number of channel ends per core.
pub const CHANEND_COUNT: u8 = 32;
/// Number of timers per core.
pub const TIMER_COUNT: u8 = 10;
/// Number of synchronisers per core.
pub const SYNC_COUNT: u8 = 7;
/// Number of locks per core.
pub const LOCK_COUNT: u8 = 4;
/// Number of power probes per core (the Swallow self-measurement hook).
pub const PROBE_COUNT: u8 = 2;
/// Number of ADC channels a probe can select between.
pub const PROBE_CHANNELS: usize = 5;

/// Why a thread trapped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrapCause {
    /// Data memory fault.
    Mem(MemError),
    /// Instruction fetch/decode fault.
    Decode(DecodeError),
    /// A resource operand was not a live local resource of the right type.
    BadResource {
        /// The raw register value.
        raw: u32,
    },
    /// `chkct` consumed a token other than the expected control token.
    CtMismatch {
        /// Expected control-token value.
        expected: u8,
        /// Token actually at the head of the buffer.
        got: Token,
    },
    /// A data input found a control token at the head of the buffer.
    DataExpected {
        /// The offending token.
        got: Token,
    },
    /// `out` on a channel end with no destination configured.
    NoDest {
        /// The local channel-end index.
        chanend: u8,
    },
    /// An operation that is architecturally invalid in this context.
    IllegalOp(&'static str),
}

impl fmt::Display for TrapCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapCause::Mem(e) => write!(f, "memory fault: {e}"),
            TrapCause::Decode(e) => write!(f, "decode fault: {e}"),
            TrapCause::BadResource { raw } => write!(f, "bad resource id {raw:#010x}"),
            TrapCause::CtMismatch { expected, got } => {
                write!(f, "chkct expected control token {expected}, got {got}")
            }
            TrapCause::DataExpected { got } => write!(f, "expected data token, got {got}"),
            TrapCause::NoDest { chanend } => write!(f, "chanend {chanend} has no destination"),
            TrapCause::IllegalOp(what) => write!(f, "illegal operation: {what}"),
        }
    }
}

/// A recorded trap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trap {
    /// The thread that trapped.
    pub thread: ThreadId,
    /// Program counter of the faulting instruction.
    pub pc: u32,
    /// Why.
    pub cause: TrapCause,
}

/// Error from [`Core::load_program`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadError {
    /// The image does not fit in SRAM.
    TooLarge {
        /// Image size in bytes.
        image: u32,
        /// SRAM size in bytes.
        sram: u32,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::TooLarge { image, sram } => {
                write!(f, "program of {image} bytes exceeds {sram} bytes of SRAM")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// Error from [`Core::deliver`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliverError {
    /// No allocated channel end at that index.
    NoSuchChanend(u8),
    /// The input buffer is full (the sender violated flow control).
    Full(u8),
}

impl fmt::Display for DeliverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeliverError::NoSuchChanend(i) => write!(f, "no chanend {i} allocated"),
            DeliverError::Full(i) => write!(f, "chanend {i} input buffer full"),
        }
    }
}

impl std::error::Error for DeliverError {}

/// Configuration of one core.
#[derive(Clone, Debug)]
pub struct CoreConfig {
    /// The core's network node identity.
    pub node: NodeId,
    /// Core clock.
    pub frequency: Frequency,
    /// Power model (voltage-scaled for DVFS studies).
    pub power: CorePowerModel,
    /// SRAM size in bytes.
    pub sram_bytes: u32,
    /// Stack carve-out per hardware thread.
    pub stack_bytes: u32,
}

impl CoreConfig {
    /// The Swallow shipping configuration: 500 MHz, 1 V, 64 KiB SRAM.
    pub fn swallow(node: NodeId) -> Self {
        CoreConfig {
            node,
            frequency: Frequency::from_mhz(500),
            power: CorePowerModel::swallow(),
            sram_bytes: DEFAULT_SRAM_BYTES,
            stack_bytes: DEFAULT_STACK_BYTES,
        }
    }
}

/// Per-class retired-instruction counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassCounts([u64; 8]);

impl ClassCounts {
    /// Count for one class.
    pub fn get(&self, class: EnergyClass) -> u64 {
        self.0[class as usize]
    }

    fn bump(&mut self, class: EnergyClass) {
        self.0[class as usize] += 1;
    }
}

/// Per-tick energy constants. Every field is a pure function of the
/// power model and clock period, so caching them is bit-exact (the same
/// f64 products the uncached expressions would produce); they are
/// refreshed whenever either input changes (DVFS, brownout derating).
#[derive(Clone, Copy, Debug)]
struct TickEnergy {
    /// Leakage over one clock period plus the core share of the
    /// clock-tree/idle-pipeline energy — both land in
    /// [`NodeCategory::Static`], so they are summed once here instead of
    /// charged separately every cycle.
    static_cycle: Energy,
    /// Clock-tree/idle-pipeline energy per cycle, network share.
    clk_net: Energy,
    /// Active-slot energy per issue cycle, indexed by `EnergyClass`.
    slot: [Energy; 8],
}

impl TickEnergy {
    fn of(power: &CorePowerModel, period: TimeDelta) -> Self {
        let clk = power.idle_cycle_energy();
        let mut slot = [Energy::ZERO; 8];
        for class in EnergyClass::ALL {
            slot[class as usize] = power.slot_energy(class);
        }
        TickEnergy {
            static_cycle: power.static_power() * period + clk * (1.0 - IDLE_NETWORK_FRACTION),
            clk_net: clk * IDLE_NETWORK_FRACTION,
            slot,
        }
    }
}

/// Outcome of executing one instruction (before commit).
enum Outcome {
    /// Advance the pc by `words`.
    Advance(usize),
    /// Jump to a byte address.
    Jump(u32),
    /// Stay at this pc and block; re-executes when woken.
    Block(Block),
    /// Advance and then sleep (the divider).
    AdvanceSleep(usize, Block),
    /// The thread terminates.
    Freet,
    /// The thread traps.
    Trap(TrapCause),
    /// The whole core halts (hostcall).
    HaltCore,
}

/// An XS1-L-style core.
///
/// ```
/// use swallow_isa::{Assembler, NodeId};
/// use swallow_xcore::{Core, CoreConfig};
/// use swallow_sim::Time;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut core = Core::new(CoreConfig::swallow(NodeId(0)));
/// core.load_program(&Assembler::new().assemble("ldc r0, 41\nadd r0, r0, 1\nprint r0\nfreet")?)?;
/// while !core.is_quiescent() {
///     core.tick(core.next_tick_at());
/// }
/// assert_eq!(core.output(), "42\n");
/// # Ok(())
/// # }
/// ```
pub struct Core {
    config: CoreConfig,
    period: TimeDelta,
    sram: Sram,
    threads: Vec<Thread>,
    rotation: Vec<u8>,
    wheel: u64,
    /// Threads blocked on a self-waking condition (timer, divider, or a
    /// timed event). Maintained incrementally so quiescence is O(1).
    sleepers: u32,
    /// Chanends with a non-empty output buffer. Maintained incrementally
    /// so the network-injection scan can be skipped when zero.
    tx_pending_count: u32,
    resources: ResourceTable,
    probe_readings: [u32; PROBE_CHANNELS],
    cycle: u64,
    now: Time,
    halted: bool,
    trap: Option<Trap>,
    ledger: EnergyLedger,
    class_counts: ClassCounts,
    instret: u64,
    output: String,
    tracer: Tracer,
    /// When each thread was last scheduled (entered the rotation); pairs
    /// with `sched_instret` to emit `BlockRetire` spans. Maintained even
    /// with tracing off so a tracer can be attached mid-run.
    sched_at: [Time; MAX_THREADS],
    /// Each thread's retired-instruction count when it was last scheduled.
    sched_instret: [u64; MAX_THREADS],
    /// Fault injection: no instruction issues strictly before this
    /// instant (the pipeline is glitch-gated). `Time::ZERO` — the
    /// default — means no stall; everything else about the cycle
    /// (energy, timer wakes, the issue wheel) is unaffected, so a stall
    /// perturbs nothing when absent.
    stalled_until: Time,
    /// Cached per-tick energy charges (see [`TickEnergy`]).
    tick_energy: TickEnergy,
}

impl Core {
    /// Creates a powered-on, idle core.
    pub fn new(config: CoreConfig) -> Self {
        let period = config.frequency.period();
        Core {
            sram: Sram::new(config.sram_bytes),
            threads: (0..MAX_THREADS).map(|_| Thread::free()).collect(),
            rotation: Vec::new(),
            wheel: 0,
            sleepers: 0,
            tx_pending_count: 0,
            resources: ResourceTable::new(
                CHANEND_COUNT,
                TIMER_COUNT,
                SYNC_COUNT,
                LOCK_COUNT,
                PROBE_COUNT,
            ),
            probe_readings: [0; PROBE_CHANNELS],
            cycle: 0,
            now: Time::ZERO,
            halted: false,
            trap: None,
            ledger: EnergyLedger::new(),
            class_counts: ClassCounts::default(),
            instret: 0,
            output: String::new(),
            tracer: Tracer::Off,
            sched_at: [Time::ZERO; MAX_THREADS],
            sched_instret: [0; MAX_THREADS],
            stalled_until: Time::ZERO,
            tick_energy: TickEnergy::of(&config.power, period),
            period,
            config,
        }
    }

    // --- introspection ----------------------------------------------------

    /// The core's node identity.
    pub fn node(&self) -> NodeId {
        self.config.node
    }

    /// The core clock frequency.
    pub fn frequency(&self) -> Frequency {
        self.config.frequency
    }

    /// Changes the core clock (dynamic frequency scaling, §III.B).
    pub fn set_frequency(&mut self, f: Frequency) {
        self.config.frequency = f;
        self.period = f.period();
        self.tick_energy = TickEnergy::of(&self.config.power, self.period);
        if self.tracer.is_enabled() {
            self.tracer.emit(
                self.now,
                TraceEvent::DvfsChange {
                    core: self.config.node.0,
                    hz: f.as_hz(),
                },
            );
        }
    }

    /// Replaces this core's trace sink. The tracer is owned by the core,
    /// so under the parallel engine it travels with the core onto its
    /// shard thread and records stay in deterministic per-core order.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// This core's trace sink.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Replaces the power model (e.g. to apply a DVFS voltage).
    pub fn set_power_model(&mut self, power: CorePowerModel) {
        self.config.power = power;
        self.tick_energy = TickEnergy::of(&self.config.power, self.period);
    }

    /// The active power model (to save before a temporary derating).
    pub fn power_model(&self) -> CorePowerModel {
        self.config.power
    }

    /// Fault injection: gate instruction issue until `until` (a clock
    /// glitch / pipeline stall). The core keeps ticking — static and
    /// clock-tree energy burn, timers fire, sleepers wake — it just
    /// issues nothing. Extends, never shortens, an existing stall.
    pub fn fault_stall_until(&mut self, until: Time) {
        self.stalled_until = self.stalled_until.max(until);
    }

    /// End of the current issue-stall window (`Time::ZERO` when the core
    /// was never stalled).
    pub fn stalled_until(&self) -> Time {
        self.stalled_until
    }

    /// Fault injection: the core dies — permanently halted, exactly like
    /// the powered-down state a halted program reaches, so it charges no
    /// further energy and counts as quiescent. Its switch stays alive
    /// (the XS1 switch is a separate block): tokens already queued or
    /// addressed to it keep using the fabric.
    pub fn fault_kill(&mut self) {
        self.halted = true;
    }

    /// Total instructions retired.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Instructions retired by one thread.
    pub fn thread_instret(&self, thread: ThreadId) -> u64 {
        self.threads
            .get(thread.0 as usize)
            .map(|t| t.instret)
            .unwrap_or(0)
    }

    /// Core cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Retired-instruction counts by energy class.
    pub fn class_counts(&self) -> &ClassCounts {
        &self.class_counts
    }

    /// The energy ledger (Fig. 2 categories).
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Text printed via hostcalls.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// The first trap, if any thread trapped.
    pub fn trap(&self) -> Option<Trap> {
        self.trap
    }

    /// True once `halt` was executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of live (allocated) threads.
    pub fn live_threads(&self) -> usize {
        self.threads.iter().filter(|t| t.is_live()).count()
    }

    /// Number of ready (slot-occupying) threads.
    pub fn ready_threads(&self) -> usize {
        self.rotation.len()
    }

    /// Scheduling state of a thread.
    pub fn thread_state(&self, thread: ThreadId) -> ThreadState {
        self.threads
            .get(thread.0 as usize)
            .map(|t| t.state)
            .unwrap_or(ThreadState::Free)
    }

    /// True when nothing can happen without external input: halted, or no
    /// thread is ready and none is sleeping on a timer or divider.
    ///
    /// O(1): the ready set is the rotation and the sleeper population is
    /// counted incrementally at every thread state transition.
    pub fn is_quiescent(&self) -> bool {
        debug_assert_eq!(
            self.sleepers,
            self.threads
                .iter()
                .filter(|t| Self::state_is_sleeper(&t.state))
                .count() as u32,
            "sleeper counter out of sync"
        );
        self.halted || (self.rotation.is_empty() && self.sleepers == 0)
    }

    /// Whether a thread state will wake by itself (without external
    /// input) as simulated time advances.
    fn state_is_sleeper(state: &ThreadState) -> bool {
        match state {
            ThreadState::Blocked(Block::Timer { .. })
            | ThreadState::Blocked(Block::Divide { .. }) => true,
            ThreadState::Blocked(Block::Event { until }) => *until != Time::MAX,
            _ => false,
        }
    }

    /// Changes a thread's scheduling state, keeping the sleeper count in
    /// step. All state writes must go through here.
    fn set_thread_state(&mut self, tid: u8, state: ThreadState) {
        let was = Self::state_is_sleeper(&self.threads[tid as usize].state);
        let is = Self::state_is_sleeper(&state);
        self.threads[tid as usize].state = state;
        self.sleepers = self.sleepers - was as u32 + is as u32;
    }

    /// The earliest timer/divider wake time, if any thread sleeps on one.
    ///
    /// O(1) on the hot path: the sleeper population is counted
    /// incrementally, so a fully busy core answers `None` without
    /// scanning the thread table.
    pub fn next_wake(&self) -> Option<Time> {
        if self.sleepers == 0 {
            return None;
        }
        self.threads
            .iter()
            .filter_map(|t| match t.state {
                ThreadState::Blocked(Block::Timer { until })
                | ThreadState::Blocked(Block::Event { until })
                    if until != Time::MAX =>
                {
                    Some(until)
                }
                ThreadState::Blocked(Block::Divide { until_cycle }) => {
                    let cycles = until_cycle.saturating_sub(self.cycle);
                    Some(self.now + self.period.saturating_mul(cycles))
                }
                _ => None,
            })
            .min()
    }

    /// The instant of the next clock edge (when [`Core::tick`] expects to
    /// be called next).
    pub fn next_tick_at(&self) -> Time {
        self.now + self.period
    }

    /// The next instant at which ticking this core can do anything beyond
    /// charging idle energy: the next clock edge while any thread is
    /// ready, else the first clock edge at or after the earliest
    /// timer/divider/event wake. `None` when the core is halted or every
    /// live thread is blocked on external input — then only the network
    /// (or nothing) can make it interesting again.
    ///
    /// This is the core half of the fast-forward contract: skipping all
    /// clock edges strictly before the returned instant is
    /// indistinguishable from ticking through them.
    pub fn next_interesting_at(&self) -> Option<Time> {
        if self.halted {
            return None;
        }
        if !self.rotation.is_empty() {
            return Some(self.next_tick_at());
        }
        let wake = self.next_wake()?;
        let next = self.next_tick_at();
        if wake <= next {
            return Some(next);
        }
        // First clock edge at or after the wake instant; stays on this
        // core's tick grid so fast-forward matches lock-step exactly.
        Some(wake.align_up_to(self.now, self.period))
    }

    /// This core's negotiation watermark: [`Core::next_interesting_at`]
    /// collapsed to a saturating picosecond count, `u64::MAX` when the
    /// core is halted or blocked with no scheduled wake. The parallel
    /// engine's pairwise negotiation publishes this as the lower bound on
    /// when the core can next *do* anything — in particular emit a token —
    /// so a peer shard `L` of routed latency away can safely run to
    /// `watermark + L` without synchronising (see `swallow-board`'s
    /// shard module).
    #[inline]
    pub fn watermark_ps(&self) -> u64 {
        self.next_interesting_at().map_or(u64::MAX, |t| t.as_ps())
    }

    /// Fast-forwards over clock edges that provably do nothing: advances
    /// `now`/`cycle`/the issue wheel over every edge strictly before
    /// `limit` (capped at the earliest wake instant) and charges the
    /// leakage + clock-tree energy those edges would have accrued,
    /// analytically. No-op unless the core is idle (no ready thread).
    ///
    /// The wheel and cycle counters advance exactly as `tick` would have
    /// advanced them, so thread scheduling after the skip is bit-identical
    /// to the lock-step engine.
    pub fn skip_idle_until(&mut self, limit: Time) {
        if self.halted || !self.rotation.is_empty() {
            return;
        }
        let mut stop = limit;
        if let Some(wake) = self.next_wake() {
            stop = stop.min(wake);
        }
        let span = stop.saturating_since(self.now).as_ps();
        let period = self.period.as_ps();
        if span <= period {
            return;
        }
        // Edges at now + k·period for k = 1..=skipped are all < stop.
        let skipped = (span - 1) / period;
        let elapsed = TimeDelta::from_ps(skipped * period);
        self.ledger.charge(
            NodeCategory::Static,
            self.config.power.static_power() * elapsed,
        );
        let clk = self.config.power.idle_cycle_energy() * skipped as f64;
        self.ledger
            .charge(NodeCategory::Static, clk * (1.0 - IDLE_NETWORK_FRACTION));
        self.ledger
            .charge(NodeCategory::Network, clk * IDLE_NETWORK_FRACTION);
        self.now += elapsed;
        self.cycle += skipped;
        self.wheel += skipped;
    }

    /// Runs every clock edge due at or before `until` (the batched inner
    /// loop of the machine's step). Stops immediately if the core halts.
    #[inline]
    pub fn run_until(&mut self, until: Time) {
        if self.halted {
            return;
        }
        let mut at = self.now + self.period;
        while at <= until {
            self.tick(at);
            if self.halted {
                return;
            }
            at = self.now + self.period;
        }
    }

    /// The instant this core has been simulated to (its local clock). All
    /// cores agree with the machine clock under the serial engines; under
    /// the parallel engine a core may be ahead of the machine clock (up to
    /// one conservative epoch) or behind it (stopped early on output).
    pub fn local_now(&self) -> Time {
        self.now
    }

    /// Advances one conservative epoch in *isolation*: processes every
    /// clock edge due at or before `until` exactly like [`Core::run_until`],
    /// fast-forwarding analytically over idle spans, but **stops at the
    /// first edge that enqueues network output** and returns `true` if it
    /// did. Returns `false` when the core reached `until` cleanly.
    ///
    /// The epoch contract (the conservative-PDES argument): between two
    /// machine-level grid instants no token can be *delivered* to this
    /// core, so as long as the core does not *emit* anything, its
    /// evolution over the epoch is independent of every other core and
    /// can run on any host thread. The moment it emits, the machine must
    /// take over at that instant so the fabric injects the token exactly
    /// when the lock-step engine would have.
    ///
    /// The caller must drain pending output before starting an epoch.
    pub fn run_epoch(&mut self, until: Time) -> bool {
        debug_assert!(
            !self.has_tx_pending(),
            "epoch started with undelivered output pending"
        );
        while !self.halted && self.next_tick_at() <= until {
            if self.rotation.is_empty() {
                if self.sleepers == 0 {
                    // Blocked on external input only: freeze at the
                    // transition edge instead of idle-advancing. The
                    // machine catches the core up (charging the same
                    // idle energy) once the epoch's end instant is
                    // committed, which keeps the quiescence instant —
                    // the last transition edge — observable to the
                    // engine instead of smeared up to the epoch bound.
                    return false;
                }
                // No ready thread: skip the provably idle edges in one
                // analytic step, then process the wake edge (if any is
                // due within the epoch) below.
                self.skip_idle_until(until);
                if self.halted || self.next_tick_at() > until {
                    break;
                }
            }
            let at = self.next_tick_at();
            self.tick(at);
            if self.tx_pending_count > 0 {
                return true;
            }
        }
        false
    }

    /// Direct read access to SRAM (test/observability hook; on the real
    /// board this is the JTAG path).
    pub fn sram(&self) -> &Sram {
        &self.sram
    }

    /// Direct write access to SRAM (the boot/JTAG path).
    pub fn sram_mut(&mut self) -> &mut Sram {
        &mut self.sram
    }

    /// Enables or disables this core's predecoded-instruction cache
    /// (architecturally invisible either way; see `decode_cache`).
    pub fn set_decode_cache(&mut self, enabled: bool) {
        self.sram.set_decode_cache(enabled);
    }

    /// Whether this core's predecoded-instruction cache is active.
    pub fn decode_cache_enabled(&self) -> bool {
        self.sram.decode_cache_enabled()
    }

    // --- boot -------------------------------------------------------------

    /// Loads a program image at address 0 and starts thread 0 at its entry
    /// point with a full-SRAM-top stack.
    ///
    /// # Errors
    ///
    /// [`LoadError::TooLarge`] when the image exceeds SRAM.
    pub fn load_program(&mut self, program: &swallow_isa::Program) -> Result<(), LoadError> {
        if !self.sram.load_words(program.words()) {
            return Err(LoadError::TooLarge {
                image: program.len_bytes(),
                sram: self.sram.len(),
            });
        }
        self.threads[0].start(program.entry(), self.sram.len(), 0);
        self.activate(0);
        Ok(())
    }

    // --- network interface -------------------------------------------------

    /// True when `n` more tokens fit in the chanend's input buffer (the
    /// credit check the switch performs before forwarding).
    pub fn can_accept(&self, chanend: u8, n: usize) -> bool {
        self.resources
            .chanend(chanend)
            .map(|ch| ch.in_space() >= n)
            .unwrap_or(false)
    }

    /// Delivers a token into a channel end's input buffer, waking any
    /// thread blocked on it.
    ///
    /// # Errors
    ///
    /// [`DeliverError`] when the chanend is unallocated or full.
    pub fn deliver(&mut self, chanend: u8, token: Token) -> Result<(), DeliverError> {
        let ch = self
            .resources
            .chanend_mut(chanend)
            .ok_or(DeliverError::NoSuchChanend(chanend))?;
        if ch.in_space() == 0 {
            return Err(DeliverError::Full(chanend));
        }
        ch.in_buf.push_back(token);
        let available = ch.in_buf.len();
        if self.tracer.is_enabled() {
            self.tracer.emit(
                self.now,
                TraceEvent::TokenReceive {
                    core: self.config.node.0,
                    chanend,
                    ctrl: matches!(token, Token::Ctrl(_)),
                },
            );
        }
        self.wake_receivers(chanend, available);
        self.wake_event_waiter(chanend);
        Ok(())
    }

    /// Channel ends with tokens waiting to be transmitted, as an
    /// allocation-free iterator. Returns nothing (without scanning) when
    /// the cached pending count is zero.
    pub fn tx_pending(&self) -> impl Iterator<Item = u8> + '_ {
        let any = self.tx_pending_count > 0;
        (0..CHANEND_COUNT).filter(move |&i| {
            any && self
                .resources
                .chanend(i)
                .map(|ch| !ch.out_buf.is_empty())
                .unwrap_or(false)
        })
    }

    /// True when any chanend has tokens waiting to be transmitted. O(1).
    pub fn has_tx_pending(&self) -> bool {
        debug_assert_eq!(
            self.tx_pending_count as usize,
            (0..CHANEND_COUNT)
                .filter(|&i| self
                    .resources
                    .chanend(i)
                    .map(|ch| !ch.out_buf.is_empty())
                    .unwrap_or(false))
                .count(),
            "tx-pending counter out of sync"
        );
        self.tx_pending_count > 0
    }

    /// Peeks the next outgoing token of a chanend and the destination it
    /// was emitted towards.
    pub fn tx_front(&self, chanend: u8) -> Option<(ResourceId, Token)> {
        let ch = self.resources.chanend(chanend)?;
        ch.out_buf.front().map(|&(t, dest)| (dest, t))
    }

    /// Removes the next outgoing token of a chanend, waking any thread
    /// blocked on output-buffer space.
    pub fn tx_pop(&mut self, chanend: u8) -> Option<(ResourceId, Token)> {
        let ch = self.resources.chanend_mut(chanend)?;
        let (token, dest) = ch.out_buf.pop_front()?;
        let space = ch.out_space();
        if ch.out_buf.is_empty() {
            self.tx_pending_count -= 1;
        }
        self.wake_senders(chanend, space);
        Some((dest, token))
    }

    /// Updates the live reading of one measurement channel, in microwatts
    /// (driven by the board's power tree; read by `in` on a probe).
    pub fn set_probe_reading(&mut self, channel: usize, microwatts: u32) {
        if channel < PROBE_CHANNELS {
            self.probe_readings[channel] = microwatts;
        }
    }

    /// Test hook: allocates a chanend from outside (as a boot loader
    /// would) and returns its id.
    pub fn alloc_chanend(&mut self) -> Option<ResourceId> {
        self.resources
            .alloc(ResType::Chanend)
            .map(|idx| ResourceId::new(self.config.node, idx, ResType::Chanend))
    }

    /// Sets the destination of a chanend from outside (boot-time routing).
    pub fn connect_chanend(&mut self, chanend: u8, dest: ResourceId) -> bool {
        match self.resources.chanend_mut(chanend) {
            Some(ch) => {
                ch.dest = Some(dest);
                true
            }
            None => false,
        }
    }

    // --- scheduling --------------------------------------------------------

    fn activate(&mut self, tid: u8) {
        if !self.rotation.contains(&tid) {
            if self.tracer.is_enabled() {
                if self.rotation.is_empty() {
                    self.tracer.emit(
                        self.now,
                        TraceEvent::CoreWake {
                            core: self.config.node.0,
                        },
                    );
                }
                self.tracer.emit(
                    self.now,
                    TraceEvent::ThreadSchedule {
                        core: self.config.node.0,
                        thread: tid,
                        pc: self.threads[tid as usize].pc,
                    },
                );
            }
            self.sched_at[tid as usize] = self.now;
            self.sched_instret[tid as usize] = self.threads[tid as usize].instret;
            self.rotation.push(tid);
        }
        self.set_thread_state(tid, ThreadState::Ready);
    }

    fn deactivate(&mut self, tid: u8) {
        let before = self.rotation.len();
        self.rotation.retain(|&t| t != tid);
        if self.rotation.len() == before || !self.tracer.is_enabled() {
            return;
        }
        let block = (self.threads[tid as usize].instret - self.sched_instret[tid as usize])
            .min(u32::MAX as u64) as u32;
        // The new state was set before deactivation (every commit arm does
        // `set_thread_state` first), so it is the reason we left.
        let reason = match &self.threads[tid as usize].state {
            ThreadState::Blocked(b) => b.label(),
            ThreadState::Free => "done",
            ThreadState::Trapped => "trap",
            ThreadState::Ready => "ready",
        };
        self.tracer.emit(
            self.now,
            TraceEvent::BlockRetire {
                core: self.config.node.0,
                thread: tid,
                instret: block,
                since: self.sched_at[tid as usize],
                reason,
            },
        );
        if self.rotation.is_empty() {
            self.tracer.emit(
                self.now,
                TraceEvent::CoreSleep {
                    core: self.config.node.0,
                },
            );
        }
    }

    fn wake_receivers(&mut self, chanend: u8, available: usize) {
        for tid in 0..MAX_THREADS as u8 {
            if let ThreadState::Blocked(Block::RecvTokens { chanend: ch, need }) =
                self.threads[tid as usize].state
            {
                if ch == chanend && available >= need {
                    self.activate(tid);
                }
            }
        }
    }

    fn wake_senders(&mut self, chanend: u8, space: usize) {
        for tid in 0..MAX_THREADS as u8 {
            if let ThreadState::Blocked(Block::SendSpace { chanend: ch, need }) =
                self.threads[tid as usize].state
            {
                if ch == chanend && space >= need {
                    self.activate(tid);
                }
            }
        }
    }

    /// Wakes a thread parked in `waiteu` when a token lands on a chanend
    /// whose event it armed.
    fn wake_event_waiter(&mut self, chanend: u8) {
        let Some(cfg) = self.resources.chanend(chanend).and_then(|ch| ch.event) else {
            return;
        };
        if !cfg.enabled {
            return;
        }
        let tid = cfg.owner.0;
        if matches!(
            self.threads.get(tid as usize).map(|t| t.state),
            Some(ThreadState::Blocked(Block::Event { .. }))
        ) {
            self.activate(tid);
        }
    }

    fn wake_sleepers(&mut self) {
        for tid in 0..MAX_THREADS as u8 {
            match self.threads[tid as usize].state {
                ThreadState::Blocked(Block::Timer { until }) if until <= self.now => {
                    self.activate(tid);
                }
                ThreadState::Blocked(Block::Divide { until_cycle })
                    if until_cycle <= self.cycle =>
                {
                    self.activate(tid);
                }
                ThreadState::Blocked(Block::Event { until }) if until <= self.now => {
                    self.activate(tid);
                }
                _ => {}
            }
        }
    }

    // --- the clock edge ------------------------------------------------------

    /// Advances the core by one clock cycle ending at `now`.
    ///
    /// The caller is responsible for calling this once per core period;
    /// use [`Core::next_tick_at`] for the cadence. A halted core ignores
    /// ticks (it is considered powered down for the experiment).
    pub fn tick(&mut self, now: Time) {
        if self.halted {
            return;
        }
        self.now = now;
        self.cycle += 1;

        // Energy: leakage + clock tree, every cycle, split per Fig. 2
        // (precomputed in `tick_energy` — same values the model would
        // produce, charged without re-deriving them each cycle).
        self.ledger
            .charge(NodeCategory::Static, self.tick_energy.static_cycle);
        self.ledger
            .charge(NodeCategory::Network, self.tick_energy.clk_net);

        if self.sleepers > 0 {
            self.wake_sleepers();
        }

        // Eq. 2: one issue slot per cycle, rotated over max(4, Nt) slots.
        // A stalled core burns the cycle (and its energy) without
        // issuing: the wheel still turns, so thread interleaving after
        // the stall is position-identical under every engine.
        //
        // `nslots` is 4 or 8 for most populations; the masked path is
        // exactly `wheel % nslots` for powers of two and skips the
        // hardware divide the hot loop would otherwise pay every cycle.
        let nslots = self.rotation.len().max(4) as u64;
        let pos = if nslots & (nslots - 1) == 0 {
            (self.wheel & (nslots - 1)) as usize
        } else {
            (self.wheel % nslots) as usize
        };
        self.wheel += 1;
        if pos < self.rotation.len() && now >= self.stalled_until {
            let tid = self.rotation[pos];
            self.step_thread(tid);
        }
    }

    fn trap_thread(&mut self, tid: u8, pc: u32, cause: TrapCause) {
        self.set_thread_state(tid, ThreadState::Trapped);
        self.deactivate(tid);
        if self.trap.is_none() {
            self.trap = Some(Trap {
                thread: ThreadId(tid),
                pc,
                cause,
            });
        }
    }

    fn step_thread(&mut self, tid: u8) {
        let pc = self.threads[tid as usize].pc;
        if pc == TERMINATOR_PC {
            self.free_thread(tid);
            return;
        }
        // Fetch through the predecode cache: steady state is one array
        // load, the miss path reads one or two SRAM words and decodes
        // exactly as the uncached interpreter did.
        let entry = match self.sram.fetch(pc) {
            Ok(entry) => entry,
            Err(FetchError::Mem(e)) => return self.trap_thread(tid, pc, TrapCause::Mem(e)),
            Err(FetchError::Decode(e)) => return self.trap_thread(tid, pc, TrapCause::Decode(e)),
        };
        let instr = entry.instr;
        let words = entry.words as usize;

        let outcome = self.execute(tid, pc, words, &instr);

        // Commit.
        match outcome {
            Outcome::Advance(n) => {
                self.threads[tid as usize].pc = pc + 4 * n as u32;
                self.retire(tid, &entry);
            }
            Outcome::Jump(target) => {
                self.threads[tid as usize].pc = target;
                self.retire(tid, &entry);
            }
            Outcome::AdvanceSleep(n, block) => {
                self.threads[tid as usize].pc = pc + 4 * n as u32;
                self.set_thread_state(tid, ThreadState::Blocked(block));
                self.deactivate(tid);
                self.retire(tid, &entry);
            }
            Outcome::Block(block) => {
                // pc unchanged: the instruction re-executes when woken.
                self.set_thread_state(tid, ThreadState::Blocked(block));
                self.deactivate(tid);
            }
            Outcome::Freet => {
                self.retire(tid, &entry);
                self.free_thread(tid);
            }
            Outcome::Trap(cause) => self.trap_thread(tid, pc, cause),
            Outcome::HaltCore => {
                self.retire(tid, &entry);
                self.halted = true;
            }
        }
    }

    /// Emits a [`TraceEvent::TokenSend`] for tokens just queued on a
    /// chanend's output buffer (one branch when tracing is off).
    fn trace_send(&mut self, chanend: u8, dest: ResourceId, tokens: u8, ctrl: bool) {
        if self.tracer.is_enabled() {
            self.tracer.emit(
                self.now,
                TraceEvent::TokenSend {
                    core: self.config.node.0,
                    chanend,
                    dest_node: dest.node().0,
                    dest_chanend: dest.index(),
                    tokens,
                    ctrl,
                },
            );
        }
    }

    fn retire(&mut self, tid: u8, entry: &Predecoded) {
        let class = entry.class;
        let energy = self.tick_energy.slot[class as usize] * entry.issue_cycles as f64;
        let category = if class == EnergyClass::Comm {
            NodeCategory::Network
        } else {
            NodeCategory::Compute
        };
        self.ledger.charge(category, energy);
        self.class_counts.bump(class);
        self.instret += 1;
        self.threads[tid as usize].instret += 1;
    }

    fn free_thread(&mut self, tid: u8) {
        self.set_thread_state(tid, ThreadState::Free);
        self.deactivate(tid);
        // Release any barrier parties? Barriers hold ThreadIds; a freed
        // thread at a barrier is impossible (it would be Blocked).
    }

    fn timer_ticks(&self) -> u32 {
        (self.now.as_ps() / TIMER_TICK_PS) as u32
    }

    /// Resolves a register-held resource id to a local (type, index).
    fn local_resource(&self, raw: u32, want: ResType) -> Result<u8, TrapCause> {
        let rid = ResourceId::from_raw(raw);
        if rid.is_invalid() || rid.node() != self.config.node || rid.res_type() != Some(want) {
            return Err(TrapCause::BadResource { raw });
        }
        Ok(rid.index())
    }

    /// Resolves a chanend operand, checking allocation.
    fn chanend_idx(&self, raw: u32) -> Result<u8, TrapCause> {
        let idx = self.local_resource(raw, ResType::Chanend)?;
        if self.resources.chanend(idx).is_none() {
            return Err(TrapCause::BadResource { raw });
        }
        Ok(idx)
    }

    #[allow(clippy::too_many_lines)] // One arm per instruction; splitting hurts.
    fn execute(&mut self, tid: u8, pc: u32, words: usize, instr: &Instr) -> Outcome {
        use Instr::*;

        macro_rules! t {
            () => {
                self.threads[tid as usize]
            };
        }
        macro_rules! get {
            ($r:expr) => {
                self.threads[tid as usize].reg($r)
            };
        }
        macro_rules! set {
            ($r:expr, $v:expr) => {{
                // Evaluate the value before taking the mutable borrow.
                let value = $v;
                self.threads[tid as usize].set_reg($r, value)
            }};
        }
        // Effective address helpers (scaled indexing, XS1 style).
        let ea = |base: u32, off: MemOffset, scale: u32, regs: &Thread| -> u32 {
            match off {
                MemOffset::Reg(r) => base.wrapping_add(regs.reg(r).wrapping_mul(scale)),
                MemOffset::Imm(i) => base.wrapping_add((i as i32 as u32).wrapping_mul(scale)),
            }
        };
        let next = pc.wrapping_add(4 * words as u32);
        let rel = |off: i32| next.wrapping_add((off as u32).wrapping_mul(4));

        match *instr {
            Nop => Outcome::Advance(words),
            Add { d, a, b } => {
                set!(d, get!(a).wrapping_add(get!(b)));
                Outcome::Advance(words)
            }
            Sub { d, a, b } => {
                set!(d, get!(a).wrapping_sub(get!(b)));
                Outcome::Advance(words)
            }
            Mul { d, a, b } => {
                set!(d, get!(a).wrapping_mul(get!(b)));
                Outcome::Advance(words)
            }
            Divs { d, a, b } | Divu { d, a, b } | Rems { d, a, b } | Remu { d, a, b } => {
                let (x, y) = (get!(a), get!(b));
                let value = match instr {
                    Divs { .. } => {
                        if y == 0 {
                            return Outcome::Trap(TrapCause::IllegalOp("divide by zero"));
                        }
                        (x as i32).wrapping_div(y as i32) as u32
                    }
                    Divu { .. } => {
                        if y == 0 {
                            return Outcome::Trap(TrapCause::IllegalOp("divide by zero"));
                        }
                        x / y
                    }
                    Rems { .. } => {
                        if y == 0 {
                            return Outcome::Trap(TrapCause::IllegalOp("divide by zero"));
                        }
                        (x as i32).wrapping_rem(y as i32) as u32
                    }
                    _ => {
                        if y == 0 {
                            return Outcome::Trap(TrapCause::IllegalOp("divide by zero"));
                        }
                        x % y
                    }
                };
                set!(d, value);
                let until_cycle = self.cycle + issue_cycles(instr) as u64;
                Outcome::AdvanceSleep(words, Block::Divide { until_cycle })
            }
            And { d, a, b } => {
                set!(d, get!(a) & get!(b));
                Outcome::Advance(words)
            }
            Or { d, a, b } => {
                set!(d, get!(a) | get!(b));
                Outcome::Advance(words)
            }
            Xor { d, a, b } => {
                set!(d, get!(a) ^ get!(b));
                Outcome::Advance(words)
            }
            Shl { d, a, b } => {
                set!(d, get!(a).checked_shl(get!(b)).unwrap_or(0));
                Outcome::Advance(words)
            }
            Shr { d, a, b } => {
                set!(d, get!(a).checked_shr(get!(b)).unwrap_or(0));
                Outcome::Advance(words)
            }
            Ashr { d, a, b } => {
                let sh = get!(b).min(31);
                set!(d, ((get!(a) as i32) >> sh) as u32);
                Outcome::Advance(words)
            }
            Eq { d, a, b } => {
                set!(d, (get!(a) == get!(b)) as u32);
                Outcome::Advance(words)
            }
            Lss { d, a, b } => {
                set!(d, ((get!(a) as i32) < (get!(b) as i32)) as u32);
                Outcome::Advance(words)
            }
            Lsu { d, a, b } => {
                set!(d, (get!(a) < get!(b)) as u32);
                Outcome::Advance(words)
            }
            Neg { d, a } => {
                set!(d, (get!(a) as i32).wrapping_neg() as u32);
                Outcome::Advance(words)
            }
            Not { d, a } => {
                set!(d, !get!(a));
                Outcome::Advance(words)
            }
            Clz { d, a } => {
                set!(d, get!(a).leading_zeros());
                Outcome::Advance(words)
            }
            Byterev { d, a } => {
                set!(d, get!(a).swap_bytes());
                Outcome::Advance(words)
            }
            Bitrev { d, a } => {
                set!(d, get!(a).reverse_bits());
                Outcome::Advance(words)
            }
            AddI { d, a, imm } => {
                set!(d, get!(a).wrapping_add(imm as u32));
                Outcome::Advance(words)
            }
            SubI { d, a, imm } => {
                set!(d, get!(a).wrapping_sub(imm as u32));
                Outcome::Advance(words)
            }
            EqI { d, a, imm } => {
                set!(d, (get!(a) == imm as u32) as u32);
                Outcome::Advance(words)
            }
            ShlI { d, a, imm } => {
                set!(d, get!(a).checked_shl(imm as u32).unwrap_or(0));
                Outcome::Advance(words)
            }
            ShrI { d, a, imm } => {
                set!(d, get!(a).checked_shr(imm as u32).unwrap_or(0));
                Outcome::Advance(words)
            }
            AshrI { d, a, imm } => {
                let sh = (imm as u32).min(31);
                set!(d, ((get!(a) as i32) >> sh) as u32);
                Outcome::Advance(words)
            }
            MkMskI { d, width } => {
                let v = if width >= 32 {
                    u32::MAX
                } else {
                    (1u32 << width) - 1
                };
                set!(d, v);
                Outcome::Advance(words)
            }
            MkMsk { d, s } => {
                let w = get!(s);
                let v = if w >= 32 { u32::MAX } else { (1u32 << w) - 1 };
                set!(d, v);
                Outcome::Advance(words)
            }
            Sext { r, bits } => {
                if bits < 32 {
                    let shift = 32 - bits as u32;
                    let v = ((get!(r) << shift) as i32 >> shift) as u32;
                    set!(r, v);
                }
                Outcome::Advance(words)
            }
            Zext { r, bits } => {
                if bits < 32 {
                    let mask = (1u32 << bits) - 1;
                    set!(r, get!(r) & mask);
                }
                Outcome::Advance(words)
            }
            Ldc { d, imm } => {
                set!(d, imm);
                Outcome::Advance(words)
            }
            Ldw { d, base, off } => {
                let addr = ea(get!(base), off, 4, &t!());
                match self.sram.read_u32(addr) {
                    Ok(v) => {
                        set!(d, v);
                        Outcome::Advance(words)
                    }
                    Err(e) => Outcome::Trap(TrapCause::Mem(e)),
                }
            }
            Stw { s, base, off } => {
                let addr = ea(get!(base), off, 4, &t!());
                match self.sram.write_u32(addr, get!(s)) {
                    Ok(()) => Outcome::Advance(words),
                    Err(e) => Outcome::Trap(TrapCause::Mem(e)),
                }
            }
            Ld16s { d, base, off } => {
                let addr = ea(get!(base), off, 2, &t!());
                match self.sram.read_u16(addr) {
                    Ok(v) => {
                        set!(d, v as i16 as i32 as u32);
                        Outcome::Advance(words)
                    }
                    Err(e) => Outcome::Trap(TrapCause::Mem(e)),
                }
            }
            Ld8u { d, base, off } => {
                let addr = ea(get!(base), off, 1, &t!());
                match self.sram.read_u8(addr) {
                    Ok(v) => {
                        set!(d, v as u32);
                        Outcome::Advance(words)
                    }
                    Err(e) => Outcome::Trap(TrapCause::Mem(e)),
                }
            }
            St16 { s, base, off } => {
                let addr = ea(get!(base), off, 2, &t!());
                match self.sram.write_u16(addr, get!(s) as u16) {
                    Ok(()) => Outcome::Advance(words),
                    Err(e) => Outcome::Trap(TrapCause::Mem(e)),
                }
            }
            St8 { s, base, off } => {
                let addr = ea(get!(base), off, 1, &t!());
                match self.sram.write_u8(addr, get!(s) as u8) {
                    Ok(()) => Outcome::Advance(words),
                    Err(e) => Outcome::Trap(TrapCause::Mem(e)),
                }
            }
            Ldaw { d, base, imm } => {
                set!(
                    d,
                    get!(base).wrapping_add((imm as i32 as u32).wrapping_mul(4))
                );
                Outcome::Advance(words)
            }
            Ldap { d, off } => {
                set!(d, rel(off));
                Outcome::Advance(words)
            }
            Bu { off } => Outcome::Jump(rel(off)),
            Bt { s, off } => {
                if get!(s) != 0 {
                    Outcome::Jump(rel(off))
                } else {
                    Outcome::Advance(words)
                }
            }
            Bf { s, off } => {
                if get!(s) == 0 {
                    Outcome::Jump(rel(off))
                } else {
                    Outcome::Advance(words)
                }
            }
            Bl { off } => {
                set!(Reg::LR, next);
                Outcome::Jump(rel(off))
            }
            Bau { s } => Outcome::Jump(get!(s)),
            Ret => Outcome::Jump(get!(Reg::LR)),
            GetR { d, ty } => {
                let rid = self
                    .resources
                    .alloc(ty)
                    .map(|idx| ResourceId::new(self.config.node, idx, ty))
                    .unwrap_or(ResourceId::INVALID);
                if ty == ResType::Chanend && !rid.is_invalid() && self.tracer.is_enabled() {
                    self.tracer.emit(
                        self.now,
                        TraceEvent::ChannelOpen {
                            core: self.config.node.0,
                            chanend: rid.index(),
                        },
                    );
                }
                set!(d, rid.raw());
                Outcome::Advance(words)
            }
            FreeR { r } => {
                let raw = get!(r);
                let rid = ResourceId::from_raw(raw);
                match rid.res_type() {
                    Some(ty) if rid.node() == self.config.node => {
                        // Freeing a chanend with undelivered output would
                        // drop tokens on the floor; the free waits for the
                        // switch to drain the buffer first.
                        if ty == ResType::Chanend {
                            if let Some(ch) = self.resources.chanend(rid.index()) {
                                if !ch.out_buf.is_empty() {
                                    return Outcome::Block(Block::SendSpace {
                                        chanend: rid.index(),
                                        need: crate::resource::CHANEND_BUF_TOKENS,
                                    });
                                }
                            }
                        }
                        if self.resources.free(ty, rid.index()) {
                            if ty == ResType::Chanend && self.tracer.is_enabled() {
                                self.tracer.emit(
                                    self.now,
                                    TraceEvent::ChannelClose {
                                        core: self.config.node.0,
                                        chanend: rid.index(),
                                    },
                                );
                            }
                            Outcome::Advance(words)
                        } else {
                            Outcome::Trap(TrapCause::BadResource { raw })
                        }
                    }
                    _ => Outcome::Trap(TrapCause::BadResource { raw }),
                }
            }
            TSpawn { d, entry, arg } => {
                let entry_pc = get!(entry);
                let arg_val = get!(arg);
                let free = (1..MAX_THREADS as u8).find(|&i| !self.threads[i as usize].is_live());
                match free {
                    Some(new_tid) => {
                        let sp = self
                            .sram
                            .len()
                            .saturating_sub(new_tid as u32 * self.config.stack_bytes);
                        self.threads[new_tid as usize].start(entry_pc, sp, arg_val);
                        self.activate(new_tid);
                        set!(d, new_tid as u32);
                    }
                    None => set!(d, u32::MAX),
                }
                Outcome::Advance(words)
            }
            FreeT => Outcome::Freet,
            MSync { r } | SSync { r } => {
                let raw = get!(r);
                let idx = match self.local_resource(raw, ResType::Sync) {
                    Ok(i) => i,
                    Err(c) => return Outcome::Trap(c),
                };
                let Some(sync) = self.resources.syncs[idx as usize].as_mut() else {
                    return Outcome::Trap(TrapCause::BadResource { raw });
                };
                let arrivals = sync.waiting.len() as u32 + 1;
                if arrivals >= sync.expected {
                    // Release: waiters have their pc advanced on their
                    // behalf (they blocked *at* the sync instruction).
                    let waiters = std::mem::take(&mut sync.waiting);
                    for w in waiters {
                        self.threads[w.0 as usize].pc += 4;
                        self.activate(w.0);
                    }
                    Outcome::Advance(words)
                } else {
                    sync.waiting.push(ThreadId(tid));
                    Outcome::Block(Block::Barrier { sync: idx })
                }
            }
            SetD { r, s } => {
                let raw = get!(r);
                let value = get!(s);
                let rid = ResourceId::from_raw(raw);
                if rid.node() != self.config.node {
                    return Outcome::Trap(TrapCause::BadResource { raw });
                }
                match rid.res_type() {
                    Some(ResType::Chanend) => match self.resources.chanend_mut(rid.index()) {
                        Some(ch) => {
                            ch.dest = Some(ResourceId::from_raw(value));
                            Outcome::Advance(words)
                        }
                        None => Outcome::Trap(TrapCause::BadResource { raw }),
                    },
                    Some(ResType::Sync) => {
                        match self.resources.syncs[rid.index() as usize].as_mut() {
                            Some(sync) => {
                                sync.expected = value.max(1);
                                Outcome::Advance(words)
                            }
                            None => Outcome::Trap(TrapCause::BadResource { raw }),
                        }
                    }
                    Some(ResType::PowerProbe) => {
                        match self.resources.probes[rid.index() as usize].as_mut() {
                            Some(probe) => {
                                probe.channel = (value as usize % PROBE_CHANNELS) as u8;
                                Outcome::Advance(words)
                            }
                            None => Outcome::Trap(TrapCause::BadResource { raw }),
                        }
                    }
                    Some(ResType::Timer) => {
                        // On a timer, `setd` sets the event threshold.
                        match self.resources.timers[rid.index() as usize].as_mut() {
                            Some(timer) => {
                                timer.threshold = Some(value);
                                Outcome::Advance(words)
                            }
                            None => Outcome::Trap(TrapCause::BadResource { raw }),
                        }
                    }
                    _ => Outcome::Trap(TrapCause::BadResource { raw }),
                }
            }
            Out { r, s } => {
                let raw = get!(r);
                let rid = ResourceId::from_raw(raw);
                if rid.node() == self.config.node && rid.res_type() == Some(ResType::Lock) {
                    // Lock release.
                    return self.lock_release(tid, raw, rid.index(), words);
                }
                let idx = match self.chanend_idx(raw) {
                    Ok(i) => i,
                    Err(c) => return Outcome::Trap(c),
                };
                let value = get!(s);
                let ch = self.resources.chanend_mut(idx).expect("checked");
                let Some(dest) = ch.dest else {
                    return Outcome::Trap(TrapCause::NoDest { chanend: idx });
                };
                if ch.out_space() < 4 {
                    return Outcome::Block(Block::SendSpace {
                        chanend: idx,
                        need: 4,
                    });
                }
                let was_empty = ch.out_buf.is_empty();
                ch.out_buf.extend(word_to_tokens(value).map(|t| (t, dest)));
                if was_empty {
                    self.tx_pending_count += 1;
                }
                self.trace_send(idx, dest, 4, false);
                Outcome::Advance(words)
            }
            OutT { r, s } => {
                let idx = match self.chanend_idx(get!(r)) {
                    Ok(i) => i,
                    Err(c) => return Outcome::Trap(c),
                };
                let value = get!(s) as u8;
                let ch = self.resources.chanend_mut(idx).expect("checked");
                let Some(dest) = ch.dest else {
                    return Outcome::Trap(TrapCause::NoDest { chanend: idx });
                };
                if ch.out_space() < 1 {
                    return Outcome::Block(Block::SendSpace {
                        chanend: idx,
                        need: 1,
                    });
                }
                if ch.out_buf.is_empty() {
                    self.tx_pending_count += 1;
                }
                ch.out_buf.push_back((Token::Data(value), dest));
                self.trace_send(idx, dest, 1, false);
                Outcome::Advance(words)
            }
            OutCt { r, ct } => {
                let idx = match self.chanend_idx(get!(r)) {
                    Ok(i) => i,
                    Err(c) => return Outcome::Trap(c),
                };
                let ch = self.resources.chanend_mut(idx).expect("checked");
                let Some(dest) = ch.dest else {
                    return Outcome::Trap(TrapCause::NoDest { chanend: idx });
                };
                if ch.out_space() < 1 {
                    return Outcome::Block(Block::SendSpace {
                        chanend: idx,
                        need: 1,
                    });
                }
                if ch.out_buf.is_empty() {
                    self.tx_pending_count += 1;
                }
                ch.out_buf.push_back((Token::Ctrl(ct), dest));
                self.trace_send(idx, dest, 1, true);
                Outcome::Advance(words)
            }
            In { d, r } => {
                let raw = get!(r);
                let rid = ResourceId::from_raw(raw);
                if rid.node() == self.config.node {
                    match rid.res_type() {
                        Some(ResType::Timer) => {
                            if self
                                .resources
                                .timers
                                .get(rid.index() as usize)
                                .and_then(|t| t.as_ref())
                                .is_none()
                            {
                                return Outcome::Trap(TrapCause::BadResource { raw });
                            }
                            let ticks = self.timer_ticks();
                            set!(d, ticks);
                            return Outcome::Advance(words);
                        }
                        Some(ResType::Lock) => {
                            return self.lock_acquire(tid, raw, rid.index(), d, words);
                        }
                        Some(ResType::PowerProbe) => {
                            let Some(probe) = self
                                .resources
                                .probes
                                .get(rid.index() as usize)
                                .and_then(|p| p.as_ref())
                            else {
                                return Outcome::Trap(TrapCause::BadResource { raw });
                            };
                            let uw = self.probe_readings[probe.channel as usize];
                            set!(d, uw);
                            return Outcome::Advance(words);
                        }
                        _ => {}
                    }
                }
                let idx = match self.chanend_idx(raw) {
                    Ok(i) => i,
                    Err(c) => return Outcome::Trap(c),
                };
                let ch = self.resources.chanend_mut(idx).expect("checked");
                if ch.in_buf.len() < 4 {
                    return Outcome::Block(Block::RecvTokens {
                        chanend: idx,
                        need: 4,
                    });
                }
                let mut bytes = [0u8; 4];
                for (i, byte) in bytes.iter_mut().enumerate() {
                    match ch.in_buf[i] {
                        Token::Data(b) => *byte = b,
                        ctrl => return Outcome::Trap(TrapCause::DataExpected { got: ctrl }),
                    }
                }
                ch.in_buf.drain(..4);
                set!(d, bytes_to_word(bytes));
                Outcome::Advance(words)
            }
            InT { d, r } => {
                let idx = match self.chanend_idx(get!(r)) {
                    Ok(i) => i,
                    Err(c) => return Outcome::Trap(c),
                };
                let ch = self.resources.chanend_mut(idx).expect("checked");
                let Some(&front) = ch.in_buf.front() else {
                    return Outcome::Block(Block::RecvTokens {
                        chanend: idx,
                        need: 1,
                    });
                };
                match front {
                    Token::Data(b) => {
                        ch.in_buf.pop_front();
                        set!(d, b as u32);
                        Outcome::Advance(words)
                    }
                    ctrl => Outcome::Trap(TrapCause::DataExpected { got: ctrl }),
                }
            }
            ChkCt { r, ct } => {
                let idx = match self.chanend_idx(get!(r)) {
                    Ok(i) => i,
                    Err(c) => return Outcome::Trap(c),
                };
                let ch = self.resources.chanend_mut(idx).expect("checked");
                let Some(&front) = ch.in_buf.front() else {
                    return Outcome::Block(Block::RecvTokens {
                        chanend: idx,
                        need: 1,
                    });
                };
                if front == Token::Ctrl(ct) {
                    ch.in_buf.pop_front();
                    Outcome::Advance(words)
                } else {
                    Outcome::Trap(TrapCause::CtMismatch {
                        expected: ct.0,
                        got: front,
                    })
                }
            }
            TestCt { d, r } => {
                let idx = match self.chanend_idx(get!(r)) {
                    Ok(i) => i,
                    Err(c) => return Outcome::Trap(c),
                };
                let ch = self.resources.chanend(idx).expect("checked");
                let Some(&front) = ch.in_buf.front() else {
                    return Outcome::Block(Block::RecvTokens {
                        chanend: idx,
                        need: 1,
                    });
                };
                set!(d, front.is_ctrl() as u32);
                Outcome::Advance(words)
            }
            TmWait { r, s } => {
                let raw = get!(r);
                let idx = match self.local_resource(raw, ResType::Timer) {
                    Ok(i) => i,
                    Err(c) => return Outcome::Trap(c),
                };
                if self
                    .resources
                    .timers
                    .get(idx as usize)
                    .and_then(|t| t.as_ref())
                    .is_none()
                {
                    return Outcome::Trap(TrapCause::BadResource { raw });
                }
                let target = get!(s);
                let now_ticks = self.timer_ticks();
                let delta = target.wrapping_sub(now_ticks) as i32;
                if delta <= 0 {
                    Outcome::Advance(words)
                } else {
                    let until = self.now + TimeDelta::from_ps(delta as u64 * TIMER_TICK_PS);
                    Outcome::Block(Block::Timer { until })
                }
            }
            Waiteu => match self.ready_event_vector(tid) {
                Some(vector) => Outcome::Jump(vector),
                None => Outcome::Block(Block::Event {
                    until: self.earliest_timer_event(tid),
                }),
            },
            SetV { r, off } => {
                let raw = get!(r);
                let vector = rel(off);
                match self.event_cfg_mut(raw) {
                    Ok(slot) => {
                        let owner = ThreadId(tid);
                        match slot {
                            Some(cfg) => cfg.vector = vector,
                            None => {
                                *slot = Some(EventCfg {
                                    vector,
                                    owner,
                                    enabled: false,
                                })
                            }
                        }
                        Outcome::Advance(words)
                    }
                    Err(cause) => Outcome::Trap(cause),
                }
            }
            Eeu { r } => {
                let raw = get!(r);
                match self.event_cfg_mut(raw) {
                    Ok(Some(cfg)) => {
                        cfg.owner = ThreadId(tid);
                        cfg.enabled = true;
                        Outcome::Advance(words)
                    }
                    Ok(None) => Outcome::Trap(TrapCause::IllegalOp("eeu before setv")),
                    Err(cause) => Outcome::Trap(cause),
                }
            }
            Edu { r } => {
                let raw = get!(r);
                match self.event_cfg_mut(raw) {
                    Ok(Some(cfg)) => {
                        cfg.enabled = false;
                        Outcome::Advance(words)
                    }
                    Ok(None) => Outcome::Trap(TrapCause::IllegalOp("edu before setv")),
                    Err(cause) => Outcome::Trap(cause),
                }
            }
            ClrE => {
                let owner = ThreadId(tid);
                for ch in self.resources.chanends.iter_mut().flatten() {
                    if let Some(cfg) = ch.event.as_mut() {
                        if cfg.owner == owner {
                            cfg.enabled = false;
                        }
                    }
                }
                for t in self.resources.timers.iter_mut().flatten() {
                    if let Some(cfg) = t.event.as_mut() {
                        if cfg.owner == owner {
                            cfg.enabled = false;
                        }
                    }
                }
                Outcome::Advance(words)
            }
            Hostcall { func, s } => match func {
                HostcallFn::PrintInt => {
                    let v = get!(s) as i32;
                    self.output.push_str(&format!("{v}\n"));
                    Outcome::Advance(words)
                }
                HostcallFn::PrintChar => {
                    self.output.push((get!(s) as u8) as char);
                    Outcome::Advance(words)
                }
                HostcallFn::Halt => Outcome::HaltCore,
            },
        }
    }

    /// The event-configuration slot of a chanend or timer resource.
    fn event_cfg_mut(&mut self, raw: u32) -> Result<&mut Option<EventCfg>, TrapCause> {
        let rid = ResourceId::from_raw(raw);
        if rid.node() != self.config.node {
            return Err(TrapCause::BadResource { raw });
        }
        match rid.res_type() {
            Some(ResType::Chanend) => self
                .resources
                .chanend_mut(rid.index())
                .map(|ch| &mut ch.event)
                .ok_or(TrapCause::BadResource { raw }),
            Some(ResType::Timer) => self
                .resources
                .timers
                .get_mut(rid.index() as usize)
                .and_then(|t| t.as_mut())
                .map(|t| &mut t.event)
                .ok_or(TrapCause::BadResource { raw }),
            _ => Err(TrapCause::BadResource { raw }),
        }
    }

    /// Signed wrap-around comparison: has the 100 MHz reference clock
    /// passed `threshold`?
    fn timer_fired(&self, threshold: u32) -> bool {
        (threshold.wrapping_sub(self.timer_ticks()) as i32) <= 0
    }

    /// The handler address of the highest-priority ready event armed by
    /// `tid` (chanends before timers, index order — XS1 priorities are
    /// resource-id ordered).
    fn ready_event_vector(&self, tid: u8) -> Option<u32> {
        let owner = ThreadId(tid);
        for ch in self.resources.chanends.iter().flatten() {
            if let Some(cfg) = ch.event {
                if cfg.enabled && cfg.owner == owner && !ch.in_buf.is_empty() {
                    return Some(cfg.vector);
                }
            }
        }
        for t in self.resources.timers.iter().flatten() {
            if let Some(cfg) = t.event {
                if cfg.enabled && cfg.owner == owner {
                    if let Some(thr) = t.threshold {
                        if self.timer_fired(thr) {
                            return Some(cfg.vector);
                        }
                    }
                }
            }
        }
        None
    }

    /// The earliest future timer-event threshold armed by `tid`, as an
    /// absolute time; [`Time::MAX`] when none are armed.
    fn earliest_timer_event(&self, tid: u8) -> Time {
        let owner = ThreadId(tid);
        let now_ticks = self.timer_ticks();
        let mut earliest = Time::MAX;
        for t in self.resources.timers.iter().flatten() {
            let armed = t
                .event
                .map(|cfg| cfg.enabled && cfg.owner == owner)
                .unwrap_or(false);
            if let (true, Some(thr)) = (armed, t.threshold) {
                let delta = thr.wrapping_sub(now_ticks) as i32;
                if delta > 0 {
                    let at = self.now + TimeDelta::from_ps(delta as u64 * TIMER_TICK_PS);
                    earliest = earliest.min(at);
                }
            }
        }
        earliest
    }

    fn lock_acquire(&mut self, tid: u8, raw: u32, idx: u8, d: Reg, words: usize) -> Outcome {
        let Some(lock) = self
            .resources
            .locks
            .get_mut(idx as usize)
            .and_then(|l| l.as_mut())
        else {
            return Outcome::Trap(TrapCause::BadResource { raw });
        };
        match lock.held_by {
            None => {
                lock.held_by = Some(ThreadId(tid));
                self.threads[tid as usize].set_reg(d, raw);
                Outcome::Advance(words)
            }
            Some(owner) if owner == ThreadId(tid) => {
                // Woken after being granted the lock; proceed.
                self.threads[tid as usize].set_reg(d, raw);
                Outcome::Advance(words)
            }
            Some(_) => {
                if !lock.queue.contains(&ThreadId(tid)) {
                    lock.queue.push_back(ThreadId(tid));
                }
                Outcome::Block(Block::Lock { lock: idx })
            }
        }
    }

    fn lock_release(&mut self, tid: u8, raw: u32, idx: u8, words: usize) -> Outcome {
        let Some(lock) = self
            .resources
            .locks
            .get_mut(idx as usize)
            .and_then(|l| l.as_mut())
        else {
            return Outcome::Trap(TrapCause::BadResource { raw });
        };
        if lock.held_by != Some(ThreadId(tid)) {
            return Outcome::Trap(TrapCause::IllegalOp("releasing a lock not held"));
        }
        match lock.queue.pop_front() {
            Some(next) => {
                lock.held_by = Some(next);
                self.activate(next.0);
            }
            None => lock.held_by = None,
        }
        Outcome::Advance(words)
    }

    // --- snapshot ---------------------------------------------------------

    /// Serializes the complete architectural state of this core into `w`.
    ///
    /// Derived state — the decode cache, the cached per-tick energy
    /// constants, the sleeper and pending-transmit counters — is
    /// deliberately omitted: [`Core::restore_state`] recomputes all of
    /// it, bit-identically, because each is a pure function of what *is*
    /// written.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.u64(self.config.frequency.as_hz());
        w.f64_bits(self.config.power.voltage().as_volts());
        w.u32(self.config.sram_bytes);
        w.u32(self.config.stack_bytes);
        w.bool(self.sram.decode_cache_enabled());
        w.bytes_prefixed(self.sram.snapshot_bytes());
        for t in &self.threads {
            snapshot::write_thread(w, t);
        }
        w.u64(self.rotation.len() as u64);
        for &tid in &self.rotation {
            w.u8(tid);
        }
        w.u64(self.wheel);
        snapshot::write_resources(w, &self.resources);
        for &reading in &self.probe_readings {
            w.u32(reading);
        }
        w.u64(self.cycle);
        w.u64(self.now.as_ps());
        w.bool(self.halted);
        match &self.trap {
            None => w.u8(0),
            Some(trap) => {
                w.u8(1);
                w.u8(trap.thread.0);
                w.u32(trap.pc);
                snapshot::write_trap_cause(w, &trap.cause);
            }
        }
        for bits in self.ledger.entry_bits() {
            w.u64(bits);
        }
        for &count in &self.class_counts.0 {
            w.u64(count);
        }
        w.u64(self.instret);
        w.str_prefixed(&self.output);
        for &at in &self.sched_at {
            w.u64(at.as_ps());
        }
        for &instret in &self.sched_instret {
            w.u64(instret);
        }
        w.u64(self.stalled_until.as_ps());
    }

    /// Overlays the architectural state written by [`Core::encode_state`]
    /// onto this core, which must have been built with the same memory
    /// geometry (SRAM and stack sizes are validated). Decoding is strict:
    /// inconsistent scheduler or resource state is rejected with a
    /// [`CodecError`]. On error the core is left partially written —
    /// callers restore into a scratch machine and discard it on failure.
    pub fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let hz = r.u64()?;
        if hz == 0 {
            return Err(CodecError::Invalid("core frequency is zero"));
        }
        let volts = r.f64_bits()?;
        if !volts.is_finite() || volts < 0.0 {
            return Err(CodecError::Invalid("core voltage out of range"));
        }
        let sram_bytes = r.u32()?;
        let stack_bytes = r.u32()?;
        if sram_bytes != self.config.sram_bytes || stack_bytes != self.config.stack_bytes {
            return Err(CodecError::Invalid("core memory geometry mismatch"));
        }
        let cache_enabled = r.bool()?;
        let image = r.bytes_prefixed()?;
        if !self.sram.restore_bytes(image) {
            return Err(CodecError::Invalid("SRAM image size mismatch"));
        }
        self.sram.set_decode_cache(cache_enabled);
        let dims = snapshot::TableDims::of(&self.resources);
        for i in 0..MAX_THREADS {
            self.threads[i] = snapshot::read_thread(r, &dims)?;
        }
        let rot_len = r.len_prefixed(1)?;
        if rot_len > MAX_THREADS {
            return Err(CodecError::Invalid("rotation longer than thread count"));
        }
        let mut rotation = Vec::with_capacity(rot_len);
        let mut seen = [false; MAX_THREADS];
        for _ in 0..rot_len {
            let tid = r.u8()?;
            let Some(slot) = seen.get_mut(tid as usize) else {
                return Err(CodecError::Invalid("rotation thread id out of range"));
            };
            if std::mem::replace(slot, true) {
                return Err(CodecError::Invalid("duplicate thread in rotation"));
            }
            if !self.threads[tid as usize].is_ready() {
                return Err(CodecError::Invalid("rotation lists a non-ready thread"));
            }
            rotation.push(tid);
        }
        if self.threads.iter().filter(|t| t.is_ready()).count() != rotation.len() {
            return Err(CodecError::Invalid("ready thread missing from rotation"));
        }
        self.rotation = rotation;
        self.wheel = r.u64()?;
        self.resources = snapshot::read_resources(r, &dims)?;
        for reading in self.probe_readings.iter_mut() {
            *reading = r.u32()?;
        }
        self.cycle = r.u64()?;
        self.now = Time::from_ps(r.u64()?);
        self.halted = r.bool()?;
        self.trap = match r.u8()? {
            0 => None,
            1 => {
                let tid = r.u8()?;
                if tid as usize >= MAX_THREADS {
                    return Err(CodecError::Invalid("trap thread id out of range"));
                }
                let pc = r.u32()?;
                let cause = snapshot::read_trap_cause(r)?;
                Some(Trap {
                    thread: ThreadId(tid),
                    pc,
                    cause,
                })
            }
            _ => return Err(CodecError::Invalid("trap tag out of range")),
        };
        let mut bits = [0u64; 5];
        for b in bits.iter_mut() {
            *b = r.u64()?;
        }
        self.ledger = EnergyLedger::from_entry_bits(bits);
        for count in self.class_counts.0.iter_mut() {
            *count = r.u64()?;
        }
        self.instret = r.u64()?;
        self.output = r.str_prefixed()?;
        for at in self.sched_at.iter_mut() {
            *at = Time::from_ps(r.u64()?);
        }
        for instret in self.sched_instret.iter_mut() {
            *instret = r.u64()?;
        }
        self.stalled_until = Time::from_ps(r.u64()?);

        // Derived state: the clock/energy constants and the incremental
        // counters are pure functions of what was just restored.
        self.config.frequency = Frequency::from_hz(hz);
        self.config.power = CorePowerModel::swallow().at_voltage(Voltage::from_volts(volts));
        self.period = self.config.frequency.period();
        self.tick_energy = TickEnergy::of(&self.config.power, self.period);
        self.sleepers = self
            .threads
            .iter()
            .filter(|t| Self::state_is_sleeper(&t.state))
            .count() as u32;
        self.tx_pending_count = self
            .resources
            .chanends
            .iter()
            .flatten()
            .filter(|ch| !ch.out_buf.is_empty())
            .count() as u32;
        Ok(())
    }
}

impl fmt::Debug for Core {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Core")
            .field("node", &self.config.node)
            .field("frequency", &self.config.frequency)
            .field("cycle", &self.cycle)
            .field("instret", &self.instret)
            .field("ready_threads", &self.rotation.len())
            .field("halted", &self.halted)
            .field("trap", &self.trap)
            .finish()
    }
}
