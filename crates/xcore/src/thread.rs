//! Hardware threads.
//!
//! An XS1-L core owns eight hardware threads with zero context-switch
//! overhead: each has its own register file and program counter, and the
//! four-stage pipeline interleaves them one instruction per cycle (§IV.C).

use swallow_isa::Reg;
use swallow_sim::Time;

/// Maximum hardware threads per core.
pub const MAX_THREADS: usize = 8;

/// Sentinel link-register value: a thread that returns (or branches) here
/// terminates, as if it had executed `freet`. The boot loader plants it in
/// `lr` so falling off the end of `main` is clean.
pub const TERMINATOR_PC: u32 = 0xFFFF_FFFC;

/// Why a thread is not currently runnable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Block {
    /// Waiting for `need` tokens in a channel end's input buffer.
    RecvTokens {
        /// Local channel-end index.
        chanend: u8,
        /// Number of tokens that must be present.
        need: usize,
    },
    /// Waiting for `need` free slots in a channel end's output buffer.
    SendSpace {
        /// Local channel-end index.
        chanend: u8,
        /// Number of free token slots required.
        need: usize,
    },
    /// Sleeping until the timer reaches an instant.
    Timer {
        /// Wake time.
        until: Time,
    },
    /// Queued on a lock.
    Lock {
        /// Local lock index.
        lock: u8,
    },
    /// Waiting at a synchroniser barrier.
    Barrier {
        /// Local synchroniser index.
        sync: u8,
    },
    /// Occupying the iterative divider.
    Divide {
        /// Core cycle at which the divide retires.
        until_cycle: u64,
    },
    /// Waiting in `waiteu` for any armed event; `until` is the earliest
    /// armed timer-event threshold ([`Time::MAX`] when none).
    Event {
        /// Earliest timer-event wake time.
        until: Time,
    },
}

impl Block {
    /// A short, stable label for the blocking reason (used to annotate
    /// `BlockRetire` trace events and by exporters).
    pub const fn label(&self) -> &'static str {
        match self {
            Block::RecvTokens { .. } => "recv",
            Block::SendSpace { .. } => "send",
            Block::Timer { .. } => "timer",
            Block::Lock { .. } => "lock",
            Block::Barrier { .. } => "barrier",
            Block::Divide { .. } => "divide",
            Block::Event { .. } => "event",
        }
    }
}

/// Lifecycle state of a hardware thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadState {
    /// Not allocated.
    Free,
    /// Runnable: occupies an issue slot in the rotation.
    Ready,
    /// Paused on a resource or timer; consumes no issue slots.
    Blocked(Block),
    /// Halted by a trap; will not run again.
    Trapped,
}

/// One hardware thread: register file, program counter, state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Thread {
    /// Architectural registers `r0`–`r11`, `sp`, `lr`.
    pub regs: [u32; 14],
    /// Byte address of the next instruction.
    pub pc: u32,
    /// Scheduling state.
    pub state: ThreadState,
    /// Instructions retired by this thread.
    pub instret: u64,
}

impl Thread {
    /// A freshly powered-down thread.
    pub fn free() -> Self {
        Thread {
            regs: [0; 14],
            pc: 0,
            state: ThreadState::Free,
            instret: 0,
        }
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index()] = value;
    }

    /// True when the thread holds an issue slot.
    pub fn is_ready(&self) -> bool {
        matches!(self.state, ThreadState::Ready)
    }

    /// True when the thread exists (allocated, in any live state).
    pub fn is_live(&self) -> bool {
        !matches!(self.state, ThreadState::Free)
    }

    /// (Re-)initialises the thread for execution.
    pub fn start(&mut self, pc: u32, sp: u32, arg: u32) {
        self.regs = [0; 14];
        self.set_reg(Reg::R0, arg);
        self.set_reg(Reg::SP, sp);
        self.set_reg(Reg::LR, TERMINATOR_PC);
        self.pc = pc;
        self.state = ThreadState::Ready;
    }
}

impl Default for Thread {
    fn default() -> Self {
        Thread::free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_initialises_conventions() {
        let mut t = Thread::free();
        assert!(!t.is_live());
        t.start(0x100, 0x1_0000, 42);
        assert!(t.is_ready());
        assert!(t.is_live());
        assert_eq!(t.reg(Reg::R0), 42);
        assert_eq!(t.reg(Reg::SP), 0x1_0000);
        assert_eq!(t.reg(Reg::LR), TERMINATOR_PC);
        assert_eq!(t.pc, 0x100);
    }

    #[test]
    fn register_access() {
        let mut t = Thread::free();
        t.set_reg(Reg::R11, 0xDEAD);
        assert_eq!(t.reg(Reg::R11), 0xDEAD);
        assert_eq!(t.reg(Reg::R0), 0);
    }

    #[test]
    fn blocked_threads_are_live_but_not_ready() {
        let mut t = Thread::free();
        t.start(0, 0, 0);
        t.state = ThreadState::Blocked(Block::Timer { until: Time::ZERO });
        assert!(t.is_live());
        assert!(!t.is_ready());
    }
}
