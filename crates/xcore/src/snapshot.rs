//! Snapshot codecs for the public core-local types.
//!
//! These helpers serialize the architectural pieces of a core — threads,
//! resource tables, tokens, trap records — into the hand-rolled binary
//! format of `swallow_sim::codec`. [`crate::Core`] stitches them together
//! (its own fields are private to `core.rs`); they live here so the
//! per-type framing is testable in isolation.
//!
//! Every decoder is strict: out-of-range tags, impossible indices and
//! overfull buffers are rejected with a [`CodecError`], never accepted
//! into a state the interpreter could later panic on.

use crate::resource::{Chanend, EventCfg, Lock, Probe, ResourceTable, Sync, CHANEND_BUF_TOKENS};
use crate::sram::MemError;
use crate::thread::{Block, Thread, ThreadState, MAX_THREADS};
use swallow_isa::{ControlToken, DecodeError, ResourceId, ThreadId, Token};
use swallow_sim::{ByteReader, ByteWriter, CodecError, Time};

/// The `IllegalOp` trap strings this build knows how to round-trip. A
/// snapshot carrying any other string is rejected (strictness beats
/// guessing); extend this table when a new `IllegalOp` site is added.
const ILLEGAL_OPS: [&str; 4] = [
    "divide by zero",
    "eeu before setv",
    "edu before setv",
    "releasing a lock not held",
];

pub(crate) fn write_token(w: &mut ByteWriter, t: Token) {
    match t {
        Token::Data(b) => {
            w.u8(0);
            w.u8(b);
        }
        Token::Ctrl(ct) => {
            w.u8(1);
            w.u8(ct.0);
        }
    }
}

pub(crate) fn read_token(r: &mut ByteReader<'_>) -> Result<Token, CodecError> {
    match r.u8()? {
        0 => Ok(Token::Data(r.u8()?)),
        1 => Ok(Token::Ctrl(ControlToken(r.u8()?))),
        _ => Err(CodecError::Invalid("token tag out of range")),
    }
}

fn write_time(w: &mut ByteWriter, t: Time) {
    w.u64(t.as_ps());
}

fn read_time(r: &mut ByteReader<'_>) -> Result<Time, CodecError> {
    Ok(Time::from_ps(r.u64()?))
}

fn read_thread_id(r: &mut ByteReader<'_>) -> Result<ThreadId, CodecError> {
    let raw = r.u8()?;
    if (raw as usize) >= MAX_THREADS {
        return Err(CodecError::Invalid("thread id out of range"));
    }
    Ok(ThreadId(raw))
}

fn write_block(w: &mut ByteWriter, b: &Block) {
    match *b {
        Block::RecvTokens { chanend, need } => {
            w.u8(0);
            w.u8(chanend);
            w.u64(need as u64);
        }
        Block::SendSpace { chanend, need } => {
            w.u8(1);
            w.u8(chanend);
            w.u64(need as u64);
        }
        Block::Timer { until } => {
            w.u8(2);
            write_time(w, until);
        }
        Block::Lock { lock } => {
            w.u8(3);
            w.u8(lock);
        }
        Block::Barrier { sync } => {
            w.u8(4);
            w.u8(sync);
        }
        Block::Divide { until_cycle } => {
            w.u8(5);
            w.u64(until_cycle);
        }
        Block::Event { until } => {
            w.u8(6);
            write_time(w, until);
        }
    }
}

fn read_block(r: &mut ByteReader<'_>, dims: &TableDims) -> Result<Block, CodecError> {
    let need_in_range = |need: u64| {
        if need as usize > CHANEND_BUF_TOKENS {
            Err(CodecError::Invalid("blocked token need exceeds buffer"))
        } else {
            Ok(need as usize)
        }
    };
    let chanend_in_range = |idx: u8| {
        if idx as usize >= dims.chanends {
            Err(CodecError::Invalid("blocked chanend index out of range"))
        } else {
            Ok(idx)
        }
    };
    match r.u8()? {
        0 => Ok(Block::RecvTokens {
            chanend: chanend_in_range(r.u8()?)?,
            need: need_in_range(r.u64()?)?,
        }),
        1 => Ok(Block::SendSpace {
            chanend: chanend_in_range(r.u8()?)?,
            need: need_in_range(r.u64()?)?,
        }),
        2 => Ok(Block::Timer {
            until: read_time(r)?,
        }),
        3 => {
            let lock = r.u8()?;
            if lock as usize >= dims.locks {
                return Err(CodecError::Invalid("blocked lock index out of range"));
            }
            Ok(Block::Lock { lock })
        }
        4 => {
            let sync = r.u8()?;
            if sync as usize >= dims.syncs {
                return Err(CodecError::Invalid("blocked sync index out of range"));
            }
            Ok(Block::Barrier { sync })
        }
        5 => Ok(Block::Divide {
            until_cycle: r.u64()?,
        }),
        6 => Ok(Block::Event {
            until: read_time(r)?,
        }),
        _ => Err(CodecError::Invalid("block tag out of range")),
    }
}

pub(crate) fn write_thread(w: &mut ByteWriter, t: &Thread) {
    for &reg in &t.regs {
        w.u32(reg);
    }
    w.u32(t.pc);
    match &t.state {
        ThreadState::Free => w.u8(0),
        ThreadState::Ready => w.u8(1),
        ThreadState::Trapped => w.u8(2),
        ThreadState::Blocked(b) => {
            w.u8(3);
            write_block(w, b);
        }
    }
    w.u64(t.instret);
}

pub(crate) fn read_thread(r: &mut ByteReader<'_>, dims: &TableDims) -> Result<Thread, CodecError> {
    let mut regs = [0u32; 14];
    for reg in regs.iter_mut() {
        *reg = r.u32()?;
    }
    let pc = r.u32()?;
    let state = match r.u8()? {
        0 => ThreadState::Free,
        1 => ThreadState::Ready,
        2 => ThreadState::Trapped,
        3 => ThreadState::Blocked(read_block(r, dims)?),
        _ => return Err(CodecError::Invalid("thread state tag out of range")),
    };
    let instret = r.u64()?;
    Ok(Thread {
        regs,
        pc,
        state,
        instret,
    })
}

fn write_event_cfg(w: &mut ByteWriter, cfg: &Option<EventCfg>) {
    match cfg {
        None => w.u8(0),
        Some(cfg) => {
            w.u8(1);
            w.u32(cfg.vector);
            w.u8(cfg.owner.0);
            w.bool(cfg.enabled);
        }
    }
}

fn read_event_cfg(r: &mut ByteReader<'_>) -> Result<Option<EventCfg>, CodecError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(EventCfg {
            vector: r.u32()?,
            owner: read_thread_id(r)?,
            enabled: r.bool()?,
        })),
        _ => Err(CodecError::Invalid("event config tag out of range")),
    }
}

fn write_chanend(w: &mut ByteWriter, ch: &Chanend) {
    match ch.dest {
        None => w.u8(0),
        Some(rid) => {
            w.u8(1);
            w.u32(rid.raw());
        }
    }
    w.u64(ch.out_buf.len() as u64);
    for (t, dest) in &ch.out_buf {
        write_token(w, *t);
        w.u32(dest.raw());
    }
    w.u64(ch.in_buf.len() as u64);
    for t in &ch.in_buf {
        write_token(w, *t);
    }
    write_event_cfg(w, &ch.event);
}

fn read_chanend(r: &mut ByteReader<'_>) -> Result<Chanend, CodecError> {
    let dest = match r.u8()? {
        0 => None,
        1 => Some(ResourceId::from_raw(r.u32()?)),
        _ => return Err(CodecError::Invalid("chanend dest tag out of range")),
    };
    let mut ch = Chanend {
        dest,
        ..Chanend::default()
    };
    let out_len = r.len_prefixed(3)?;
    if out_len > CHANEND_BUF_TOKENS {
        return Err(CodecError::Invalid("chanend output buffer overfull"));
    }
    for _ in 0..out_len {
        let t = read_token(r)?;
        let dest = ResourceId::from_raw(r.u32()?);
        ch.out_buf.push_back((t, dest));
    }
    let in_len = r.len_prefixed(2)?;
    if in_len > CHANEND_BUF_TOKENS {
        return Err(CodecError::Invalid("chanend input buffer overfull"));
    }
    for _ in 0..in_len {
        ch.in_buf.push_back(read_token(r)?);
    }
    ch.event = read_event_cfg(r)?;
    Ok(ch)
}

fn write_slots<T>(w: &mut ByteWriter, slots: &[Option<T>], enc: impl Fn(&mut ByteWriter, &T)) {
    w.u64(slots.len() as u64);
    for slot in slots {
        match slot {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                enc(w, v);
            }
        }
    }
}

fn read_slots<T>(
    r: &mut ByteReader<'_>,
    expected: usize,
    mut dec: impl FnMut(&mut ByteReader<'_>) -> Result<T, CodecError>,
) -> Result<Vec<Option<T>>, CodecError> {
    let len = r.len_prefixed(1)?;
    if len != expected {
        return Err(CodecError::Invalid("resource table size mismatch"));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(match r.u8()? {
            0 => None,
            1 => Some(dec(r)?),
            _ => return Err(CodecError::Invalid("resource slot tag out of range")),
        });
    }
    Ok(out)
}

/// Slot counts of a resource table, used to validate decoded indices.
pub(crate) struct TableDims {
    pub chanends: usize,
    pub timers: usize,
    pub syncs: usize,
    pub locks: usize,
    pub probes: usize,
}

impl TableDims {
    pub(crate) fn of(table: &ResourceTable) -> Self {
        TableDims {
            chanends: table.chanends.len(),
            timers: table.timers.len(),
            syncs: table.syncs.len(),
            locks: table.locks.len(),
            probes: table.probes.len(),
        }
    }
}

pub(crate) fn write_resources(w: &mut ByteWriter, table: &ResourceTable) {
    write_slots(w, &table.chanends, write_chanend);
    write_slots(w, &table.timers, |w, t| {
        match t.threshold {
            None => w.u8(0),
            Some(thr) => {
                w.u8(1);
                w.u32(thr);
            }
        }
        write_event_cfg(w, &t.event);
    });
    write_slots(w, &table.syncs, |w, s| {
        w.u32(s.expected);
        w.u64(s.waiting.len() as u64);
        for &tid in &s.waiting {
            w.u8(tid.0);
        }
    });
    write_slots(w, &table.locks, |w, l| {
        match l.held_by {
            None => w.u8(0),
            Some(tid) => {
                w.u8(1);
                w.u8(tid.0);
            }
        }
        w.u64(l.queue.len() as u64);
        for &tid in &l.queue {
            w.u8(tid.0);
        }
    });
    write_slots(w, &table.probes, |w, p| w.u8(p.channel));
}

pub(crate) fn read_resources(
    r: &mut ByteReader<'_>,
    dims: &TableDims,
) -> Result<ResourceTable, CodecError> {
    let chanends = read_slots(r, dims.chanends, read_chanend)?;
    let timers = read_slots(r, dims.timers, |r| {
        let threshold = match r.u8()? {
            0 => None,
            1 => Some(r.u32()?),
            _ => return Err(CodecError::Invalid("timer threshold tag out of range")),
        };
        Ok(crate::resource::Timer {
            threshold,
            event: read_event_cfg(r)?,
        })
    })?;
    let syncs = read_slots(r, dims.syncs, |r| {
        let expected = r.u32()?;
        let len = r.len_prefixed(1)?;
        if len > MAX_THREADS {
            return Err(CodecError::Invalid("sync wait queue overfull"));
        }
        let mut waiting = Vec::with_capacity(len);
        for _ in 0..len {
            waiting.push(read_thread_id(r)?);
        }
        Ok(Sync { expected, waiting })
    })?;
    let locks = read_slots(r, dims.locks, |r| {
        let held_by = match r.u8()? {
            0 => None,
            1 => Some(read_thread_id(r)?),
            _ => return Err(CodecError::Invalid("lock owner tag out of range")),
        };
        let len = r.len_prefixed(1)?;
        if len > MAX_THREADS {
            return Err(CodecError::Invalid("lock queue overfull"));
        }
        let mut lock = Lock {
            held_by,
            ..Lock::default()
        };
        for _ in 0..len {
            lock.queue.push_back(read_thread_id(r)?);
        }
        Ok(lock)
    })?;
    let probes = read_slots(r, dims.probes, |r| {
        let channel = r.u8()?;
        if channel as usize >= crate::core::PROBE_CHANNELS {
            return Err(CodecError::Invalid("probe channel out of range"));
        }
        Ok(Probe { channel })
    })?;
    Ok(ResourceTable {
        chanends,
        timers,
        syncs,
        locks,
        probes,
    })
}

fn write_mem_error(w: &mut ByteWriter, e: &MemError) {
    match *e {
        MemError::OutOfBounds { addr, width } => {
            w.u8(0);
            w.u32(addr);
            w.u8(width);
        }
        MemError::Misaligned { addr, width } => {
            w.u8(1);
            w.u32(addr);
            w.u8(width);
        }
    }
}

fn read_mem_error(r: &mut ByteReader<'_>) -> Result<MemError, CodecError> {
    let tag = r.u8()?;
    let addr = r.u32()?;
    let width = r.u8()?;
    match tag {
        0 => Ok(MemError::OutOfBounds { addr, width }),
        1 => Ok(MemError::Misaligned { addr, width }),
        _ => Err(CodecError::Invalid("memory error tag out of range")),
    }
}

fn write_decode_error(w: &mut ByteWriter, e: &DecodeError) {
    match *e {
        DecodeError::BadOpcode(op) => {
            w.u8(0);
            w.u8(op);
        }
        DecodeError::BadRegister(reg) => {
            w.u8(1);
            w.u8(reg);
        }
        DecodeError::BadResType(code) => {
            w.u8(2);
            w.u8(code);
        }
        DecodeError::BadHostcall(func) => {
            w.u8(3);
            w.u16(func);
        }
        DecodeError::Truncated => w.u8(4),
        DecodeError::BadAddress(addr) => {
            w.u8(5);
            w.u32(addr);
        }
        DecodeError::BadImmediate(imm) => {
            w.u8(6);
            w.u16(imm);
        }
        DecodeError::NonCanonical(word) => {
            w.u8(7);
            w.u32(word);
        }
    }
}

fn read_decode_error(r: &mut ByteReader<'_>) -> Result<DecodeError, CodecError> {
    match r.u8()? {
        0 => Ok(DecodeError::BadOpcode(r.u8()?)),
        1 => Ok(DecodeError::BadRegister(r.u8()?)),
        2 => Ok(DecodeError::BadResType(r.u8()?)),
        3 => Ok(DecodeError::BadHostcall(r.u16()?)),
        4 => Ok(DecodeError::Truncated),
        5 => Ok(DecodeError::BadAddress(r.u32()?)),
        6 => Ok(DecodeError::BadImmediate(r.u16()?)),
        7 => Ok(DecodeError::NonCanonical(r.u32()?)),
        _ => Err(CodecError::Invalid("decode error tag out of range")),
    }
}

pub(crate) fn write_trap_cause(w: &mut ByteWriter, cause: &crate::TrapCause) {
    use crate::TrapCause;
    match cause {
        TrapCause::Mem(e) => {
            w.u8(0);
            write_mem_error(w, e);
        }
        TrapCause::Decode(e) => {
            w.u8(1);
            write_decode_error(w, e);
        }
        TrapCause::BadResource { raw } => {
            w.u8(2);
            w.u32(*raw);
        }
        TrapCause::CtMismatch { expected, got } => {
            w.u8(3);
            w.u8(*expected);
            write_token(w, *got);
        }
        TrapCause::DataExpected { got } => {
            w.u8(4);
            write_token(w, *got);
        }
        TrapCause::NoDest { chanend } => {
            w.u8(5);
            w.u8(*chanend);
        }
        TrapCause::IllegalOp(what) => {
            w.u8(6);
            w.str_prefixed(what);
        }
    }
}

pub(crate) fn read_trap_cause(r: &mut ByteReader<'_>) -> Result<crate::TrapCause, CodecError> {
    use crate::TrapCause;
    match r.u8()? {
        0 => Ok(TrapCause::Mem(read_mem_error(r)?)),
        1 => Ok(TrapCause::Decode(read_decode_error(r)?)),
        2 => Ok(TrapCause::BadResource { raw: r.u32()? }),
        3 => Ok(TrapCause::CtMismatch {
            expected: r.u8()?,
            got: read_token(r)?,
        }),
        4 => Ok(TrapCause::DataExpected {
            got: read_token(r)?,
        }),
        5 => Ok(TrapCause::NoDest { chanend: r.u8()? }),
        6 => {
            let what = r.str_prefixed()?;
            ILLEGAL_OPS
                .iter()
                .find(|&&known| known == what)
                .map(|&known| TrapCause::IllegalOp(known))
                .ok_or(CodecError::Invalid("unknown illegal-op trap string"))
        }
        _ => Err(CodecError::Invalid("trap cause tag out of range")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrapCause;
    use swallow_isa::{NodeId, ResType};

    fn dims() -> TableDims {
        TableDims {
            chanends: 32,
            timers: 10,
            syncs: 7,
            locks: 4,
            probes: 2,
        }
    }

    #[test]
    fn thread_round_trips_every_state() {
        let states = [
            ThreadState::Free,
            ThreadState::Ready,
            ThreadState::Trapped,
            ThreadState::Blocked(Block::RecvTokens {
                chanend: 3,
                need: 4,
            }),
            ThreadState::Blocked(Block::SendSpace {
                chanend: 31,
                need: 1,
            }),
            ThreadState::Blocked(Block::Timer {
                until: Time::from_ps(123_456),
            }),
            ThreadState::Blocked(Block::Lock { lock: 2 }),
            ThreadState::Blocked(Block::Barrier { sync: 6 }),
            ThreadState::Blocked(Block::Divide { until_cycle: 99 }),
            ThreadState::Blocked(Block::Event { until: Time::MAX }),
        ];
        for state in states {
            let mut t = Thread::free();
            t.regs[0] = 0xDEAD_BEEF;
            t.regs[13] = 42;
            t.pc = 0x104;
            t.instret = 7;
            t.state = state;
            let mut w = ByteWriter::new();
            write_thread(&mut w, &t);
            let bytes = w.finish();
            let mut r = ByteReader::new(&bytes);
            let back = read_thread(&mut r, &dims()).expect("round trip");
            assert_eq!(r.expect_end(), Ok(()));
            assert_eq!(back, t);
        }
    }

    #[test]
    fn out_of_range_block_indices_are_rejected() {
        let mut t = Thread::free();
        t.state = ThreadState::Blocked(Block::Lock { lock: 200 });
        let mut w = ByteWriter::new();
        write_thread(&mut w, &t);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert!(read_thread(&mut r, &dims()).is_err());
    }

    #[test]
    fn resource_table_round_trips() {
        let mut table = ResourceTable::new(32, 10, 7, 4, 2);
        let ch = table.alloc(ResType::Chanend).expect("chanend");
        let dest = ResourceId::new(NodeId(3), 5, ResType::Chanend);
        {
            let ch = table.chanend_mut(ch).expect("live");
            ch.dest = Some(dest);
            ch.out_buf.push_back((Token::Data(9), dest));
            ch.in_buf
                .push_back(Token::Ctrl(swallow_isa::ControlToken::END));
            ch.event = Some(EventCfg {
                vector: 0x40,
                owner: ThreadId(1),
                enabled: true,
            });
        }
        table.alloc(ResType::Timer).expect("timer");
        table.timers[0].as_mut().expect("live").threshold = Some(777);
        table.alloc(ResType::Sync).expect("sync");
        table.syncs[0].as_mut().expect("live").expected = 3;
        table.syncs[0]
            .as_mut()
            .expect("live")
            .waiting
            .push(ThreadId(2));
        table.alloc(ResType::Lock).expect("lock");
        table.locks[0].as_mut().expect("live").held_by = Some(ThreadId(4));
        table.alloc(ResType::PowerProbe).expect("probe");
        table.probes[0].as_mut().expect("live").channel = 4;

        let mut w = ByteWriter::new();
        write_resources(&mut w, &table);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        let back = read_resources(&mut r, &TableDims::of(&table)).expect("round trip");
        assert_eq!(r.expect_end(), Ok(()));
        let ch_back = back.chanend(ch).expect("live");
        assert_eq!(ch_back.dest, Some(dest));
        assert_eq!(ch_back.out_buf.len(), 1);
        assert_eq!(ch_back.in_buf.len(), 1);
        assert_eq!(
            ch_back.event,
            Some(EventCfg {
                vector: 0x40,
                owner: ThreadId(1),
                enabled: true,
            })
        );
        assert_eq!(back.timers[0].as_ref().expect("live").threshold, Some(777));
        assert_eq!(back.syncs[0].as_ref().expect("live").expected, 3);
        assert_eq!(
            back.locks[0].as_ref().expect("live").held_by,
            Some(ThreadId(4))
        );
        assert_eq!(back.probes[0].as_ref().expect("live").channel, 4);
    }

    #[test]
    fn trap_causes_round_trip() {
        let causes = [
            TrapCause::Mem(MemError::OutOfBounds {
                addr: 0x1_0000,
                width: 4,
            }),
            TrapCause::Mem(MemError::Misaligned { addr: 3, width: 2 }),
            TrapCause::Decode(DecodeError::BadOpcode(0xFF)),
            TrapCause::Decode(DecodeError::Truncated),
            TrapCause::BadResource { raw: 0xABCD },
            TrapCause::CtMismatch {
                expected: 1,
                got: Token::Data(9),
            },
            TrapCause::DataExpected {
                got: Token::Ctrl(swallow_isa::ControlToken::PAUSE),
            },
            TrapCause::NoDest { chanend: 5 },
            TrapCause::IllegalOp("divide by zero"),
            TrapCause::IllegalOp("releasing a lock not held"),
        ];
        for cause in causes {
            let mut w = ByteWriter::new();
            write_trap_cause(&mut w, &cause);
            let bytes = w.finish();
            let mut r = ByteReader::new(&bytes);
            let back = read_trap_cause(&mut r).expect("round trip");
            assert_eq!(r.expect_end(), Ok(()));
            assert_eq!(back, cause);
        }
    }

    #[test]
    fn unknown_illegal_op_string_is_rejected() {
        let mut w = ByteWriter::new();
        w.u8(6);
        w.str_prefixed("some future trap");
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(
            read_trap_cause(&mut r),
            Err(CodecError::Invalid("unknown illegal-op trap string"))
        );
    }
}
