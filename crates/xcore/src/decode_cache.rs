//! The per-core predecoded instruction cache.
//!
//! [`Core::step_thread`](crate::Core) used to call `swallow_isa::decode`
//! on raw SRAM words at *every* issue slot, re-deriving the same
//! instruction, word count, issue timing and energy class millions of
//! times. The [`DecodeCache`] maps each SRAM word index to a packed
//! [`Predecoded`] entry, filled lazily on first execution, so the
//! steady-state fetch path is one array load.
//!
//! # Invisibility
//!
//! Every field of an entry is a pure function of the instruction words
//! it was decoded from, so a hit is indistinguishable from a fresh
//! decode — *provided no stale entry survives a store into the words it
//! was decoded from*. The cache is owned by [`Sram`](crate::Sram)
//! itself, so all three write funnels (`write_u32`/`write_u16`/
//! `write_u8`) and the boot path (`load_words`) invalidate without any
//! cooperation from callers; there is no way to mutate SRAM bytes
//! without the cache seeing it.
//!
//! # Invalidation rule
//!
//! A store touching word index `w` clears the entries at `w` and
//! `w - 1`: the entry *at* `w` was decoded from word `w` (and possibly
//! `w + 1`, which the store did not change), and the only other entry
//! that can read word `w` is a two-word instruction starting at `w - 1`.
//! Clearing an entry that did not actually depend on the written word
//! costs one refill and nothing else, so data stores outside cached code
//! cost two bounds-checked byte writes (~nothing), and self-modifying
//! code is exact by construction.
//!
//! Decode *failures* are never cached: a trapping fetch re-runs the slow
//! path, which is irrelevant for performance (the thread is about to
//! die) and keeps entries unconditionally trustworthy.
//!
//! The cache is allocated lazily on the first fill, so the 480 idle
//! cores of a big machine never pay for it, and it can be disabled
//! entirely — per core via [`crate::Core::set_decode_cache`], machine-
//! wide via `SystemBuilder::decode_cache(false)`, or process-wide with
//! `SWALLOW_DECODE_CACHE=off` — as a differential-testing escape hatch.

use swallow_isa::{EnergyClass, Instr, Predecoded};

/// Environment variable gating the cache process-wide.
pub const DECODE_CACHE_ENV: &str = "SWALLOW_DECODE_CACHE";

/// The process-wide default: enabled unless `SWALLOW_DECODE_CACHE` is
/// set to `off`, `0` or `false` (case-insensitive).
pub fn decode_cache_default() -> bool {
    match std::env::var(DECODE_CACHE_ENV) {
        Ok(v) => !matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"),
        Err(_) => true,
    }
}

/// An empty (invalid) slot: `words == 0` never occurs in a real entry.
const EMPTY: Predecoded = Predecoded {
    instr: Instr::Nop,
    words: 0,
    issue_cycles: 0,
    class: EnergyClass::Idle,
};

/// Lazily-filled map from SRAM word index to predecoded entry.
#[derive(Clone, Debug)]
pub struct DecodeCache {
    /// One slot per SRAM word; empty until the first fill (idle cores
    /// and disabled caches allocate nothing).
    entries: Box<[Predecoded]>,
    /// Slots to allocate on first fill (SRAM bytes / 4).
    words: usize,
    /// Exclusive upper bound of the word indices ever filled since the
    /// last full invalidation. A store at word `w` can only hit a live
    /// entry when `w <= filled_hi` (the entry at `w`, or a two-word
    /// entry at `w - 1`), so data stores above the code high-water mark
    /// cost exactly one compare.
    filled_hi: usize,
    enabled: bool,
}

impl DecodeCache {
    /// A cache for an SRAM of `bytes` bytes, honouring `enabled`.
    pub fn new(bytes: u32, enabled: bool) -> Self {
        DecodeCache {
            entries: Box::new([]),
            words: (bytes / 4) as usize,
            filled_hi: 0,
            enabled,
        }
    }

    /// Whether lookups and fills are active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables the cache. Disabling drops every entry (and
    /// the backing allocation), so re-enabling starts cold.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.entries = Box::new([]);
            self.filled_hi = 0;
        }
    }

    /// Allocates the slot table up front (no-op when disabled or already
    /// allocated). Called at program load so the one-time `vec!` zeroing
    /// of 16 Ki slots happens at boot, not inside the measured hot loop;
    /// cores that never load a program never allocate.
    pub fn ensure_allocated(&mut self) {
        if self.enabled && self.entries.is_empty() {
            self.entries = vec![EMPTY; self.words].into_boxed_slice();
        }
    }

    /// The entry for word index `widx`, if cached.
    #[inline]
    pub fn lookup(&self, widx: usize) -> Option<Predecoded> {
        // An unallocated or disabled cache has no entries, so the
        // single `get` covers every off path.
        match self.entries.get(widx) {
            Some(e) if e.words != 0 => Some(*e),
            _ => None,
        }
    }

    /// Caches `entry` at word index `widx` (no-op when disabled).
    pub fn fill(&mut self, widx: usize, entry: Predecoded) {
        debug_assert!(entry.words == 1 || entry.words == 2);
        if !self.enabled {
            return;
        }
        self.ensure_allocated();
        if let Some(slot) = self.entries.get_mut(widx) {
            *slot = entry;
            self.filled_hi = self.filled_hi.max(widx + 1);
        }
    }

    /// Invalidates the entries that could have read word index `widx`:
    /// the entry at `widx` and a two-word instruction starting at
    /// `widx - 1`. Stores above the code high-water mark (`filled_hi`)
    /// provably hit nothing and return after one compare, so ordinary
    /// data stores cost ~nothing.
    #[inline]
    pub fn invalidate_word(&mut self, widx: usize) {
        if widx > self.filled_hi {
            return;
        }
        if let Some(e) = self.entries.get_mut(widx) {
            e.words = 0;
        }
        if widx > 0 {
            if let Some(e) = self.entries.get_mut(widx - 1) {
                e.words = 0;
            }
        }
    }

    /// Drops every entry (bulk rewrite: program load). Only the filled
    /// prefix needs clearing.
    pub fn invalidate_all(&mut self) {
        let hi = self.filled_hi.min(self.entries.len());
        for e in self.entries[..hi].iter_mut() {
            e.words = 0;
        }
        self.filled_hi = 0;
    }

    /// Number of live entries (test/observability hook).
    pub fn live_entries(&self) -> usize {
        self.entries.iter().filter(|e| e.words != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow_isa::{predecode, Reg};

    fn entry_of(instr: Instr) -> Predecoded {
        let enc = swallow_isa::encode(&instr).expect("encodes");
        predecode(enc.words()).expect("decodes")
    }

    #[test]
    fn fill_lookup_invalidate_round_trip() {
        let mut cache = DecodeCache::new(64, true);
        assert_eq!(cache.lookup(3), None);
        let nop = entry_of(Instr::Nop);
        cache.fill(3, nop);
        assert_eq!(cache.lookup(3), Some(nop));
        assert_eq!(cache.live_entries(), 1);
        cache.invalidate_word(3);
        assert_eq!(cache.lookup(3), None);
        assert_eq!(cache.live_entries(), 0);
    }

    #[test]
    fn invalidation_clears_a_spanning_predecessor() {
        let mut cache = DecodeCache::new(64, true);
        let wide = entry_of(Instr::Ldc {
            d: Reg::R0,
            imm: 0x1234_5678,
        });
        assert_eq!(wide.words, 2, "wide ldc spans two words");
        cache.fill(4, wide);
        // A store into the extension word (index 5) must kill the entry
        // at index 4.
        cache.invalidate_word(5);
        assert_eq!(cache.lookup(4), None);
    }

    #[test]
    fn disabled_cache_neither_fills_nor_allocates() {
        let mut cache = DecodeCache::new(64, false);
        cache.fill(0, entry_of(Instr::Nop));
        assert_eq!(cache.lookup(0), None);
        assert_eq!(cache.live_entries(), 0);
        cache.set_enabled(true);
        cache.fill(0, entry_of(Instr::Nop));
        assert!(cache.lookup(0).is_some());
        cache.set_enabled(false);
        assert_eq!(cache.lookup(0), None, "disabling drops entries");
    }

    #[test]
    fn invalidate_all_empties_the_cache() {
        let mut cache = DecodeCache::new(64, true);
        for i in 0..8 {
            cache.fill(i, entry_of(Instr::Nop));
        }
        assert_eq!(cache.live_entries(), 8);
        cache.invalidate_all();
        assert_eq!(cache.live_entries(), 0);
    }

    #[test]
    fn env_default_parses_off_values() {
        // Only checks the parser, not the live environment.
        assert!(decode_cache_default() || std::env::var(DECODE_CACHE_ENV).is_ok());
    }
}
