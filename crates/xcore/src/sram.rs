//! The 64 KiB single-cycle unified SRAM.
//!
//! The XS1-L has no cache and no external memory: every core owns 64 KiB
//! of SRAM serving both instructions and data in a single cycle. That
//! uniformity is one of the two pillars of Swallow's time determinism
//! (Table II), so the model is deliberately boring: flat bytes, checked
//! alignment, checked bounds, fixed latency.
//!
//! The *simulator* does keep one piece of derived state here: the
//! [`DecodeCache`] of predecoded instruction entries ([`Sram::fetch`]).
//! It lives inside the SRAM so that every write funnel invalidates it —
//! there is no way to change a byte without the cache seeing it — and it
//! is excluded from `PartialEq`, which compares architectural bytes
//! only. See `decode_cache` for the invisibility argument.

use crate::decode_cache::{decode_cache_default, DecodeCache};
use std::fmt;
use swallow_isa::{predecode, DecodeError, Predecoded};

/// Default SRAM size per core (64 KiB, §IV.A).
pub const DEFAULT_SRAM_BYTES: u32 = 64 * 1024;

/// A memory access fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemError {
    /// Address beyond the end of SRAM.
    OutOfBounds {
        /// The faulting byte address.
        addr: u32,
        /// The access width in bytes.
        width: u8,
    },
    /// Address not aligned to the access width.
    Misaligned {
        /// The faulting byte address.
        addr: u32,
        /// The access width in bytes.
        width: u8,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr, width } => {
                write!(f, "{width}-byte access at {addr:#x} is out of bounds")
            }
            MemError::Misaligned { addr, width } => {
                write!(f, "{width}-byte access at {addr:#x} is misaligned")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// An instruction-fetch fault (see [`Sram::fetch`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchError {
    /// The fetch itself faulted (misaligned pc, or a word off the end of
    /// SRAM).
    Mem(MemError),
    /// The fetched words do not decode.
    Decode(DecodeError),
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::Mem(e) => write!(f, "fetch fault: {e}"),
            FetchError::Decode(e) => write!(f, "decode fault: {e}"),
        }
    }
}

impl std::error::Error for FetchError {}

/// A core's unified SRAM.
///
/// ```
/// use swallow_xcore::sram::Sram;
/// let mut mem = Sram::new(1024);
/// mem.write_u32(0, 0xDEAD_BEEF).expect("in bounds");
/// assert_eq!(mem.read_u32(0), Ok(0xDEAD_BEEF));
/// assert!(mem.read_u32(1).is_err()); // misaligned
/// ```
#[derive(Clone)]
pub struct Sram {
    bytes: Vec<u8>,
    /// Predecoded instruction entries (derived state, not architectural;
    /// ignored by `PartialEq`).
    cache: DecodeCache,
}

impl PartialEq for Sram {
    fn eq(&self, other: &Self) -> bool {
        // Architectural state only: the decode cache is a pure function
        // of the bytes it was filled from.
        self.bytes == other.bytes
    }
}

impl Eq for Sram {}

impl Sram {
    /// Creates a zeroed SRAM of `size` bytes (rounded up to 4). The
    /// decode cache starts at the process-wide default
    /// (`SWALLOW_DECODE_CACHE`).
    pub fn new(size: u32) -> Self {
        let size = size.next_multiple_of(4);
        Sram {
            bytes: vec![0; size as usize],
            cache: DecodeCache::new(size, decode_cache_default()),
        }
    }

    /// Enables or disables the predecoded-instruction cache (the
    /// differential-testing escape hatch). Disabling drops every cached
    /// entry; behaviour is bit-identical either way.
    pub fn set_decode_cache(&mut self, enabled: bool) {
        self.cache.set_enabled(enabled);
    }

    /// Whether the predecoded-instruction cache is active.
    pub fn decode_cache_enabled(&self) -> bool {
        self.cache.is_enabled()
    }

    /// Live predecoded entries (test/observability hook).
    pub fn decode_cache_entries(&self) -> usize {
        self.cache.live_entries()
    }

    /// Fetches and decodes the instruction at byte address `pc`,
    /// predecode-cached: the steady-state path is a single array load.
    /// On a miss, reads one word (retrying with a second on a truncated
    /// two-word encoding, exactly like the uncached interpreter did),
    /// decodes, classifies and caches the entry. Failures are never
    /// cached.
    ///
    /// # Errors
    ///
    /// [`FetchError::Mem`] when `pc` (or the extension word of a
    /// two-word instruction) faults; [`FetchError::Decode`] when the
    /// words do not decode.
    #[inline]
    pub fn fetch(&mut self, pc: u32) -> Result<Predecoded, FetchError> {
        if pc & 3 == 0 {
            if let Some(entry) = self.cache.lookup((pc >> 2) as usize) {
                return Ok(entry);
            }
        }
        self.fetch_slow(pc)
    }

    /// The miss path of [`Sram::fetch`]: decode from bytes and fill.
    #[cold]
    fn fetch_slow(&mut self, pc: u32) -> Result<Predecoded, FetchError> {
        let w0 = self.read_u32(pc).map_err(FetchError::Mem)?;
        let entry = match predecode(&[w0]) {
            Ok(entry) => entry,
            Err(DecodeError::Truncated) => {
                let w1 = self.read_u32(pc + 4).map_err(FetchError::Mem)?;
                predecode(&[w0, w1]).map_err(FetchError::Decode)?
            }
            Err(e) => return Err(FetchError::Decode(e)),
        };
        self.cache.fill((pc >> 2) as usize, entry);
        Ok(entry)
    }

    /// The SRAM size in bytes.
    pub fn len(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Always false: a core without memory is not constructible.
    pub fn is_empty(&self) -> bool {
        false
    }

    fn check(&self, addr: u32, width: u8) -> Result<usize, MemError> {
        if !addr.is_multiple_of(width as u32) {
            return Err(MemError::Misaligned { addr, width });
        }
        let end = addr as u64 + width as u64;
        if end > self.bytes.len() as u64 {
            return Err(MemError::OutOfBounds { addr, width });
        }
        Ok(addr as usize)
    }

    /// Reads a 32-bit word (little-endian).
    ///
    /// # Errors
    ///
    /// [`MemError`] on unaligned or out-of-bounds access.
    pub fn read_u32(&self, addr: u32) -> Result<u32, MemError> {
        let i = self.check(addr, 4)?;
        Ok(u32::from_le_bytes(
            self.bytes[i..i + 4].try_into().expect("bounds checked"),
        ))
    }

    /// Writes a 32-bit word (little-endian).
    ///
    /// # Errors
    ///
    /// [`MemError`] on unaligned or out-of-bounds access.
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        let i = self.check(addr, 4)?;
        self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes());
        self.cache.invalidate_word(i >> 2);
        Ok(())
    }

    /// Reads a 16-bit halfword.
    ///
    /// # Errors
    ///
    /// [`MemError`] on unaligned or out-of-bounds access.
    pub fn read_u16(&self, addr: u32) -> Result<u16, MemError> {
        let i = self.check(addr, 2)?;
        Ok(u16::from_le_bytes(
            self.bytes[i..i + 2].try_into().expect("bounds checked"),
        ))
    }

    /// Writes a 16-bit halfword.
    ///
    /// # Errors
    ///
    /// [`MemError`] on unaligned or out-of-bounds access.
    pub fn write_u16(&mut self, addr: u32, value: u16) -> Result<(), MemError> {
        let i = self.check(addr, 2)?;
        self.bytes[i..i + 2].copy_from_slice(&value.to_le_bytes());
        self.cache.invalidate_word(i >> 2);
        Ok(())
    }

    /// Reads a byte.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] past the end of SRAM.
    pub fn read_u8(&self, addr: u32) -> Result<u8, MemError> {
        let i = self.check(addr, 1)?;
        Ok(self.bytes[i])
    }

    /// Writes a byte.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] past the end of SRAM.
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), MemError> {
        let i = self.check(addr, 1)?;
        self.bytes[i] = value;
        self.cache.invalidate_word(i >> 2);
        Ok(())
    }

    /// The architectural byte contents (the snapshot codec's view; the
    /// decode cache is derived state and not part of it).
    pub fn snapshot_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Restores the architectural bytes from a snapshot image of the same
    /// size, dropping every predecoded entry — the cache refills on
    /// demand, exactly as after [`Sram::load_words`]. Returns `false`
    /// (and copies nothing) when the image size does not match.
    pub fn restore_bytes(&mut self, image: &[u8]) -> bool {
        if image.len() != self.bytes.len() {
            return false;
        }
        self.bytes.copy_from_slice(image);
        self.cache.invalidate_all();
        self.cache.ensure_allocated();
        true
    }

    /// Copies a program image (32-bit words) to address 0.
    ///
    /// Returns `false` (and copies nothing) if the image does not fit.
    pub fn load_words(&mut self, words: &[u32]) -> bool {
        if words.len() * 4 > self.bytes.len() {
            return false;
        }
        for (i, w) in words.iter().enumerate() {
            self.bytes[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        self.cache.invalidate_all();
        // A core that loads a program is about to execute: allocate the
        // slot table now so the one-time zeroing happens at boot rather
        // than on the first fetch of a measured run.
        self.cache.ensure_allocated();
        true
    }
}

impl fmt::Debug for Sram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sram")
            .field("bytes", &self.bytes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_halfword_byte_round_trips() {
        let mut m = Sram::new(64);
        m.write_u32(8, 0x0102_0304).expect("aligned");
        assert_eq!(m.read_u16(8), Ok(0x0304));
        assert_eq!(m.read_u16(10), Ok(0x0102));
        assert_eq!(m.read_u8(11), Ok(0x01));
        m.write_u8(8, 0xFF).expect("in bounds");
        assert_eq!(m.read_u32(8), Ok(0x0102_03FF));
        m.write_u16(10, 0xBEEF).expect("aligned");
        assert_eq!(m.read_u32(8), Ok(0xBEEF_03FF));
    }

    #[test]
    fn faults_are_detected() {
        let mut m = Sram::new(16);
        assert_eq!(
            m.read_u32(2),
            Err(MemError::Misaligned { addr: 2, width: 4 })
        );
        assert_eq!(
            m.read_u32(16),
            Err(MemError::OutOfBounds { addr: 16, width: 4 })
        );
        assert_eq!(
            m.write_u16(15, 0),
            Err(MemError::Misaligned { addr: 15, width: 2 })
        );
        assert_eq!(
            m.write_u8(16, 0),
            Err(MemError::OutOfBounds { addr: 16, width: 1 })
        );
        // Wrap-around does not sneak past the bounds check.
        assert!(m.read_u32(u32::MAX - 3).is_err());
    }

    #[test]
    fn loads_program_images() {
        let mut m = Sram::new(16);
        assert!(m.load_words(&[0x1111_1111, 0x2222_2222]));
        assert_eq!(m.read_u32(4), Ok(0x2222_2222));
        assert!(!m.load_words(&[0; 5]));
    }

    #[test]
    fn size_rounds_up_to_words() {
        assert_eq!(Sram::new(3).len(), 4);
        assert_eq!(Sram::new(DEFAULT_SRAM_BYTES).len(), 65536);
    }
}
