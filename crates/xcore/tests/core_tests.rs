//! Behavioural tests for the XS1-L core model: programs are assembled from
//! source, executed cycle by cycle, and checked against the architectural
//! contract the paper relies on (Eq. 2 thread scaling, blocking channel
//! semantics, time determinism, energy calibration).

use swallow_isa::{Assembler, NodeId, ThreadId};
use swallow_sim::Frequency;
use swallow_xcore::{Block, Core, CoreConfig, ThreadState, TrapCause};

fn core_with(src: &str) -> Core {
    let program = Assembler::new().assemble(src).expect("assembles");
    let mut core = Core::new(CoreConfig::swallow(NodeId(0)));
    core.load_program(&program).expect("fits in SRAM");
    core
}

/// Delivers core-local traffic: moves tokens from output buffers to their
/// destination chanends on the same core (what the switch loopback path
/// does on hardware).
fn pump_local(core: &mut Core) {
    loop {
        let mut moved = false;
        let pending: Vec<u8> = core.tx_pending().collect();
        for ch in pending {
            while let Some((dest, _)) = core.tx_front(ch) {
                if dest.node() == core.node() && core.can_accept(dest.index(), 1) {
                    let (d, t) = core.tx_pop(ch).expect("front exists");
                    core.deliver(d.index(), t).expect("accepted");
                    moved = true;
                } else {
                    break;
                }
            }
        }
        if !moved {
            break;
        }
    }
}

/// Runs until quiescent (or the cycle budget runs out), pumping local
/// traffic every cycle.
fn run(core: &mut Core, max_cycles: u64) {
    let start = core.cycles();
    while !core.is_quiescent() && core.cycles() - start < max_cycles {
        core.tick(core.next_tick_at());
        pump_local(core);
    }
}

#[test]
fn arithmetic_and_output() {
    let mut core = core_with(
        "ldc r0, 21\n add r0, r0, r0\n print r0\n
         ldc r1, 0x0F0F\n not r2, r1\n and r3, r2, r1\n print r3\n
         ldc r4, 100\n ldc r5, 7\n remu r6, r4, r5\n print r6\n freet",
    );
    run(&mut core, 10_000);
    assert_eq!(core.output(), "42\n0\n2\n");
    assert!(core.trap().is_none());
}

#[test]
fn signed_operations() {
    let mut core = core_with(
        "ldc r0, 5\n neg r1, r0\n print r1\n
         ldc r2, -20\n ldc r3, 6\n divs r4, r2, r3\n print r4\n
         lss r5, r2, r0\n print r5\n
         ashr r6, r2, 1\n print r6\n freet",
    );
    run(&mut core, 10_000);
    assert_eq!(core.output(), "-5\n-3\n1\n-10\n");
}

#[test]
fn function_calls_use_the_stack() {
    // Recursive factorial via bl/ret with a manually managed stack.
    let mut core = core_with(
        "
            ldc   r0, 5
            bl    fact
            print r0
            freet
        fact:                       # r0 = n -> r0 = n!
            eq    r1, r0, 0
            bf    r1, recurse
            ldc   r0, 1
            ret
        recurse:
            sub   sp, sp, 8
            stw   lr, sp[0]
            stw   r0, sp[1]
            sub   r0, r0, 1
            bl    fact
            ldw   r2, sp[1]
            mul   r0, r0, r2
            ldw   lr, sp[0]
            add   sp, sp, 8
            ret
        ",
    );
    run(&mut core, 100_000);
    assert_eq!(core.output(), "120\n");
    assert!(core.trap().is_none(), "trap: {:?}", core.trap());
}

#[test]
fn memory_width_operations() {
    let mut core = core_with(
        "
            ldc  r0, 0x200
            ldc  r1, 0x1234ABCD
            stw  r1, r0[0]
            ld8u r2, r0[0]
            print r2                 # 0xCD = 205
            ld16s r3, r0[1]          # high half 0x1234 = 4660
            print r3
            ldc  r4, 0xFFFF
            st16 r4, r0[0]           # low half = 0xFFFF
            ld16s r5, r0[0]
            print r5                 # sign extended: -1
            freet
        ",
    );
    run(&mut core, 10_000);
    assert_eq!(core.output(), "205\n4660\n-1\n");
}

/// Eq. 2: per-thread issue rate is f / max(4, Nt).
#[test]
fn eq2_thread_scaling() {
    for nt in [1usize, 2, 3, 4, 6, 8] {
        let spawners = nt - 1;
        let src = format!(
            "
                ldc   r5, {spawners}
                ldap  r6, worker
            spawn:
                bf    r5, work
                tspawn r7, r6, r5
                sub   r5, r5, 1
                bu    spawn
            work:
            worker:
                add   r1, r1, 1
                bu    worker
            "
        );
        let mut core = core_with(&src);
        // Warm up past the spawn phase.
        for _ in 0..200 {
            core.tick(core.next_tick_at());
        }
        assert_eq!(core.ready_threads(), nt);
        let before: Vec<u64> = (0..8).map(|t| core.thread_instret(ThreadId(t))).collect();
        let window = 4 * 6 * 100; // divisible by every max(4, nt)
        for _ in 0..window {
            core.tick(core.next_tick_at());
        }
        let expected = window as u64 / nt.max(4) as u64;
        let mut live = 0;
        for t in 0..8u8 {
            let delta = core.thread_instret(ThreadId(t)) - before[t as usize];
            if delta > 0 {
                live += 1;
                assert!(
                    (delta as i64 - expected as i64).abs() <= 2,
                    "Nt={nt}: thread {t} retired {delta}, expected ~{expected}"
                );
            }
        }
        assert_eq!(live, nt, "Nt={nt}");
    }
}

#[test]
fn divider_blocks_the_thread_for_32_cycles() {
    let mut core = core_with("ldc r0, 144\n ldc r1, 12\n divu r2, r0, r1\n print r2\n freet");
    run(&mut core, 1_000);
    assert_eq!(core.output(), "12\n");
    // 2 ldc + divu + print + freet = 5 issue slots. With one thread the
    // slots are 4 cycles apart, and the divide adds a 32-cycle sleep.
    // Quiescence is reached within ~4*5 + 32 + rotation slack.
    assert!(
        (40..=70).contains(&core.cycles()),
        "cycles = {}",
        core.cycles()
    );
}

#[test]
fn local_channel_word_round_trip() {
    let mut core = core_with(
        "
            getr  r0, chanend
            getr  r1, chanend
            setd  r0, r1
            setd  r1, r0
            ldap  r2, receiver
            tspawn r3, r2, r1
            ldc   r4, 0xBEEF
            out   r0, r4
            outct r0, end
            freet
        receiver:                  # r0 = this thread's chanend rid
            in    r5, r0
            chkct r0, end
            print r5
            freet
        ",
    );
    run(&mut core, 10_000);
    assert_eq!(core.output(), "48879\n");
    assert!(core.trap().is_none(), "trap: {:?}", core.trap());
}

#[test]
fn input_blocks_until_delivery() {
    let mut core = core_with(
        "
            getr  r0, chanend
            setd  r0, r0
            in    r1, r0
            print r1
            freet
        ",
    );
    for _ in 0..100 {
        core.tick(core.next_tick_at());
    }
    // Thread 0 is parked on the empty input buffer.
    assert!(matches!(
        core.thread_state(ThreadId(0)),
        ThreadState::Blocked(Block::RecvTokens { need: 4, .. })
    ));
    // Deliver a word's worth of tokens by hand.
    for byte in [0u8, 0, 0x30, 0x39] {
        core.deliver(0, swallow_isa::Token::Data(byte))
            .expect("space");
    }
    run(&mut core, 1_000);
    assert_eq!(core.output(), "12345\n");
}

#[test]
fn output_blocks_when_buffer_fills() {
    let mut core = core_with(
        "
            getr  r0, chanend
            setd  r0, r0
            ldc   r1, 1
            out   r0, r1
            out   r0, r1
            out   r0, r1        # 12 tokens > 8: blocks here
            print r1
            freet
        ",
    );
    for _ in 0..200 {
        core.tick(core.next_tick_at());
    }
    assert!(matches!(
        core.thread_state(ThreadId(0)),
        ThreadState::Blocked(Block::SendSpace { need: 4, .. })
    ));
    // Drain four tokens: the sender wakes and completes.
    for _ in 0..4 {
        core.tx_pop(0).expect("token available");
    }
    for _ in 0..200 {
        core.tick(core.next_tick_at());
        while core.tx_pop(0).is_some() {}
    }
    assert_eq!(core.output(), "1\n");
}

#[test]
fn testct_distinguishes_control_tokens() {
    let mut core = core_with(
        "
            getr  r0, chanend
            setd  r0, r0
            testct r1, r0
            print r1
            int   r2, r0
            print r2
            testct r3, r0
            print r3
            chkct r0, end
            freet
        ",
    );
    for _ in 0..40 {
        core.tick(core.next_tick_at()); // run getr/setd before delivering
    }
    core.deliver(0, swallow_isa::Token::Data(9)).expect("space");
    core.deliver(0, swallow_isa::Token::Ctrl(swallow_isa::ControlToken::END))
        .expect("space");
    run(&mut core, 10_000);
    assert_eq!(core.output(), "0\n9\n1\n");
    assert!(core.trap().is_none());
}

#[test]
fn traps_are_recorded() {
    // Misaligned load.
    let mut core = core_with("ldc r0, 3\n ldw r1, r0[0]\n freet");
    run(&mut core, 1_000);
    let trap = core.trap().expect("should trap");
    assert!(matches!(trap.cause, TrapCause::Mem(_)));
    assert_eq!(trap.thread, ThreadId(0));

    // Divide by zero.
    let mut core = core_with("ldc r0, 1\n ldc r1, 0\n divu r2, r0, r1\n freet");
    run(&mut core, 1_000);
    assert!(matches!(
        core.trap().expect("should trap").cause,
        TrapCause::IllegalOp(_)
    ));

    // Operating on a resource that was never allocated.
    let mut core = core_with("ldc r0, 0x42\n out r0, r0\n freet");
    run(&mut core, 1_000);
    assert!(matches!(
        core.trap().expect("should trap").cause,
        TrapCause::BadResource { .. }
    ));

    // chkct mismatch.
    let mut core = core_with("getr r0, chanend\n setd r0, r0\n chkct r0, end\n freet");
    for _ in 0..40 {
        core.tick(core.next_tick_at()); // run getr/setd before delivering
    }
    core.deliver(0, swallow_isa::Token::Data(7)).expect("space");
    run(&mut core, 1_000);
    assert!(matches!(
        core.trap().expect("should trap").cause,
        TrapCause::CtMismatch { expected: 1, .. }
    ));
}

#[test]
fn trapped_thread_stops_but_core_survives() {
    let mut core = core_with(
        "
            ldap  r2, victim
            tspawn r3, r2, r0
            ldc   r1, 7
            print r1
            freet
        victim:
            ldc   r0, 1
            ldc   r1, 0
            divu  r2, r0, r1
            freet
        ",
    );
    run(&mut core, 10_000);
    assert_eq!(core.output(), "7\n");
    assert!(core.trap().is_some());
    assert_eq!(core.thread_state(ThreadId(1)), ThreadState::Trapped);
}

#[test]
fn timer_reads_and_waits() {
    let mut core = core_with(
        "
            getr  r0, timer
            in    r1, r0          # ticks now
            add   r2, r1, 100     # +100 ticks = 1 us
            tmwait r0, r2
            in    r3, r0
            lsu   r4, r3, r2      # after < target? must be 0
            print r4
            freet
        ",
    );
    run(&mut core, 100_000);
    assert_eq!(core.output(), "0\n");
    // 1 us at 500 MHz is 500 cycles; the program must have slept.
    assert!(core.cycles() >= 500, "cycles = {}", core.cycles());
}

#[test]
fn waiteu_parks_forever() {
    let mut core = core_with("waiteu");
    for _ in 0..10 {
        core.tick(core.next_tick_at());
    }
    assert!(core.is_quiescent());
    assert_eq!(core.next_wake(), None);
}

#[test]
fn lock_serialises_read_modify_write() {
    let mut core = core_with(
        "
            getr  r0, lock
            ldap  r2, worker
            tspawn r3, r2, r0
            tspawn r4, r2, r0
            freet
        worker:                    # r0 = lock rid
            ldc   r2, 0x400
            ldc   r3, 200
        wloop:
            in    r4, r0           # acquire
            ldw   r5, r2[0]
            add   r5, r5, 1
            stw   r5, r2[0]
            out   r0, r4           # release
            sub   r3, r3, 1
            bt    r3, wloop
            freet
        ",
    );
    run(&mut core, 200_000);
    assert!(core.trap().is_none(), "trap: {:?}", core.trap());
    assert_eq!(core.sram().read_u32(0x400), Ok(400));
}

#[test]
fn unlocked_read_modify_write_loses_updates() {
    // The control experiment for the test above: without the lock, the
    // round-robin interleave tears the read-modify-write.
    let mut core = core_with(
        "
            ldap  r2, worker
            tspawn r3, r2, r0
            tspawn r4, r2, r0
            freet
        worker:
            ldc   r2, 0x400
            ldc   r3, 200
        wloop:
            ldw   r5, r2[0]
            add   r5, r5, 1
            stw   r5, r2[0]
            sub   r3, r3, 1
            bt    r3, wloop
            freet
        ",
    );
    run(&mut core, 200_000);
    let value = core.sram().read_u32(0x400).expect("aligned");
    assert!(value < 400, "expected lost updates, got {value}");
}

#[test]
fn barrier_synchronises_three_threads() {
    let mut core = core_with(
        "
            getr  r0, sync
            ldc   r1, 3
            setd  r0, r1          # three parties
            ldap  r2, worker
            tspawn r3, r2, r0
            tspawn r4, r2, r0
            msync r0
            ldc   r5, 111
            print r5
            freet
        worker:                    # r0 = sync rid
            ssync r0
            ldc   r1, 222
            print r1
            freet
        ",
    );
    run(&mut core, 100_000);
    assert!(core.trap().is_none(), "trap: {:?}", core.trap());
    let mut lines: Vec<&str> = core.output().lines().collect();
    lines.sort_unstable();
    assert_eq!(lines, ["111", "222", "222"]);
}

#[test]
fn barrier_blocks_until_last_arrival() {
    let mut core = core_with(
        "
            getr  r0, sync
            ldc   r1, 2
            setd  r0, r1
            msync r0              # nobody else: blocks forever
            freet
        ",
    );
    for _ in 0..100 {
        core.tick(core.next_tick_at());
    }
    assert!(matches!(
        core.thread_state(ThreadId(0)),
        ThreadState::Blocked(Block::Barrier { .. })
    ));
}

#[test]
fn probe_reads_live_power() {
    let mut core = core_with(
        "
            getr  r0, probe
            ldc   r1, 2
            setd  r0, r1          # channel 2
            in    r2, r0
            print r2
            freet
        ",
    );
    core.set_probe_reading(2, 193_000); // 193 mW in microwatts
    run(&mut core, 1_000);
    assert_eq!(core.output(), "193000\n");
}

#[test]
fn getr_exhaustion_returns_invalid() {
    // 33rd chanend allocation fails: prints -1.
    let mut core = core_with(
        "
            ldc   r1, 33
        aloop:
            getr  r0, chanend
            sub   r1, r1, 1
            bt    r1, aloop
            print r0
            freet
        ",
    );
    run(&mut core, 10_000);
    assert_eq!(core.output(), "-1\n");
}

#[test]
fn halt_stops_the_core() {
    let mut core = core_with("ldc r0, 1\n halt\n print r0\n freet");
    run(&mut core, 1_000);
    assert!(core.is_halted());
    assert_eq!(core.output(), "", "nothing after halt");
}

#[test]
fn idle_power_matches_fig3_zero_thread_line() {
    let mut core = core_with("waiteu");
    let cycles = 50_000u64;
    for _ in 0..cycles {
        core.tick(core.next_tick_at());
    }
    let span = swallow_sim::TimeDelta::from_ps(cycles * 2_000); // 500 MHz
    let power = core.ledger().total().over(span).as_milliwatts();
    assert!((power - 113.0).abs() < 2.0, "idle power = {power} mW");
}

#[test]
fn loaded_power_sits_between_idle_and_eq1() {
    // Four busy threads of a 50/50 ALU/branch loop. The mix is lighter
    // than the calibrated heavy mix, so power lands between the Fig. 3
    // idle and loaded lines.
    let mut core = core_with(
        "
            ldc   r5, 3
            ldap  r6, worker
        spawn:
            bf    r5, worker
            tspawn r7, r6, r5
            sub   r5, r5, 1
            bu    spawn
        worker:
            add   r1, r1, 1
            bu    worker
        ",
    );
    let cycles = 50_000u64;
    for _ in 0..cycles {
        core.tick(core.next_tick_at());
    }
    let span = swallow_sim::TimeDelta::from_ps(cycles * 2_000);
    let power = core.ledger().total().over(span).as_milliwatts();
    // Expected: 46 + 0.5*(0.134 + (0.140+0.110)/2) ... per-cycle energy
    // 0.134 + 0.125 = 0.259 nJ -> 46 + 129.5 = ~175 mW.
    assert!(power > 150.0 && power < 196.0, "loaded power = {power} mW");
    let idle = 113.0;
    assert!(power > idle, "busy core must out-consume an idle one");
}

#[test]
fn frequency_scaling_reduces_power_proportionally() {
    let mut powers = Vec::new();
    for mhz in [100u64, 250, 500] {
        let program = Assembler::new()
            .assemble("worker: add r1, r1, 1\n bu worker")
            .expect("assembles");
        let mut config = CoreConfig::swallow(NodeId(0));
        config.frequency = Frequency::from_mhz(mhz);
        let mut core = Core::new(config);
        core.load_program(&program).expect("fits");
        let cycles = 20_000u64;
        for _ in 0..cycles {
            core.tick(core.next_tick_at());
        }
        let span = core.frequency().period() * cycles;
        powers.push(core.ledger().total().over(span).as_milliwatts());
    }
    // Linear in f: P(500)-P(250) == P(250)-... with equal spacing 250,
    // and always above the 46 mW static floor.
    assert!(powers[0] > 46.0);
    assert!(powers[0] < powers[1] && powers[1] < powers[2]);
    let slope1 = (powers[1] - powers[0]) / 150.0;
    let slope2 = (powers[2] - powers[1]) / 250.0;
    assert!(
        (slope1 - slope2).abs() < 0.02,
        "nonlinear: {slope1} vs {slope2} ({powers:?})"
    );
}

#[test]
fn deterministic_replay() {
    let src = "
        getr  r0, chanend
        getr  r1, chanend
        setd  r0, r1
        setd  r1, r0
        ldap  r2, echo
        tspawn r3, r2, r1
        ldc   r4, 1000
    sloop:
        out   r0, r4
        in    r5, r0
        sub   r4, r4, 1
        bt    r4, sloop
        halt
    echo:
        in    r6, r0
        out   r0, r6
        bu    echo
    ";
    let run_once = || {
        let mut core = core_with(src);
        run(&mut core, 2_000_000);
        (
            core.cycles(),
            core.instret(),
            core.ledger().total().as_joules(),
        )
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}
