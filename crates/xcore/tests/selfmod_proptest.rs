//! Self-modifying code vs the predecoded-instruction cache.
//!
//! Two identical cores — one with the cache on, one with it off — run
//! the same program through random interleavings of execution and code
//! stores (32-, 16- and 8-bit, via the same SRAM write funnels every
//! store uses). After every operation the two must agree on retired
//! instructions, output, trap state, architectural memory and energy:
//! any stale cache entry would split them at the first affected fetch.

use swallow_isa::{encode, Assembler, Instr, NodeId, Reg};
use swallow_testkit::proptest::prelude::*;
use swallow_xcore::{Core, CoreConfig};

/// Stores land in the first `CODE_BYTES` of SRAM, where the loop lives.
const CODE_BYTES: u32 = 64;

/// Single-word instructions stores may splice into the loop body.
fn palette_word(sel: usize) -> u32 {
    let instr = match sel {
        0 => Instr::Nop,
        1 => Instr::Add {
            d: Reg::R1,
            a: Reg::R1,
            b: Reg::R2,
        },
        2 => Instr::Sub {
            d: Reg::R3,
            a: Reg::R1,
            b: Reg::R2,
        },
        3 => Instr::Xor {
            d: Reg::R2,
            a: Reg::R2,
            b: Reg::R1,
        },
        _ => Instr::Mul {
            d: Reg::R4,
            a: Reg::R1,
            b: Reg::R2,
        },
    };
    encode(&instr).expect("palette encodes").words()[0]
}

fn busy_core(decode_cache: bool) -> Core {
    // An eight-nop loop body: every word is a valid splice target, and
    // the trailing branch keeps thread 0 executing forever (unless a
    // store clobbers it — then both cores fall off identically).
    let program = Assembler::new()
        .assemble(
            "
                ldc   r1, 3
                ldc   r2, 5
            loop:
                nop
                nop
                nop
                nop
                nop
                nop
                nop
                nop
                bu    loop
            ",
        )
        .expect("assembles");
    let mut core = Core::new(CoreConfig::swallow(NodeId(0)));
    core.set_decode_cache(decode_cache);
    core.load_program(&program).expect("fits");
    core
}

/// One relative-tolerance energy comparison (1e-9, the differential
/// suites' bound; in practice the two runs are bitwise identical).
fn energy_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random (tick* | store)* interleavings: cache on ≡ cache off.
    #[test]
    fn cache_is_invisible_under_code_stores(
        ops in proptest::collection::vec(
            (0u8..4, 0u32..CODE_BYTES, any::<u32>(), 0usize..5),
            1..40,
        ),
    ) {
        let mut on = busy_core(true);
        let mut off = busy_core(false);
        for &(kind, addr, raw, sel) in &ops {
            match kind {
                // A burst of clock edges (1..=24) on both cores.
                0 => {
                    for _ in 0..(raw % 24 + 1) {
                        on.tick(on.next_tick_at());
                        off.tick(off.next_tick_at());
                    }
                }
                // Word store: usually a valid instruction, sometimes a
                // raw word (both cores trap identically on garbage).
                1 => {
                    let a = addr & !3;
                    let w = if sel == 4 { raw } else { palette_word(sel) };
                    prop_assert_eq!(
                        on.sram_mut().write_u32(a, w),
                        off.sram_mut().write_u32(a, w)
                    );
                }
                // Partial-word stores into instruction words.
                2 => {
                    let a = addr & !1;
                    prop_assert_eq!(
                        on.sram_mut().write_u16(a, raw as u16),
                        off.sram_mut().write_u16(a, raw as u16)
                    );
                }
                _ => {
                    prop_assert_eq!(
                        on.sram_mut().write_u8(addr, raw as u8),
                        off.sram_mut().write_u8(addr, raw as u8)
                    );
                }
            }
            prop_assert_eq!(on.instret(), off.instret());
            prop_assert_eq!(on.output(), off.output());
            prop_assert_eq!(on.trap(), off.trap());
            prop_assert_eq!(on.is_quiescent(), off.is_quiescent());
            prop_assert!(on.sram() == off.sram(), "architectural SRAM diverged");
            prop_assert!(
                energy_close(
                    on.ledger().total().as_joules(),
                    off.ledger().total().as_joules()
                ),
                "energy diverged: {} vs {} J",
                on.ledger().total().as_joules(),
                off.ledger().total().as_joules()
            );
        }
    }
}
