//! The XS1 event (select) mechanism: `setv`/`eeu`/`edu`/`clre` + `waiteu`.
//!
//! Events are what make single-threaded multi-channel servers possible on
//! the real hardware — a thread parks in `waiteu` and vectors straight to
//! the handler of whichever armed resource fires first.

use swallow_isa::{Assembler, ControlToken, NodeId, ThreadId, Token};
use swallow_xcore::{Block, Core, CoreConfig, ThreadState, TrapCause};

fn core_with(src: &str) -> Core {
    let mut core = Core::new(CoreConfig::swallow(NodeId(0)));
    core.load_program(&Assembler::new().assemble(src).expect("assembles"))
        .expect("fits");
    core
}

fn run(core: &mut Core, max_cycles: u64) {
    let start = core.cycles();
    while !core.is_quiescent() && core.cycles() - start < max_cycles {
        core.tick(core.next_tick_at());
    }
}

/// A two-channel select server: tokens on chanend 0 print positive,
/// tokens on chanend 1 print negated.
const SELECT_SERVER: &str = "
        getr  r0, chanend
        getr  r1, chanend
        setv  r0, ha
        setv  r1, hb
        eeu   r0
        eeu   r1
        ldc   r5, 4           # serve four messages
    loop:
        waiteu
    ha:
        int   r2, r0
        print r2
        bu    check
    hb:
        int   r2, r1
        neg   r2, r2
        print r2
    check:
        sub   r5, r5, 1
        bt    r5, loop
        freet
";

#[test]
fn select_serves_two_channels_from_one_thread() {
    let mut core = core_with(SELECT_SERVER);
    for _ in 0..100 {
        core.tick(core.next_tick_at());
    }
    // Parked with no traffic.
    assert!(matches!(
        core.thread_state(ThreadId(0)),
        ThreadState::Blocked(Block::Event { .. })
    ));
    // Deliver interleaved traffic to both channels.
    core.deliver(0, Token::Data(5)).expect("space");
    run(&mut core, 2_000);
    core.deliver(1, Token::Data(7)).expect("space");
    run(&mut core, 2_000);
    core.deliver(1, Token::Data(9)).expect("space");
    core.deliver(0, Token::Data(2)).expect("space");
    run(&mut core, 10_000);
    assert!(core.trap().is_none(), "{:?}", core.trap());
    // Both channels were ready at the next waiteu: chanend 0 has the
    // higher priority (resource-id order), so 2 prints before -9.
    assert_eq!(core.output(), "5\n-7\n2\n-9\n");
    assert!(core.is_quiescent());
}

#[test]
fn event_fires_immediately_when_data_is_already_queued() {
    // waiteu must not park if an armed event is already ready.
    let mut core = core_with(SELECT_SERVER);
    for _ in 0..60 {
        core.tick(core.next_tick_at());
    }
    for _ in 0..4 {
        core.deliver(0, Token::Data(1)).expect("space");
    }
    run(&mut core, 10_000);
    assert_eq!(core.output(), "1\n1\n1\n1\n");
}

#[test]
fn timer_events_fire_at_the_threshold() {
    let mut core = core_with(
        "
            getr  r0, timer
            in    r1, r0
            add   r1, r1, 200      # 2 us from now
            setd  r0, r1           # threshold
            setv  r0, tick
            eeu   r0
            waiteu
        tick:
            in    r2, r0
            lsu   r3, r2, r1       # fired early? must be 0
            print r3
            freet
        ",
    );
    run(&mut core, 100_000);
    assert!(core.trap().is_none(), "{:?}", core.trap());
    assert_eq!(core.output(), "0\n");
    // 2 us at 500 MHz = 1000 cycles minimum.
    assert!(core.cycles() >= 1_000, "cycles = {}", core.cycles());
}

#[test]
fn edu_disables_a_channel() {
    let mut core = core_with(
        "
            getr  r0, chanend
            getr  r1, chanend
            setv  r0, ha
            setv  r1, hb
            eeu   r0
            eeu   r1
            edu   r0              # chanend 0 disabled again
            waiteu
        ha:
            int   r2, r0
            print r2
            freet
        hb:
            int   r2, r1
            neg   r2, r2
            print r2
            freet
        ",
    );
    for _ in 0..100 {
        core.tick(core.next_tick_at());
    }
    // Data on the disabled channel does not wake the thread...
    core.deliver(0, Token::Data(3)).expect("space");
    for _ in 0..500 {
        core.tick(core.next_tick_at());
    }
    assert_eq!(core.output(), "");
    // ...but the armed channel does.
    core.deliver(1, Token::Data(4)).expect("space");
    run(&mut core, 5_000);
    assert_eq!(core.output(), "-4\n");
}

#[test]
fn clre_disarms_everything_for_the_thread() {
    let mut core = core_with(
        "
            getr  r0, chanend
            setv  r0, ha
            eeu   r0
            clre
            waiteu               # nothing armed: parks forever
        ha:
            int   r2, r0
            print r2
            freet
        ",
    );
    for _ in 0..100 {
        core.tick(core.next_tick_at());
    }
    core.deliver(0, Token::Data(1)).expect("space");
    for _ in 0..1_000 {
        core.tick(core.next_tick_at());
    }
    assert_eq!(core.output(), "");
    // Parked with no wake time: the core is quiescent.
    assert!(core.is_quiescent());
    assert_eq!(core.next_wake(), None);
}

#[test]
fn eeu_without_setv_traps() {
    let mut core = core_with("getr r0, chanend\n eeu r0\n freet");
    run(&mut core, 1_000);
    assert!(matches!(
        core.trap().expect("trap").cause,
        TrapCause::IllegalOp(_)
    ));
}

#[test]
fn channel_events_outrank_timer_events() {
    // Both a chanend and an expired timer are ready; the chanend handler
    // runs (resource-id priority, chanends first).
    let mut core = core_with(
        "
            getr  r0, chanend
            getr  r1, timer
            in    r2, r1
            setd  r1, r2          # threshold = now: fires immediately
            setv  r0, hc
            setv  r1, ht
            eeu   r0
            eeu   r1
            waiteu
        hc:
            int   r3, r0
            print r3
            freet
        ht:
            ldc   r3, 99
            print r3
            freet
        ",
    );
    // Deliver before the program reaches waiteu (chanend 0 exists from
    // the first issue slot) so both events are ready when it executes.
    for _ in 0..8 {
        core.tick(core.next_tick_at());
    }
    core.deliver(0, Token::Data(8)).expect("space");
    run(&mut core, 5_000);
    assert_eq!(core.output(), "8\n");
}

#[test]
fn events_and_control_tokens_compose() {
    // An event wakes the handler, which consumes a whole packet.
    let mut core = core_with(
        "
            getr  r0, chanend
            setv  r0, h
            eeu   r0
            waiteu
        h:
            in    r1, r0
            chkct r0, end
            print r1
            freet
        ",
    );
    for _ in 0..60 {
        core.tick(core.next_tick_at());
    }
    for t in swallow_isa::token::word_to_tokens(1234) {
        core.deliver(0, t).expect("space");
    }
    core.deliver(0, Token::Ctrl(ControlToken::END))
        .expect("space");
    run(&mut core, 10_000);
    assert!(core.trap().is_none(), "{:?}", core.trap());
    assert_eq!(core.output(), "1234\n");
}
