//! Edge-case semantics: instruction corner values, resource misuse traps,
//! scheduler boundaries. These pin down behaviours the architectural
//! contract implies but ordinary programs rarely exercise.

use swallow_isa::{Assembler, NodeId, ThreadId};
use swallow_xcore::{Core, CoreConfig, ThreadState, TrapCause};

fn run_src(src: &str) -> Core {
    let mut core = Core::new(CoreConfig::swallow(NodeId(0)));
    core.load_program(&Assembler::new().assemble(src).expect("assembles"))
        .expect("fits");
    let mut guard = 0;
    while !core.is_quiescent() && guard < 200_000 {
        core.tick(core.next_tick_at());
        guard += 1;
    }
    core
}

fn output_of(src: &str) -> String {
    let core = run_src(src);
    assert!(core.trap().is_none(), "unexpected trap: {:?}", core.trap());
    core.output().to_owned()
}

#[test]
fn shift_semantics_at_boundaries() {
    // Shifts of >= 32 produce zero (logical), ashr clamps at 31.
    let out = output_of(
        "
            ldc  r0, 1
            ldc  r1, 32
            shl  r2, r0, r1
            print r2
            ldc  r0, -8
            ashr r2, r0, r1
            print r2
            ldc  r0, 0x80
            shr  r2, r0, r1
            print r2
            shl  r2, r0, 31
            print r2
            freet
        ",
    );
    assert_eq!(out, "0\n-1\n0\n0\n");
}

#[test]
fn mkmsk_and_extension_extremes() {
    let out = output_of(
        "
            mkmsk r0, 0
            print r0
            mkmsk r0, 32
            print r0
            ldc   r1, 0xFFFF
            sext  r1, 16
            print r1
            ldc   r1, 0xFF80
            zext  r1, 8
            print r1
            ldc   r1, -1
            zext  r1, 32
            print r1
            freet
        ",
    );
    assert_eq!(out, "0\n-1\n-1\n128\n-1\n");
}

#[test]
fn bit_reversal_instructions() {
    let out = output_of(
        "
            ldc     r0, 0x12345678
            byterev r1, r0
            print   r1
            bitrev  r2, r0
            print   r2
            clz     r3, r0
            print   r3
            ldc     r0, 0
            clz     r3, r0
            print   r3
            freet
        ",
    );
    // byterev: 0x78563412 = 2018915346; bitrev: u32::reverse_bits = 510274632.
    assert_eq!(out, "2018915346\n510274632\n3\n32\n");
}

#[test]
fn signed_division_corners() {
    let out = output_of(
        "
            ldc  r0, 0x80000000   # i32::MIN
            ldc  r1, 1
            divs r2, r0, r1
            print r2
            ldc  r1, -1
            rems r3, r0, r1       # MIN % -1 = 0 (wrapping)
            print r3
            freet
        ",
    );
    assert_eq!(out, "-2147483648\n0\n");
}

#[test]
fn ldaw_negative_indexing() {
    let out = output_of(
        "
            ldc  r0, 0x100
            ldaw r1, r0[-4]       # 0x100 - 16
            print r1
            ldaw r1, r0[4]
            print r1
            freet
        ",
    );
    assert_eq!(out, "240\n272\n");
}

#[test]
fn resource_type_confusion_traps() {
    // `out` on a timer is architecturally meaningless (`setd` on a timer
    // is legal: it sets the event threshold).
    let core = run_src("getr r0, timer\n out r0, r0\n freet");
    assert!(matches!(
        core.trap().expect("trap").cause,
        TrapCause::BadResource { .. }
    ));
    // `msync` on a chanend likewise.
    let core = run_src("getr r0, chanend\n msync r0\n freet");
    assert!(matches!(
        core.trap().expect("trap").cause,
        TrapCause::BadResource { .. }
    ));
    // Releasing a lock the thread does not hold.
    let core = run_src("getr r0, lock\n out r0, r0\n freet");
    assert!(matches!(
        core.trap().expect("trap").cause,
        TrapCause::IllegalOp(_)
    ));
}

#[test]
fn freed_resources_are_gone() {
    let core = run_src(
        "
            getr  r0, chanend
            freer r0
            setd  r0, r0          # operating on a freed chanend traps
            freet
        ",
    );
    assert!(matches!(
        core.trap().expect("trap").cause,
        TrapCause::BadResource { .. }
    ));
    // Double free also traps.
    let core = run_src("getr r0, timer\n freer r0\n freer r0\n freet");
    assert!(matches!(
        core.trap().expect("trap").cause,
        TrapCause::BadResource { .. }
    ));
}

#[test]
fn spawn_exhaustion_returns_invalid_id() {
    // Thread 0 + 7 spawned = 8 threads (the hardware maximum); the 8th
    // spawn attempt must return the invalid id (-1), not trap.
    let core = run_src(
        "
            ldap  r1, parked
            ldc   r2, 8
        sp:
            tspawn r0, r1, r2
            sub   r2, r2, 1
            bt    r2, sp
            print r0
            freet
        parked:
            waiteu
        ",
    );
    assert!(core.trap().is_none(), "{:?}", core.trap());
    assert_eq!(core.output(), "-1\n");
    assert_eq!(core.live_threads(), 7, "7 parked threads remain");
}

#[test]
fn word_instructions_report_exact_cycle_cost() {
    // Time determinism down to the cycle: a straight-line program of N
    // single-slot instructions on one thread takes exactly 4N+slack
    // cycles (one issue per 4 cycles at Nt=1).
    let mut core = Core::new(CoreConfig::swallow(NodeId(0)));
    core.load_program(
        &Assembler::new()
            .assemble("nop\nnop\nnop\nnop\nnop\nnop\nnop\nnop\nnop\nfreet")
            .expect("assembles"),
    )
    .expect("fits");
    while !core.is_quiescent() {
        core.tick(core.next_tick_at());
    }
    assert_eq!(core.instret(), 10);
    // 10 instructions, one per 4 cycles, first at cycle 1: the 10th
    // (freet) retires at cycle 4·9 + 1 = 37 and the core is quiescent.
    assert_eq!(core.cycles(), 37, "cycles = {}", core.cycles());
}

#[test]
fn blocked_receive_thread_frees_its_issue_slots() {
    // One thread blocks on `in`; a busy thread then gets the full f/4
    // single-thread rate, not f/8 (Eq. 2 counts *active* threads).
    let mut core = Core::new(CoreConfig::swallow(NodeId(0)));
    core.load_program(
        &Assembler::new()
            .assemble(
                "
                    getr  r1, chanend
                    ldap  r2, busy
                    tspawn r3, r2, r0
                    in    r4, r1      # blocks forever
                    freet
                busy:
                    add   r1, r1, 1
                    bu    busy
                ",
            )
            .expect("assembles"),
    )
    .expect("fits");
    for _ in 0..200 {
        core.tick(core.next_tick_at());
    }
    assert!(matches!(
        core.thread_state(ThreadId(0)),
        ThreadState::Blocked(_)
    ));
    let before = core.thread_instret(ThreadId(1));
    for _ in 0..4000 {
        core.tick(core.next_tick_at());
    }
    let rate = core.thread_instret(ThreadId(1)) - before;
    assert!(
        (rate as i64 - 1000).abs() <= 2,
        "busy thread retired {rate}/4000 cycles"
    );
}

#[test]
fn sram_is_private_per_core() {
    let mut a = Core::new(CoreConfig::swallow(NodeId(0)));
    let mut b = Core::new(CoreConfig::swallow(NodeId(1)));
    let p = Assembler::new()
        .assemble("ldc r0, 0x300\n ldc r1, 7\n stw r1, r0[0]\n freet")
        .expect("assembles");
    a.load_program(&p).expect("fits");
    b.load_program(&Assembler::new().assemble("freet").expect("assembles"))
        .expect("fits");
    while !a.is_quiescent() {
        a.tick(a.next_tick_at());
    }
    assert_eq!(a.sram().read_u32(0x300), Ok(7));
    assert_eq!(b.sram().read_u32(0x300), Ok(0));
}

#[test]
fn out_to_unconfigured_chanend_traps() {
    let core = run_src("getr r0, chanend\n ldc r1, 5\n out r0, r1\n freet");
    assert!(matches!(
        core.trap().expect("trap").cause,
        TrapCause::NoDest { chanend: 0 }
    ));
}

#[test]
fn program_too_large_is_rejected() {
    let mut core = Core::new(CoreConfig::swallow(NodeId(0)));
    // 64 KiB SRAM = 16384 words; emit more.
    let mut src = String::from("start: nop\n");
    src.push_str(".space 17000\n");
    let program = Assembler::new().assemble(&src).expect("assembles");
    assert!(core.load_program(&program).is_err());
}

#[test]
fn timer_tick_rate_is_100mhz() {
    // 100 ticks = 1 us = 500 cycles at 500 MHz; measure via two reads.
    let out = output_of(
        "
            getr r0, timer
            in   r1, r0
            in   r2, r0
            sub  r3, r2, r1
            print r3              # 2 issue slots apart = 8 cycles = 16 ns -> 1 tick
            freet
        ",
    );
    let dt: i64 = out.trim().parse().expect("number");
    assert!((0..=2).contains(&dt), "dt = {dt}");
}
