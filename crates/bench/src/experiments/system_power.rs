//! §III.A — headline system numbers.
//!
//! The paper reports: ≤193 mW per active core; 3.1 W of core power per
//! slice; ≈4.5 W per slice at the 5 V input; ≈260 mW per core overall;
//! 134 W for the full 480-core machine; and "up to 240 GIPS" (§I). We
//! measure a fully loaded slice directly, extrapolate to 30 slices, and
//! optionally run a real 480-core machine for a short window.

use super::heavy_mix_program;
use std::fmt;
use swallow::{SystemBuilder, TimeDelta};

/// Measured + extrapolated headline numbers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystemPower {
    /// Mean power per core, loaded (mW). Paper: 193 mW.
    pub core_mw: f64,
    /// Slice load power at the shunts (W). Paper: 3.1 W (cores only).
    pub slice_load_w: f64,
    /// Slice power at the 5 V input (W). Paper: ≈4.5 W.
    pub slice_input_w: f64,
    /// Per-core share of slice input power (mW). Paper: ≈260 mW.
    pub core_overall_mw: f64,
    /// Slice throughput (GIPS). 16 cores × 500 MIPS = 8.
    pub slice_gips: f64,
    /// Extrapolated 30-slice (480-core) machine input power (W). Paper: 134 W.
    pub machine_480_w: f64,
    /// Extrapolated 480-core throughput (GIPS). Paper: up to 240.
    pub machine_480_gips: f64,
}

/// Measures one fully loaded slice for `span` and extrapolates.
pub fn run(span: TimeDelta) -> SystemPower {
    let mut system = SystemBuilder::new().build().expect("one slice");
    let program = heavy_mix_program(4);
    system.load_program_all(&program).expect("fits");
    system.run_for(span);

    let perf = system.perf_report();
    let monitor = system.machine().monitor();
    let slice_load_w = monitor.slice_load_power(0).as_watts();
    let slice_input_w = monitor.slice_input_power(0).as_watts();
    // Core power from the ledgers (the four 1 V rails without support).
    let core_mw = (0..16)
        .map(|n| {
            system
                .machine()
                .core(swallow::NodeId(n))
                .ledger()
                .total()
                .over(system.elapsed())
                .as_milliwatts()
        })
        .sum::<f64>()
        / 16.0;
    SystemPower {
        core_mw,
        slice_load_w,
        slice_input_w,
        core_overall_mw: slice_input_w * 1000.0 / 16.0,
        slice_gips: perf.gips(),
        machine_480_w: slice_input_w * 30.0,
        machine_480_gips: perf.gips() * 30.0,
    }
}

/// Runs a real 480-core (6×5 slice) machine, fully loaded, for a short
/// window and reports (GIPS, input power W). Expensive: use release
/// builds.
pub fn run_480(span: TimeDelta) -> (f64, f64) {
    let mut system = SystemBuilder::new()
        .slices(6, 5)
        .monitor_window(TimeDelta::from_ns(200))
        .build()
        .expect("480 cores");
    assert_eq!(system.core_count(), 480);
    let program = heavy_mix_program(4);
    system.load_program_all(&program).expect("fits");
    system.run_for(span);
    let perf = system.perf_report();
    let power = system.machine().monitor().machine_input_power().as_watts();
    (perf.gips(), power)
}

impl fmt::Display for SystemPower {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "§III.A — headline system numbers (fully loaded):")?;
        writeln!(f, "{:<44} {:>10} {:>10}", "Quantity", "measured", "paper")?;
        let rows = [
            ("power per active core (mW)", self.core_mw, 193.0),
            ("slice load power (W)", self.slice_load_w, 3.1),
            ("slice input power (W)", self.slice_input_w, 4.5),
            (
                "per-core share incl. losses (mW)",
                self.core_overall_mw,
                260.0,
            ),
            ("slice throughput (GIPS)", self.slice_gips, 8.0),
            ("480-core machine power (W)", self.machine_480_w, 134.0),
            ("480-core throughput (GIPS)", self.machine_480_gips, 240.0),
        ];
        for (label, measured, paper) in rows {
            writeln!(f, "{label:<44} {measured:>10.2} {paper:>10.2}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_numbers_land_near_the_paper() {
        let s = run(TimeDelta::from_us(20));
        assert!((s.core_mw - 196.0).abs() < 8.0, "core = {} mW", s.core_mw);
        assert!(
            (s.slice_load_w - 3.4).abs() < 0.4,
            "load = {} W",
            s.slice_load_w
        );
        assert!(
            (4.0..5.2).contains(&s.slice_input_w),
            "input = {} W",
            s.slice_input_w
        );
        assert!(
            (230.0..320.0).contains(&s.core_overall_mw),
            "overall = {} mW/core",
            s.core_overall_mw
        );
        assert!((s.slice_gips - 8.0).abs() < 0.2, "gips = {}", s.slice_gips);
        assert!(
            (120.0..155.0).contains(&s.machine_480_w),
            "480-core = {} W",
            s.machine_480_w
        );
        assert!(
            (s.machine_480_gips - 240.0).abs() < 6.0,
            "480-core = {} GIPS",
            s.machine_480_gips
        );
    }
}
