//! Table I — per-bit energies of Swallow links.
//!
//! For each wire class, a stream crosses exactly one link of that class on
//! a real machine; the fabric's per-link counters give the measured energy
//! per payload bit (protocol headers amortised in) and the busy-time
//! utilisation gives the achieved link power.

use std::fmt;
use swallow::energy::WireClass;
use swallow::noc::routing::Layer;
use swallow::{NodeId, SystemBuilder, TimeDelta};
use swallow_workloads::traffic::{self, StreamSpec};

/// One Table I row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table1Row {
    /// Wire class.
    pub class: WireClass,
    /// Configured data rate (bit/s).
    pub rate_bps: u64,
    /// Paper's energy per bit (pJ).
    pub paper_pj_per_bit: f64,
    /// Measured energy per payload bit (pJ), protocol included.
    pub measured_pj_per_bit: f64,
    /// Measured link power while busy (mW).
    pub measured_power_mw: f64,
    /// Paper's max link power (mW).
    pub paper_power_mw: f64,
}

/// The whole table.
#[derive(Clone, Debug, PartialEq)]
pub struct Table1 {
    /// One row per wire class.
    pub rows: Vec<Table1Row>,
}

/// Paper values: (class, pJ/bit, max power mW).
const PAPER: [(WireClass, f64, f64); 4] = [
    (WireClass::OnChip, 5.6, 1.4),
    (WireClass::BoardVertical, 212.8, 13.3),
    (WireClass::BoardHorizontal, 201.6, 12.6),
    (WireClass::OffBoardFfc, 10_880.0, 680.0),
];

fn endpoints_for(class: WireClass) -> (swallow::GridSpec, NodeId, NodeId) {
    let one = swallow::GridSpec::ONE_SLICE;
    match class {
        // Core 0 <-> core 1 share a package: internal links.
        WireClass::OnChip => (
            one,
            one.node_at(0, 0, Layer::Vertical),
            one.node_at(0, 0, Layer::Horizontal),
        ),
        // Vertically adjacent packages: a board trace.
        WireClass::BoardVertical => (
            one,
            one.node_at(0, 0, Layer::Vertical),
            one.node_at(0, 1, Layer::Vertical),
        ),
        // Horizontally adjacent packages.
        WireClass::BoardHorizontal => (
            one,
            one.node_at(0, 0, Layer::Horizontal),
            one.node_at(1, 0, Layer::Horizontal),
        ),
        // Crossing a slice boundary in a 2×1 grid.
        WireClass::OffBoardFfc => {
            let grid = swallow::GridSpec {
                slices_x: 2,
                slices_y: 1,
            };
            (
                grid,
                grid.node_at(3, 0, Layer::Horizontal),
                grid.node_at(4, 0, Layer::Horizontal),
            )
        }
    }
}

/// Streams `words` 32-bit words over one link of each class and reads the
/// energy counters.
pub fn run(words: u32) -> Table1 {
    let mut rows = Vec::new();
    for (class, paper_pj, paper_mw) in PAPER {
        let (grid, src, dst) = endpoints_for(class);
        let mut system = SystemBuilder::new()
            .slices(grid.slices_x, grid.slices_y)
            .build()
            .expect("valid grid");
        traffic::stream(&StreamSpec {
            src,
            dst,
            words,
            packet_words: 32,
        })
        .expect("generates")
        .apply(&mut system)
        .expect("loads");
        let done = system.run_until_quiescent(TimeDelta::from_ms(200));
        assert!(done, "stream did not drain for {}", class.name());
        let stats = system
            .machine()
            .fabric()
            .link_stats()
            .filter(|s| s.from == src && s.to == dst)
            .max_by_key(|s| s.data_tokens)
            .expect("link exists");
        let measured_pj = stats.energy_per_payload_bit().as_picojoules();
        // Power while transmitting: energy over busy time.
        let measured_mw = if stats.busy_time.is_zero() {
            0.0
        } else {
            stats.energy.over(stats.busy_time).as_milliwatts()
        };
        rows.push(Table1Row {
            class,
            rate_bps: class.data_rate().as_hz(),
            paper_pj_per_bit: paper_pj,
            measured_pj_per_bit: measured_pj,
            measured_power_mw: measured_mw,
            paper_power_mw: paper_mw,
        });
    }
    Table1 { rows }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table I — per-bit energies of Swallow links:")?;
        writeln!(
            f,
            "{:<22} {:>12} {:>14} {:>14} {:>12} {:>12}",
            "Link type", "rate", "pJ/bit meas", "pJ/bit paper", "mW meas", "mW paper"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<22} {:>7.1} Mbps {:>14.1} {:>14.1} {:>12.1} {:>12.1}",
                r.class.name(),
                r.rate_bps as f64 / 1e6,
                r.measured_pj_per_bit,
                r.paper_pj_per_bit,
                r.measured_power_mw,
                r.paper_power_mw
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_energies_track_table_i() {
        let table = run(256);
        for r in &table.rows {
            // Protocol overhead (3-token header + END per 32-word packet)
            // adds ≈3%; stay within 5% of the paper value.
            let rel = (r.measured_pj_per_bit - r.paper_pj_per_bit) / r.paper_pj_per_bit;
            assert!(
                (0.0..0.05).contains(&rel),
                "{}: measured {} vs paper {}",
                r.class.name(),
                r.measured_pj_per_bit,
                r.paper_pj_per_bit
            );
            let rel = (r.measured_power_mw - r.paper_power_mw).abs() / r.paper_power_mw;
            assert!(rel < 0.05, "{}: {} mW", r.class.name(), r.measured_power_mw);
        }
    }

    #[test]
    fn ffc_is_about_50x_board() {
        let table = run(128);
        let by = |c: WireClass| {
            table
                .rows
                .iter()
                .find(|r| r.class == c)
                .expect("row")
                .measured_pj_per_bit
        };
        let factor = by(WireClass::OffBoardFfc) / by(WireClass::BoardVertical);
        assert!((45.0..=55.0).contains(&factor), "factor = {factor}");
    }
}
