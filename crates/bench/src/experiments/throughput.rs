//! Simulator throughput: host-side cost of the execution engines.
//!
//! Not a paper artefact — this measures the simulator itself. Three
//! scenarios bracket the workload spectrum:
//!
//! * **busy slice** — 16 cores all running the calibrated heavy mix; the
//!   fast-forward engine finds activity at every tick and must degrade
//!   to lock-step speed (the acceptance bound is ≤5 % regression), while
//!   the parallel engine shards the compute-bound cores across host
//!   threads and scales with the host's core count.
//! * **idle 480** — a full 6×5-slice machine with nothing loaded; every
//!   core tick is provably idle, so fast-forward jumps monitor window to
//!   monitor window and charges the energy analytically (the parallel
//!   engine detects the idle machine and takes the same path).
//! * **10 % active 480** — 48 of 480 cores run the heavy mix; the busy
//!   cores bound each jump to one base period, but the idle 90 % of the
//!   machine is still skipped analytically inside each step.
//!
//! Reported per engine (and per thread count for the parallel engine):
//! host wall-clock, simulated core-cycles per host second, and simulated
//! MIPS (retired instructions per host second). The busy-slice scenario
//! is additionally measured with the predecoded-instruction cache off
//! (`busy-slice-nocache`) to quantify what decode-once execution buys.
//! [`Throughput::write_json`] emits the rows as `BENCH_throughput.json`
//! for CI trend tracking.

use std::fmt;
use std::time::Instant;
use swallow::{EngineMode, NodeId, SystemBuilder, TimeDelta};

use super::heavy_mix_program;

/// Thread counts the default sweep measures the parallel engine at.
pub const DEFAULT_THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One scenario × engine measurement.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// Which engine ran it.
    pub engine: EngineMode,
    /// Epoch-synchronisation strategy the run used: `"negotiated"` or
    /// `"global"` for the parallel engine, `"-"` for the serial engines.
    /// Recorded so a JSON row is interpretable without knowing the
    /// producing build's `SWALLOW_EPOCH_MODE`.
    pub epoch_mode: &'static str,
    /// Whether the predecoded-instruction cache was on.
    pub decode_cache: bool,
    /// Host wall-clock for the run (milliseconds).
    pub host_ms: f64,
    /// Simulated core-cycles advanced per host second (all cores).
    pub sim_cycles_per_sec: f64,
    /// Simulated MIPS: retired instructions per host second / 1e6.
    pub mips: f64,
}

impl ThroughputRow {
    /// Stable engine name for tables and JSON.
    pub fn engine_name(&self) -> &'static str {
        match self.engine {
            EngineMode::LockStep => "lockstep",
            EngineMode::FastForward => "fastforward",
            EngineMode::Parallel { .. } => "parallel",
        }
    }

    /// Host worker threads (0 for the serial engines).
    pub fn threads(&self) -> usize {
        match self.engine {
            EngineMode::Parallel { threads } => threads,
            _ => 0,
        }
    }
}

/// The whole experiment: each scenario under every engine.
#[derive(Clone, Debug)]
pub struct Throughput {
    /// Rows in (scenario, engine) order, lock-step first.
    pub rows: Vec<ThroughputRow>,
}

impl Throughput {
    fn find(&self, scenario: &str, engine: EngineMode) -> Option<&ThroughputRow> {
        self.rows
            .iter()
            .find(|r| r.scenario == scenario && r.engine == engine)
    }

    /// Fast-forward speedup over lock-step (host time ratio).
    pub fn speedup(&self, scenario: &str) -> Option<f64> {
        let ls = self.find(scenario, EngineMode::LockStep)?;
        let ff = self.find(scenario, EngineMode::FastForward)?;
        Some(ls.host_ms / ff.host_ms)
    }

    /// Parallel speedup over fast-forward (host time ratio) at one
    /// thread count.
    pub fn parallel_speedup(&self, scenario: &str, threads: usize) -> Option<f64> {
        let ff = self.find(scenario, EngineMode::FastForward)?;
        let par = self.find(scenario, EngineMode::Parallel { threads })?;
        Some(ff.host_ms / par.host_ms)
    }

    /// Serialises the rows as the `BENCH_throughput.json` schema:
    /// `{"experiment": "throughput", "host_parallelism": N, "rows":
    /// [{scenario, engine, threads, epoch_mode, decode_cache, host_ms,
    /// sim_cycles_per_sec, mips}, ...]}`. `host_parallelism` is the
    /// producing host's `std::thread::available_parallelism` — without it
    /// a flat thread-scaling curve is indistinguishable from a scaling
    /// regression. Hand-rolled — the workspace builds offline with no
    /// serde dependency.
    pub fn to_json(&self) -> String {
        let host = host_parallelism();
        let mut out = format!(
            "{{\n  \"experiment\": \"throughput\",\n  \"host_parallelism\": {host},\n  \"rows\": [\n"
        );
        for (i, r) in self.rows.iter().enumerate() {
            let sep = if i + 1 < self.rows.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"engine\": \"{}\", \"threads\": {}, \
                 \"epoch_mode\": \"{}\", \"decode_cache\": {}, \"host_ms\": {:.6}, \
                 \"sim_cycles_per_sec\": {:.3}, \"mips\": {:.6}}}{sep}\n",
                r.scenario,
                r.engine_name(),
                r.threads(),
                r.epoch_mode,
                r.decode_cache,
                r.host_ms,
                r.sim_cycles_per_sec,
                r.mips,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`Self::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Simulator throughput (host-side, every engine; host parallelism {}):",
            host_parallelism()
        )?;
        writeln!(
            f,
            "  {:<16} {:<12} {:>8} {:>11} {:>6} {:>10} {:>16} {:>10}",
            "scenario", "engine", "threads", "sync", "cache", "host ms", "sim cycles/s", "sim MIPS"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<16} {:<12} {:>8} {:>11} {:>6} {:>10.2} {:>16.3e} {:>10.1}",
                r.scenario,
                r.engine_name(),
                r.threads(),
                r.epoch_mode,
                if r.decode_cache { "on" } else { "off" },
                r.host_ms,
                r.sim_cycles_per_sec,
                r.mips
            )?;
        }
        for scenario in ["busy-slice", "idle-480", "active10-480"] {
            if let Some(s) = self.speedup(scenario) {
                writeln!(f, "  fast-forward speedup, {scenario}: {s:.1}x")?;
            }
            for threads in DEFAULT_THREAD_COUNTS {
                if let Some(s) = self.parallel_speedup(scenario, threads) {
                    writeln!(
                        f,
                        "  parallel({threads}) vs fast-forward, {scenario}: {s:.1}x"
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// Host CPUs available to the pool (1 when the query fails).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builds a scenario machine: `slices` grid with every `stride`-th core
/// (0 = none) running the calibrated heavy mix.
fn build(
    engine: EngineMode,
    slices: (u16, u16),
    stride: usize,
    decode_cache: bool,
) -> swallow::SwallowSystem {
    let mut system = SystemBuilder::new()
        .slices(slices.0, slices.1)
        .engine(engine)
        .decode_cache(decode_cache)
        .build()
        .expect("builds");
    if stride > 0 {
        let program = heavy_mix_program(4);
        let nodes: Vec<NodeId> = system.nodes().step_by(stride).collect();
        for node in nodes {
            system.load_program(node, &program).expect("fits");
        }
    }
    system
}

/// Runs one scenario under one engine for `span` of simulated time,
/// with the predecoded cache at the process-wide default
/// (`SWALLOW_DECODE_CACHE` — the CI smoke leg compares on vs off
/// through this knob).
pub fn measure(
    scenario: &'static str,
    engine: EngineMode,
    slices: (u16, u16),
    stride: usize,
    span: TimeDelta,
) -> ThroughputRow {
    let cache = swallow::xcore::decode_cache_default();
    measure_with_cache(scenario, engine, slices, stride, span, cache)
}

/// [`measure`] with an explicit predecoded-cache setting (the cache-off
/// rows quantify what decode-once buys).
pub fn measure_with_cache(
    scenario: &'static str,
    engine: EngineMode,
    slices: (u16, u16),
    stride: usize,
    span: TimeDelta,
    decode_cache: bool,
) -> ThroughputRow {
    let mut system = build(engine, slices, stride, decode_cache);
    let t0 = Instant::now();
    system.run_for(span);
    let host = t0.elapsed().as_secs_f64().max(1e-9);
    let machine = system.machine();
    let cycles: u64 = machine.nodes().map(|n| machine.core(n).cycles()).sum();
    let epoch_mode = match engine {
        EngineMode::Parallel { .. } => match machine.epoch_mode() {
            swallow::EpochMode::Negotiated => "negotiated",
            swallow::EpochMode::Global => "global",
        },
        _ => "-",
    };
    ThroughputRow {
        scenario,
        engine,
        epoch_mode,
        decode_cache,
        host_ms: host * 1e3,
        sim_cycles_per_sec: cycles as f64 / host,
        mips: machine.total_instret() as f64 / host / 1e6,
    }
}

/// Runs all three scenarios under every engine, sweeping the parallel
/// engine over `thread_counts`.
///
/// `span` is the simulated time per busy run; the idle 480-core scenario
/// runs the same span (its lock-step cost dominates the experiment).
pub fn run_with(span: TimeDelta, thread_counts: &[usize]) -> Throughput {
    let mut rows = Vec::new();
    for (scenario, slices, stride) in [
        ("busy-slice", (1u16, 1u16), 1usize),
        ("idle-480", (6, 5), 0),
        ("active10-480", (6, 5), 10),
    ] {
        for engine in [EngineMode::LockStep, EngineMode::FastForward] {
            rows.push(measure(scenario, engine, slices, stride, span));
        }
        for &threads in thread_counts {
            let engine = EngineMode::Parallel { threads };
            rows.push(measure(scenario, engine, slices, stride, span));
        }
    }
    // Cache-off reference rows on the decode-bound scenario: the
    // busy-slice delta quantifies what the predecoded-instruction cache
    // buys (results are bit-identical either way; see the differential
    // suites).
    for engine in [EngineMode::LockStep, EngineMode::FastForward] {
        rows.push(measure_with_cache(
            "busy-slice-nocache",
            engine,
            (1, 1),
            1,
            span,
            false,
        ));
    }
    Throughput { rows }
}

/// [`run_with`] over [`DEFAULT_THREAD_COUNTS`].
pub fn run(span: TimeDelta) -> Throughput {
    run_with(span, &DEFAULT_THREAD_COUNTS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_speedups_are_well_formed() {
        let t = run_with(TimeDelta::from_us(2), &[2]);
        assert_eq!(t.rows.len(), 11);
        for r in &t.rows {
            assert!(r.host_ms > 0.0);
            assert!(r.sim_cycles_per_sec > 0.0, "{r:?}");
        }
        assert!(t.speedup("idle-480").expect("measured") > 0.0);
        assert!(t.parallel_speedup("busy-slice", 2).expect("measured") > 0.0);
        assert!(t
            .rows
            .iter()
            .any(|r| r.scenario == "busy-slice-nocache" && !r.decode_cache));
        let rendered = t.to_string();
        assert!(rendered.contains("busy-slice"));
        assert!(rendered.contains("speedup"));
        assert!(rendered.contains("parallel(2)"));
    }

    /// Guards the busy-slice inversion fixed in this PR: fast-forward
    /// must not regress materially below lock-step on a machine where
    /// every tick has activity (the dense-mode hint makes its advance
    /// identical to a lock-step edge). Min-of-3 on both sides and a
    /// lenient 1.3x bound keep this stable on noisy CI hosts.
    #[test]
    fn fastforward_keeps_up_with_lockstep_when_busy() {
        let span = TimeDelta::from_us(4);
        let best = |engine: EngineMode| {
            (0..3)
                .map(|_| measure("busy-slice", engine, (1, 1), 1, span).host_ms)
                .fold(f64::INFINITY, f64::min)
        };
        let ls = best(EngineMode::LockStep);
        let ff = best(EngineMode::FastForward);
        assert!(
            ff <= ls * 1.3,
            "fast-forward ({ff:.2} ms) regressed past lock-step ({ls:.2} ms) on a busy machine"
        );
    }

    /// Guards the tentpole of the negotiated-window PR: on a busy slice
    /// the parallel engine at 4 threads must not be slower than at 1
    /// (monotone thread scaling — the minimum the lock-free negotiation
    /// guarantees). Min-of-3 MIPS on both sides absorbs host noise; a
    /// host without 4 CPUs cannot exercise real parallelism, so the test
    /// logs and skips there rather than measuring scheduler jitter.
    #[test]
    fn parallel_four_threads_keeps_up_with_one_when_busy() {
        if host_parallelism() < 4 {
            eprintln!(
                "skipping parallel-scaling regression: host has {} CPUs (< 4)",
                host_parallelism()
            );
            return;
        }
        let span = TimeDelta::from_us(4);
        let best = |threads: usize| {
            (0..3)
                .map(|_| {
                    measure(
                        "busy-slice",
                        EngineMode::Parallel { threads },
                        (1, 1),
                        1,
                        span,
                    )
                    .mips
                })
                .fold(0.0f64, f64::max)
        };
        let one = best(1);
        let four = best(4);
        assert!(
            four >= one,
            "parallel/4 ({four:.1} MIPS) regressed below parallel/1 ({one:.1} MIPS) on a busy slice"
        );
    }

    #[test]
    fn json_has_every_row_and_field() {
        let t = run_with(TimeDelta::from_us(1), &[2]);
        let json = t.to_json();
        assert_eq!(json.matches("\"scenario\"").count(), t.rows.len());
        // Parallel rows carry the process-default sync strategy (the CI
        // global-mode leg flips it via SWALLOW_EPOCH_MODE).
        let par_mode = match swallow::board::epoch_mode_default() {
            swallow::EpochMode::Negotiated => "\"epoch_mode\": \"negotiated\"",
            swallow::EpochMode::Global => "\"epoch_mode\": \"global\"",
        };
        for field in [
            "\"experiment\": \"throughput\"",
            "\"host_parallelism\":",
            "\"engine\": \"lockstep\"",
            "\"engine\": \"fastforward\"",
            "\"engine\": \"parallel\"",
            "\"threads\": 2",
            par_mode,
            "\"epoch_mode\": \"-\"",
            "\"host_ms\":",
            "\"sim_cycles_per_sec\":",
            "\"mips\":",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        // Trailing-comma-free: the last row closes straight into the array.
        assert!(json.contains("}\n  ]\n}\n"));
    }
}
