//! Simulator throughput: host-side cost of the two execution engines.
//!
//! Not a paper artefact — this measures the simulator itself. Three
//! scenarios bracket the workload spectrum:
//!
//! * **busy slice** — 16 cores all running the calibrated heavy mix; the
//!   fast-forward engine finds activity at every tick and must degrade
//!   to lock-step speed (the acceptance bound is ≤5 % regression).
//! * **idle 480** — a full 6×5-slice machine with nothing loaded; every
//!   core tick is provably idle, so fast-forward jumps monitor window to
//!   monitor window and charges the energy analytically.
//! * **10 % active 480** — 48 of 480 cores run the heavy mix; the busy
//!   cores bound each jump to one base period, but the idle 90 % of the
//!   machine is still skipped analytically inside each step.
//!
//! Reported per engine: host wall-clock, simulated core-cycles per host
//! second, and simulated MIPS (retired instructions per host second).

use std::fmt;
use std::time::Instant;
use swallow::{EngineMode, NodeId, SystemBuilder, TimeDelta};

use super::heavy_mix_program;

/// One scenario × engine measurement.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// Which engine ran it.
    pub engine: EngineMode,
    /// Host wall-clock for the run (milliseconds).
    pub host_ms: f64,
    /// Simulated core-cycles advanced per host second (all cores).
    pub sim_cycles_per_sec: f64,
    /// Simulated MIPS: retired instructions per host second / 1e6.
    pub mips: f64,
}

/// The whole experiment: each scenario under both engines.
#[derive(Clone, Debug)]
pub struct Throughput {
    /// Rows in (scenario, engine) order, lock-step first.
    pub rows: Vec<ThroughputRow>,
}

impl Throughput {
    /// Fast-forward speedup (host time ratio) for one scenario.
    pub fn speedup(&self, scenario: &str) -> Option<f64> {
        let of = |engine: EngineMode| {
            self.rows
                .iter()
                .find(|r| r.scenario == scenario && r.engine == engine)
        };
        let ls = of(EngineMode::LockStep)?;
        let ff = of(EngineMode::FastForward)?;
        Some(ls.host_ms / ff.host_ms)
    }
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Simulator throughput (host-side, both engines):")?;
        writeln!(
            f,
            "  {:<16} {:<12} {:>10} {:>16} {:>10}",
            "scenario", "engine", "host ms", "sim cycles/s", "sim MIPS"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<16} {:<12} {:>10.2} {:>16.3e} {:>10.1}",
                r.scenario,
                format!("{:?}", r.engine),
                r.host_ms,
                r.sim_cycles_per_sec,
                r.mips
            )?;
        }
        for scenario in ["busy-slice", "idle-480", "active10-480"] {
            if let Some(s) = self.speedup(scenario) {
                writeln!(f, "  fast-forward speedup, {scenario}: {s:.1}x")?;
            }
        }
        Ok(())
    }
}

/// Builds a scenario machine: `slices` grid with every `stride`-th core
/// (0 = none) running the calibrated heavy mix.
fn build(engine: EngineMode, slices: (u16, u16), stride: usize) -> swallow::SwallowSystem {
    let mut system = SystemBuilder::new()
        .slices(slices.0, slices.1)
        .engine(engine)
        .build()
        .expect("builds");
    if stride > 0 {
        let program = heavy_mix_program(4);
        let nodes: Vec<NodeId> = system.nodes().step_by(stride).collect();
        for node in nodes {
            system.load_program(node, &program).expect("fits");
        }
    }
    system
}

/// Runs one scenario under one engine for `span` of simulated time.
pub fn measure(
    scenario: &'static str,
    engine: EngineMode,
    slices: (u16, u16),
    stride: usize,
    span: TimeDelta,
) -> ThroughputRow {
    let mut system = build(engine, slices, stride);
    let t0 = Instant::now();
    system.run_for(span);
    let host = t0.elapsed().as_secs_f64().max(1e-9);
    let machine = system.machine();
    let cycles: u64 = machine.nodes().map(|n| machine.core(n).cycles()).sum();
    ThroughputRow {
        scenario,
        engine,
        host_ms: host * 1e3,
        sim_cycles_per_sec: cycles as f64 / host,
        mips: machine.total_instret() as f64 / host / 1e6,
    }
}

/// Runs all three scenarios under both engines.
///
/// `span` is the simulated time per busy run; the idle 480-core scenario
/// runs the same span (its lock-step cost dominates the experiment).
pub fn run(span: TimeDelta) -> Throughput {
    let mut rows = Vec::new();
    for (scenario, slices, stride) in [
        ("busy-slice", (1u16, 1u16), 1usize),
        ("idle-480", (6, 5), 0),
        ("active10-480", (6, 5), 10),
    ] {
        for engine in [EngineMode::LockStep, EngineMode::FastForward] {
            rows.push(measure(scenario, engine, slices, stride, span));
        }
    }
    Throughput { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_speedups_are_well_formed() {
        let t = run(TimeDelta::from_us(2));
        assert_eq!(t.rows.len(), 6);
        for r in &t.rows {
            assert!(r.host_ms > 0.0);
            assert!(r.sim_cycles_per_sec > 0.0, "{r:?}");
        }
        assert!(t.speedup("idle-480").expect("measured") > 0.0);
        let rendered = t.to_string();
        assert!(rendered.contains("busy-slice"));
        assert!(rendered.contains("speedup"));
    }
}
