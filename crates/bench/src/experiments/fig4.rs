//! Fig. 4 — impact of voltage and frequency scaling (one core, loaded).
//!
//! The shipped boards are fixed at 1 V; the paper measures the minimum
//! stable voltage at 71 MHz (0.60 V) and 500 MHz (0.95 V) and applies
//! `P = C·V²·f`. We do the same — and additionally *verify* the scaling
//! by running the simulated core with its power model re-biased to the
//! DVFS voltage.

use super::heavy_mix_program;
use std::fmt;
use swallow::energy::{CorePowerModel, DvfsTable};
use swallow::isa::NodeId;
use swallow::xcore::{Core, CoreConfig};
use swallow::Frequency;

/// One sweep point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig4Row {
    /// Clock in MHz.
    pub mhz: u64,
    /// Power at the fixed 1 V supply (mW, Eq. 1).
    pub p_1v_mw: f64,
    /// Minimum stable voltage at this clock (V).
    pub volts: f64,
    /// Power after voltage scaling (mW).
    pub p_dvfs_mw: f64,
    /// Simulated verification at the DVFS voltage (mW).
    pub simulated_mw: f64,
}

/// The whole figure.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig4 {
    /// Sweep rows.
    pub rows: Vec<Fig4Row>,
}

fn simulate_at(f: Frequency, model: CorePowerModel, cycles: u64) -> f64 {
    let mut config = CoreConfig::swallow(NodeId(0));
    config.frequency = f;
    config.power = model;
    let mut core = Core::new(config);
    core.load_program(&heavy_mix_program(4)).expect("fits");
    for _ in 0..1_000 {
        core.tick(core.next_tick_at());
    }
    let e0 = core.ledger().total();
    let t0 = core.next_tick_at();
    for _ in 0..cycles {
        core.tick(core.next_tick_at());
    }
    let span = core.next_tick_at().since(t0);
    (core.ledger().total() - e0).over(span).as_milliwatts()
}

/// Runs the sweep over the Fig. 3 frequencies.
pub fn run(cycles: u64) -> Fig4 {
    let table = DvfsTable::swallow();
    let nominal = CorePowerModel::swallow();
    let rows = super::fig3::SWEEP_MHZ
        .iter()
        .map(|&mhz| {
            let f = Frequency::from_mhz(mhz);
            let p_1v = nominal.eq1_power(f);
            let volts = table.voltage_at(f);
            let p_dvfs = table.scale_power(p_1v, f);
            let simulated = simulate_at(f, nominal.at_voltage(volts), cycles);
            Fig4Row {
                mhz,
                p_1v_mw: p_1v.as_milliwatts(),
                volts: volts.as_volts(),
                p_dvfs_mw: p_dvfs.as_milliwatts(),
                simulated_mw: simulated,
            }
        })
        .collect();
    Fig4 { rows }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 4 — DVFS impact (one core, four active threads):")?;
        writeln!(
            f,
            "{:>7} {:>12} {:>7} {:>14} {:>14} {:>9}",
            "f (MHz)", "P@1V (mW)", "V(f)", "P@DVFS (mW)", "simulated", "saving"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>7} {:>12.1} {:>6.2}V {:>14.1} {:>14.1} {:>8.0}%",
                r.mhz,
                r.p_1v_mw,
                r.volts,
                r.p_dvfs_mw,
                r.simulated_mw,
                (1.0 - r.p_dvfs_mw / r.p_1v_mw) * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dvfs_saves_64_percent_at_71mhz() {
        let fig = run(4_000);
        let r71 = fig.rows.first().expect("71 MHz row");
        // 0.6 V -> V² = 0.36 of the 1 V power.
        assert!((r71.p_dvfs_mw / r71.p_1v_mw - 0.36).abs() < 1e-6);
        // ~24 mW at 71 MHz (Fig. 4's lower curve starts near 20-25 mW).
        assert!((r71.p_dvfs_mw - 24.2).abs() < 1.0, "{}", r71.p_dvfs_mw);
    }

    #[test]
    fn simulation_confirms_quadratic_scaling() {
        let fig = run(6_000);
        for r in &fig.rows {
            assert!(
                (r.simulated_mw - r.p_dvfs_mw).abs() / r.p_dvfs_mw < 0.03,
                "{r:?}"
            );
            assert!(r.p_dvfs_mw < r.p_1v_mw);
        }
    }

    #[test]
    fn savings_shrink_with_frequency() {
        let fig = run(2_000);
        let saving = |r: &Fig4Row| 1.0 - r.p_dvfs_mw / r.p_1v_mw;
        let first = saving(fig.rows.first().expect("first"));
        let last = saving(fig.rows.last().expect("last"));
        assert!(first > last, "{first} vs {last}");
        // 500 MHz saving is 1 - 0.95² ≈ 9.75 %.
        assert!((last - 0.0975).abs() < 0.01);
    }
}
