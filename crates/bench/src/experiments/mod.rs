//! The experiment implementations, one module per paper artefact.

pub mod ablation;
pub mod ec_ratio;
pub mod eq2;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fleet;
pub mod latency;
pub mod overhead;
pub mod proportionality;
pub mod resilience;
pub mod system_power;
pub mod table1;
pub mod throughput;

use swallow::{Assembler, Program};

/// Issue slots per iteration of the calibrated heavy-mix loop.
pub const HEAVY_MIX_SLOTS: u32 = 20;

/// A program whose steady-state instruction mix matches the power model's
/// calibrated heavy load (`swallow_energy::core_power::HEAVY_MIX`): per 20
/// issue slots — 9 ALU, 5 memory, 1 multiply, 2 communication (timer
/// reads) and 3 branches. `threads` hardware threads run it (1–8); with
/// four or more, the core sits exactly on the paper's Eq. 1 line.
pub fn heavy_mix_program(threads: usize) -> Program {
    assert!((1..=8).contains(&threads), "threads must be 1..=8");
    let spawners = threads - 1;
    let src = format!(
        "
            ldc   r5, {spawners}
            ldap  r6, worker
        spawn:
            bf    r5, mstart
            tspawn r7, r6, r5
            sub   r5, r5, 1
            bu    spawn
        mstart:
            ldc   r0, 0
        worker:                  # r0 = thread index
            getr  r11, timer
            shl   r10, r0, 6
            ldc   r9, 0x1000
            add   r10, r10, r9
            ldc   r0, 0
        mix:
            add   r1, r1, 1
            add   r2, r2, r1
            xor   r3, r3, r1
            shl   r4, r1, 3
            and   r5, r3, r4
            or    r6, r5, r2
            sub   r7, r6, r1
            add   r8, r8, r7
            add   r2, r2, 1
            ldw   r9, r10[0]
            stw   r9, r10[1]
            ldw   r9, r10[2]
            stw   r9, r10[3]
            ld8u  r9, r10[0]
            mul   r9, r1, r2
            in    r9, r11
            in    r9, r11
            bt    r0, mix
            bt    r0, mix
            bu    mix
        "
    );
    Assembler::new()
        .assemble(&src)
        .expect("heavy mix assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow::isa::NodeId;
    use swallow::xcore::{Core, CoreConfig};

    #[test]
    fn heavy_mix_hits_eq1_power() {
        let mut core = Core::new(CoreConfig::swallow(NodeId(0)));
        core.load_program(&heavy_mix_program(4)).expect("fits");
        // Warm up, then measure.
        for _ in 0..2_000 {
            core.tick(core.next_tick_at());
        }
        let e0 = core.ledger().total();
        let cycles = 40_000u64;
        for _ in 0..cycles {
            core.tick(core.next_tick_at());
        }
        let span = swallow::TimeDelta::from_ps(cycles * 2_000);
        let power = (core.ledger().total() - e0).over(span).as_milliwatts();
        // Eq. 1 at 500 MHz: 196 mW.
        assert!((power - 196.0).abs() < 3.0, "heavy mix power = {power} mW");
        assert!(core.trap().is_none(), "trap: {:?}", core.trap());
    }
}
