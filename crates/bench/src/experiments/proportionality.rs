//! §III — "Swallow is energy proportional".
//!
//! Fig. 3 shows proportionality in *frequency*; the other axis is *load*:
//! power should scale linearly with the number of occupied issue slots.
//! We sweep 0–4 heavy-mix threads on one core and check the measured
//! powers sit on a straight line from the idle floor to the Eq. 1 point —
//! the property that makes Eq. 2's thread scaling an energy statement too.

use super::heavy_mix_program;
use std::fmt;
use swallow::isa::NodeId;
use swallow::xcore::{Core, CoreConfig};
use swallow::Frequency;
use swallow_sim::stats::LinearFit;

/// One load point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadRow {
    /// Active heavy-mix threads (0–4 of the four issue slots).
    pub threads: usize,
    /// Measured power (mW).
    pub measured_mw: f64,
    /// Closed-form prediction (mW).
    pub model_mw: f64,
}

/// The whole experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct Proportionality {
    /// Clock used.
    pub frequency: Frequency,
    /// One row per thread count.
    pub rows: Vec<LoadRow>,
    /// Fit: (intercept mW, slope mW/thread, R²).
    pub fit: (f64, f64, f64),
}

/// Runs the load sweep at `f`, `cycles` measurement window per point.
pub fn run(f: Frequency, cycles: u64) -> Proportionality {
    let model = swallow::energy::CorePowerModel::swallow();
    let mut rows = Vec::new();
    let mut fit = LinearFit::new();
    for threads in 0..=4usize {
        let mut config = CoreConfig::swallow(NodeId(0));
        config.frequency = f;
        let mut core = Core::new(config);
        if threads > 0 {
            core.load_program(&heavy_mix_program(threads))
                .expect("fits");
        }
        for _ in 0..1_000 {
            core.tick(core.next_tick_at());
        }
        let e0 = core.ledger().total();
        let t0 = core.next_tick_at();
        for _ in 0..cycles {
            core.tick(core.next_tick_at());
        }
        let span = core.next_tick_at().since(t0);
        let measured_mw = (core.ledger().total() - e0).over(span).as_milliwatts();
        let model_mw = model.partial_load_power(f, threads as u32).as_milliwatts();
        fit.push(threads as f64, measured_mw);
        rows.push(LoadRow {
            threads,
            measured_mw,
            model_mw,
        });
    }
    let (intercept, slope) = fit.solve().expect("five points");
    let r2 = fit.r_squared().expect("solvable");
    Proportionality {
        frequency: f,
        rows,
        fit: (intercept, slope, r2),
    }
}

impl fmt::Display for Proportionality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§III — energy proportionality in load at {} (one core):",
            self.frequency
        )?;
        writeln!(
            f,
            "{:>8} {:>14} {:>12}",
            "threads", "measured (mW)", "model (mW)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8} {:>14.1} {:>12.1}",
                r.threads, r.measured_mw, r.model_mw
            )?;
        }
        writeln!(
            f,
            "fit: P = {:.1} + {:.1}·threads mW (R² = {:.5}) — linear from idle to Eq. 1",
            self.fit.0, self.fit.1, self.fit.2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_is_linear_in_load() {
        let p = run(Frequency::from_mhz(500), 12_000);
        let (intercept, slope, r2) = p.fit;
        // Idle floor 113 mW; each of four heavy threads adds ~20.75 mW.
        assert!((intercept - 113.0).abs() < 2.0, "intercept = {intercept}");
        assert!((slope - 20.75).abs() < 1.0, "slope = {slope}");
        assert!(r2 > 0.999, "r2 = {r2}");
        for r in &p.rows {
            assert!((r.measured_mw - r.model_mw).abs() < 3.0, "{r:?}");
        }
    }

    #[test]
    fn proportionality_holds_at_low_clock() {
        let p = run(Frequency::from_mhz(100), 8_000);
        assert!(p.fit.2 > 0.999, "r2 = {}", p.fit.2);
        // End points: idle 59.4 mW to Eq. 1's 76 mW.
        assert!((p.rows[0].measured_mw - 59.4).abs() < 1.5);
        assert!((p.rows[4].measured_mw - 76.0).abs() < 1.5);
    }
}
