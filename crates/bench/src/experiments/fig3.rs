//! Fig. 3 — power consumption with frequency scaling (four cores).
//!
//! Sweeps the core clock over the paper's 71–500 MHz range for two loads
//! (all threads idle; four heavy-mix threads), measures mean power from
//! the simulated energy ledgers, and fits the loaded series to recover
//! Eq. 1's coefficients (`Pc = 46 + 0.30·f` mW).

use super::heavy_mix_program;
use std::fmt;
use swallow::isa::NodeId;
use swallow::xcore::{Core, CoreConfig};
use swallow::{Frequency, TimeDelta};
use swallow_sim::stats::LinearFit;

/// The paper's sweep points (MHz).
pub const SWEEP_MHZ: [u64; 8] = [71, 100, 150, 200, 250, 300, 400, 500];

/// One sweep point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig3Row {
    /// Clock in MHz.
    pub mhz: u64,
    /// Measured power with zero active threads (mW, per core).
    pub idle_mw: f64,
    /// Measured power with four heavy-mix threads (mW, per core).
    pub loaded_mw: f64,
    /// Eq. 1's closed-form prediction (mW).
    pub eq1_mw: f64,
}

/// The whole figure.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig3 {
    /// Sweep rows.
    pub rows: Vec<Fig3Row>,
    /// Fit of the loaded series: (intercept mW, slope mW/MHz, R²).
    pub fit: (f64, f64, f64),
}

fn measure_core(f: Frequency, threads: Option<usize>, cycles: u64) -> f64 {
    let mut config = CoreConfig::swallow(NodeId(0));
    config.frequency = f;
    let mut core = Core::new(config);
    if let Some(t) = threads {
        core.load_program(&heavy_mix_program(t)).expect("fits");
    }
    // Warm-up flushes the spawn phase out of the measurement window.
    for _ in 0..1_000 {
        core.tick(core.next_tick_at());
    }
    let e0 = core.ledger().total();
    let t0 = core.next_tick_at();
    for _ in 0..cycles {
        core.tick(core.next_tick_at());
    }
    let span = core.next_tick_at().since(t0);
    (core.ledger().total() - e0).over(span).as_milliwatts()
}

/// Runs the sweep. `cycles` sets the measurement window per point
/// (20 000 is plenty; the model has no noise beyond startup effects).
pub fn run(cycles: u64) -> Fig3 {
    let model = swallow::energy::CorePowerModel::swallow();
    let mut rows = Vec::new();
    let mut fit = LinearFit::new();
    for mhz in SWEEP_MHZ {
        let f = Frequency::from_mhz(mhz);
        let idle_mw = measure_core(f, None, cycles);
        let loaded_mw = measure_core(f, Some(4), cycles);
        let eq1_mw = model.eq1_power(f).as_milliwatts();
        fit.push(mhz as f64, loaded_mw);
        rows.push(Fig3Row {
            mhz,
            idle_mw,
            loaded_mw,
            eq1_mw,
        });
    }
    let (intercept, slope) = fit.solve().expect("8 distinct points");
    let r2 = fit.r_squared().expect("solvable");
    Fig3 {
        rows,
        fit: (intercept, slope, r2),
    }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 3 — power vs frequency (per core):")?;
        writeln!(
            f,
            "{:>7} {:>12} {:>12} {:>12}",
            "f (MHz)", "idle (mW)", "loaded (mW)", "Eq.1 (mW)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>7} {:>12.1} {:>12.1} {:>12.1}",
                r.mhz, r.idle_mw, r.loaded_mw, r.eq1_mw
            )?;
        }
        writeln!(
            f,
            "loaded fit: P = {:.1} + {:.3}·f mW (R² = {:.5}); paper: P = 46 + 0.30·f",
            self.fit.0, self.fit.1, self.fit.2
        )?;
        let _ = TimeDelta::ZERO;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_eq1() {
        let fig = run(8_000);
        let (intercept, slope, r2) = fig.fit;
        assert!((intercept - 46.0).abs() < 3.0, "intercept = {intercept}");
        assert!((slope - 0.30).abs() < 0.02, "slope = {slope}");
        assert!(r2 > 0.999, "r2 = {r2}");
    }

    #[test]
    fn idle_line_is_below_loaded_everywhere() {
        let fig = run(4_000);
        for r in &fig.rows {
            assert!(r.idle_mw < r.loaded_mw, "{r:?}");
            assert!((r.loaded_mw - r.eq1_mw).abs() < 6.0, "{r:?}");
        }
        // End points match the paper's quoted values.
        let p71 = fig.rows.first().expect("71 MHz");
        assert!((p71.loaded_mw - 67.0).abs() < 4.0);
        let p500 = fig.rows.last().expect("500 MHz");
        assert!((p500.loaded_mw - 196.0).abs() < 5.0);
        assert!((p500.idle_mw - 113.0).abs() < 3.0);
    }
}
