//! Fig. 2 — power distribution for each Swallow processor node.
//!
//! The paper breaks a 260 mW node into: computation & memory 78 mW (30 %),
//! static 68 mW (26 %), network interface 58 mW (22 %), DC-DC & I/O 46 mW
//! (18 %), other 10 mW (4 %). We reproduce the split by running a loaded,
//! *communicating* node — three heavy-mix threads plus one thread
//! streaming packets to a neighbour — and reading its energy ledger.

use std::fmt;
use swallow::energy::NodeCategory;
use swallow::{Assembler, NodeId, SystemBuilder, TimeDelta};
use swallow_workloads::codegen::chanend_rid;

/// One wedge of the pie.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig2Row {
    /// Energy category.
    pub category: NodeCategory,
    /// Measured mean power (mW).
    pub measured_mw: f64,
    /// Measured fraction of node power.
    pub measured_fraction: f64,
    /// Paper's mW for a 260 mW node.
    pub paper_mw: f64,
}

/// The whole figure.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig2 {
    /// One row per category.
    pub rows: Vec<Fig2Row>,
    /// Total node power (mW); the paper's is 260 mW.
    pub total_mw: f64,
}

/// Paper values (mW per category of the 260 mW node).
pub fn paper_mw(category: NodeCategory) -> f64 {
    match category {
        NodeCategory::Compute => 78.0,
        NodeCategory::Static => 68.0,
        NodeCategory::Network => 58.0,
        NodeCategory::Supply => 46.0,
        NodeCategory::Other => 10.0,
    }
}

/// Runs the loaded-node measurement for `span` of simulated time.
pub fn run(span: TimeDelta) -> Fig2 {
    let mut system = SystemBuilder::new().build().expect("one slice");
    // The measured node: 1 (horizontal layer of package 0). It streams
    // East to node 3 while four more threads run the heavy mix (the
    // sender thread is often blocked on the link, so the four mix threads
    // keep the issue slots full — the Fig. 2 node is fully loaded).
    let node = NodeId(1);
    let sink = NodeId(3);
    let dest = chanend_rid(sink, 0);
    let program = Assembler::new()
        .assemble(&format!(
            "
                getr  r0, chanend
                ldc   r1, {dest}
                setd  r0, r1
                ldc   r5, 4
                ldap  r6, worker
            spawn:
                tspawn r7, r6, r5
                sub   r5, r5, 1
                bt    r5, spawn
                ldc   r2, 0
            txloop:                   # streaming thread: 8-word packets
                ldc   r3, 8
            txw:
                out   r0, r2
                add   r2, r2, 1
                sub   r3, r3, 1
                bt    r3, txw
                outct r0, end
                bu    txloop
            worker:                   # heavy-mix thread (r0 = index)
                getr  r11, timer
                shl   r10, r0, 6
                ldc   r9, 0x1000
                add   r10, r10, r9
                ldc   r0, 0
            mix:
                add   r1, r1, 1
                add   r2, r2, r1
                xor   r3, r3, r1
                shl   r4, r1, 3
                and   r5, r3, r4
                or    r6, r5, r2
                sub   r7, r6, r1
                add   r8, r8, r7
                add   r2, r2, 1
                ldw   r9, r10[0]
                stw   r9, r10[1]
                ldw   r9, r10[2]
                stw   r9, r10[3]
                ld8u  r9, r10[0]
                mul   r9, r1, r2
                in    r9, r11
                in    r9, r11
                bt    r0, mix
                bt    r0, mix
                bu    mix
            "
        ))
        .expect("assembles");
    system.load_program(node, &program).expect("fits");
    // Sink: drain forever.
    let drain = Assembler::new()
        .assemble(
            "
                getr  r0, chanend
            dl:
                in    r1, r0
                bu    dl
            ",
        )
        .expect("assembles");
    system.load_program(sink, &drain).expect("fits");
    system.run_for(span);

    let ledger = system.machine().node_ledger(node);
    let total_mw = ledger.total().over(span).as_milliwatts();
    let rows = NodeCategory::ALL
        .into_iter()
        .map(|category| Fig2Row {
            category,
            measured_mw: ledger.get(category).over(span).as_milliwatts(),
            measured_fraction: ledger.fraction(category),
            paper_mw: paper_mw(category),
        })
        .collect();
    Fig2 { rows, total_mw }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 2 — power distribution per node (paper: 260 mW total):"
        )?;
        writeln!(
            f,
            "{:<26} {:>10} {:>8} {:>11} {:>9}",
            "Category", "meas mW", "meas %", "paper mW", "paper %"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<26} {:>10.1} {:>7.1}% {:>11.0} {:>8.1}%",
                r.category.label(),
                r.measured_mw,
                r.measured_fraction * 100.0,
                r.paper_mw,
                r.paper_mw / 260.0 * 100.0
            )?;
        }
        writeln!(f, "{:<26} {:>10.1}", "Total", self.total_mw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_resembles_fig2() {
        let fig = run(TimeDelta::from_us(40));
        // Total node power lands near the paper's 260 mW.
        assert!(
            (215.0..300.0).contains(&fig.total_mw),
            "total = {} mW",
            fig.total_mw
        );
        // Every fraction within 7 percentage points of the paper's pie.
        for r in &fig.rows {
            let paper_frac = r.paper_mw / 260.0;
            assert!(
                (r.measured_fraction - paper_frac).abs() < 0.07,
                "{}: {:.1}% vs paper {:.1}%",
                r.category.label(),
                r.measured_fraction * 100.0,
                paper_frac * 100.0
            );
        }
        // Ordering of the big wedges: compute and static lead, then NI.
        let get = |c: NodeCategory| {
            fig.rows
                .iter()
                .find(|r| r.category == c)
                .expect("row")
                .measured_mw
        };
        assert!(get(NodeCategory::Compute) > get(NodeCategory::Supply));
        assert!(get(NodeCategory::Static) > get(NodeCategory::Other));
        assert!(get(NodeCategory::Network) > get(NodeCategory::Other));
    }
}
