//! §V.D — the computation-to-communication (EC) ratio ladder.
//!
//! For each scenario the analytic `E` and `C` reproduce the paper's 1 /
//! 16 / 64 / 256 / 512 ladder; in addition the scenario's workload runs
//! on a simulated slice and the *achieved* communication bandwidth is
//! measured, showing how protocol overhead and contention bite.

use std::fmt;
use swallow::{Frequency, SystemBuilder, TimeDelta};
use swallow_workloads::ec::EcScenario;

/// One scenario row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EcRow {
    /// Scenario.
    pub scenario: EcScenario,
    /// Analytic E (Gbit/s).
    pub e_gbps: f64,
    /// Analytic C (Gbit/s).
    pub c_gbps: f64,
    /// Analytic EC ratio.
    pub analytic_ratio: f64,
    /// Paper's EC ratio.
    pub paper_ratio: f64,
    /// Measured achieved payload bandwidth (Gbit/s).
    pub achieved_gbps: f64,
}

/// The whole experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct EcRatios {
    /// Core clock used for `E`.
    pub frequency: Frequency,
    /// One row per scenario.
    pub rows: Vec<EcRow>,
}

/// Runs every scenario with `words_per_flow` words per stream.
pub fn run(words_per_flow: u32) -> EcRatios {
    let f = Frequency::from_mhz(500);
    let mut rows = Vec::new();
    for scenario in EcScenario::ALL {
        let mut system = SystemBuilder::new().build().expect("one slice");
        let placement = scenario.workload(words_per_flow).expect("generates");
        placement.apply(&mut system).expect("loads");
        let t0 = system.now();
        assert!(
            system.run_until_quiescent(TimeDelta::from_ms(500)),
            "{} did not drain ({:?})",
            scenario.name(),
            system.first_trap()
        );
        let elapsed = system.now().since(t0).as_secs_f64();
        // Payload actually moved: words per flow × flows × 32 bits. Count
        // flows from the placement's known shapes.
        let flows = match scenario {
            EcScenario::SliceBisection => 8,
            _ => 4,
        } as f64;
        let payload_bits = words_per_flow as f64 * flows * 32.0;
        rows.push(EcRow {
            scenario,
            e_gbps: scenario.compute_bandwidth_bps(f) / 1e9,
            c_gbps: scenario.comm_bandwidth_bps(f) / 1e9,
            analytic_ratio: scenario.analytic_ratio(f),
            paper_ratio: scenario.paper_ratio(),
            achieved_gbps: payload_bits / elapsed / 1e9,
        });
    }
    EcRatios { frequency: f, rows }
}

impl fmt::Display for EcRatios {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§V.D — EC ratios at {} (E = compute bandwidth, C = comm bandwidth):",
            self.frequency
        )?;
        writeln!(
            f,
            "{:<30} {:>10} {:>10} {:>9} {:>9} {:>14}",
            "Scenario", "E (Gb/s)", "C (Gb/s)", "E/C", "paper", "achieved C"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<30} {:>10.2} {:>10.3} {:>9.0} {:>9.0} {:>9.3} Gb/s",
                r.scenario.name(),
                r.e_gbps,
                r.c_gbps,
                r.analytic_ratio,
                r.paper_ratio,
                r.achieved_gbps
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_matches_paper() {
        let ec = run(64);
        for r in &ec.rows {
            assert!(
                (r.analytic_ratio - r.paper_ratio).abs() / r.paper_ratio < 0.01,
                "{:?}",
                r
            );
        }
    }

    #[test]
    fn achieved_bandwidth_never_exceeds_analytic_c() {
        let ec = run(64);
        for r in &ec.rows {
            assert!(
                r.achieved_gbps <= r.c_gbps * 1.02,
                "{}: achieved {} > C {}",
                r.scenario.name(),
                r.achieved_gbps,
                r.c_gbps
            );
        }
    }

    #[test]
    fn contended_link_is_slowest_per_flow() {
        let ec = run(64);
        let by = |s: EcScenario| {
            ec.rows
                .iter()
                .find(|r| r.scenario == s)
                .expect("row")
                .achieved_gbps
        };
        // Four flows on one link achieve less than four flows on four links.
        assert!(by(EcScenario::ExternalContended) <= by(EcScenario::ChipAggregate));
    }
}
