//! Ablations of the design choices `DESIGN.md` calls out.
//!
//! 1. **Link aggregation** (§V.B): the XS1-L2A puts *four* parallel links
//!    between its two cores. We sweep 1/2/4 internal link pairs under a
//!    four-flow load and measure the achieved aggregate bandwidth — the
//!    paper's "increases bandwidth, provided the number of concurrent
//!    communications is equal to or greater than the number of links".
//! 2. **Routing strategy** (§V.A): the lattice's vertical-first
//!    dimension-order routing vs generic shortest paths: identical hop
//!    counts on a healthy lattice (dimension order *is* minimal here),
//!    so the ablation confirms the specialised router gives up nothing —
//!    its value is being deadlock-free and table-free on real hardware.

use std::fmt;
use swallow::board::{Machine, MachineConfig, RouterKind};
use swallow::{NodeId, TimeDelta};
use swallow_workloads::traffic;

/// Aggregation sweep result: one row per internal-link-pair count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AggregationRow {
    /// Parallel internal link pairs wired.
    pub pairs: usize,
    /// Achieved aggregate payload bandwidth (Mbit/s) under four flows.
    pub achieved_mbps: f64,
    /// Ideal: pairs × 250 Mbit/s × packet efficiency.
    pub ideal_mbps: f64,
}

/// Router comparison result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouterRow {
    /// Strategy.
    pub router: RouterKind,
    /// Corner-to-corner one-way latency (ns) on an idle slice.
    pub corner_latency_ns: f64,
}

/// The whole ablation.
#[derive(Clone, Debug, PartialEq)]
pub struct Ablation {
    /// Aggregation sweep.
    pub aggregation: Vec<AggregationRow>,
    /// Router comparison.
    pub routers: Vec<RouterRow>,
}

fn aggregation_point(pairs: usize, words_per_flow: u32) -> AggregationRow {
    let mut config = MachineConfig::one_slice();
    config.internal_link_pairs = pairs;
    let mut machine = Machine::new(config);
    let placement =
        traffic::multi_stream(NodeId(0), NodeId(1), 4, words_per_flow, 8).expect("generates");
    for (node, program) in placement.iter() {
        machine.load_program(node, program).expect("fits");
    }
    let t0 = machine.now();
    let done = machine.run_until_quiescent(TimeDelta::from_ms(100));
    assert!(done, "aggregation workload did not drain at {pairs} pairs");
    let secs = machine.now().since(t0).as_secs_f64();
    let bits = 4.0 * words_per_flow as f64 * 32.0;
    AggregationRow {
        pairs,
        achieved_mbps: bits / secs / 1e6,
        // 8-word packets: 32 payload tokens per 36 total.
        ideal_mbps: pairs as f64 * 250.0 * (32.0 / 36.0),
    }
}

fn corner_latency(router: RouterKind, iters: u32) -> f64 {
    use swallow::isa::Assembler;
    use swallow_workloads::codegen::chanend_rid;
    let mut config = MachineConfig::one_slice();
    config.router = router;
    let mut machine = Machine::new(config);
    let (a, b) = (NodeId(0), NodeId(15)); // opposite corners of the slice
    let peer = chanend_rid(b, 0);
    let me = chanend_rid(a, 0);
    let initiator = Assembler::new()
        .assemble(&format!(
            "
                getr  r0, chanend
                ldc   r1, {peer}
                setd  r0, r1
                getr  r4, timer
                in    r5, r4
                ldc   r6, {iters}
            pp:
                out   r0, r6
                in    r7, r0
                sub   r6, r6, 1
                bt    r6, pp
                in    r8, r4
                sub   r8, r8, r5
                print r8
                freet
            "
        ))
        .expect("assembles");
    let echo = Assembler::new()
        .assemble(&format!(
            "
                getr  r0, chanend
                ldc   r1, {me}
                setd  r0, r1
            el:
                in    r5, r0
                out   r0, r5
                bu    el
            "
        ))
        .expect("assembles");
    machine.load_program(a, &initiator).expect("fits");
    machine.load_program(b, &echo).expect("fits");
    let deadline = machine.now() + TimeDelta::from_ms(50);
    while machine.core(a).output().is_empty() && machine.now() < deadline {
        machine.step();
    }
    let ticks: f64 = machine
        .core(a)
        .output()
        .trim()
        .parse()
        .expect("tick count printed");
    ticks * 10.0 / iters as f64 / 2.0
}

/// Runs both ablations.
pub fn run(words_per_flow: u32, latency_iters: u32) -> Ablation {
    Ablation {
        aggregation: [1usize, 2, 4]
            .into_iter()
            .map(|pairs| aggregation_point(pairs, words_per_flow))
            .collect(),
        routers: [RouterKind::VerticalFirst, RouterKind::ShortestPaths]
            .into_iter()
            .map(|router| RouterRow {
                router,
                corner_latency_ns: corner_latency(router, latency_iters),
            })
            .collect(),
    }
}

impl fmt::Display for Ablation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation 1 — link aggregation (four flows across a package):"
        )?;
        writeln!(
            f,
            "{:>14} {:>16} {:>14}",
            "link pairs", "achieved Mb/s", "ideal Mb/s"
        )?;
        for r in &self.aggregation {
            writeln!(
                f,
                "{:>14} {:>16.1} {:>14.1}",
                r.pairs, r.achieved_mbps, r.ideal_mbps
            )?;
        }
        writeln!(
            f,
            "\nAblation 2 — routing strategy (corner-to-corner word):"
        )?;
        for r in &self.routers {
            writeln!(
                f,
                "{:<16?} {:>10.0} ns one-way",
                r.router, r.corner_latency_ns
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_scales_with_link_pairs() {
        let a = run(64, 16);
        let by = |p: usize| {
            a.aggregation
                .iter()
                .find(|r| r.pairs == p)
                .expect("row")
                .achieved_mbps
        };
        // Doubling the links roughly doubles four-flow throughput while
        // flows outnumber links (1 -> 2), and 4 links carry ~4x.
        assert!(by(2) / by(1) > 1.7, "1: {} 2: {}", by(1), by(2));
        assert!(by(4) / by(1) > 3.2, "1: {} 4: {}", by(1), by(4));
        // Never above ideal.
        for r in &a.aggregation {
            assert!(r.achieved_mbps <= r.ideal_mbps * 1.02, "{r:?}");
        }
    }

    #[test]
    fn dimension_order_matches_shortest_paths_on_healthy_lattice() {
        let a = run(16, 16);
        let v = a.routers[0].corner_latency_ns;
        let s = a.routers[1].corner_latency_ns;
        assert!(
            (v - s).abs() / v < 0.15,
            "vertical-first {v} ns vs shortest-paths {s} ns"
        );
    }
}
