//! Resilience under seeded random fault load.
//!
//! Not a paper artefact — this characterises the fault-injection
//! subsystem (DESIGN.md §3.10). A six-stage pipeline runs while a
//! [`FaultPlan::random`] schedule of escalating size is replayed over
//! it: transient link hot-unplugs, corruption and drop windows, core
//! stalls and supply brownouts. Reported per fault count:
//!
//! * whether the pipeline still **completed** (drained to the correct
//!   checksum inside the time budget — reroute and retry doing their
//!   job), and the delivered-data-token rate when it did not;
//! * the **recovery work**: retransmits, route recomputations,
//!   quarantined cores;
//! * the **energy cost** of surviving: ledger total and its overhead
//!   over the fault-free baseline (rows that hang burn the whole budget
//!   in static power, which is exactly the energy-transparent answer to
//!   "what did that fault cost?");
//! * the **conservation residual** — with retransmit and drop energy
//!   charged at the links, the metered supply rows must still integrate
//!   back to the ledger to ~1e-9.
//!
//! [`Resilience::write_json`] emits the rows as `BENCH_resilience.json`
//! for CI trend tracking.

use std::fmt;
use swallow::noc::Direction;
use swallow::{EngineMode, FaultPlan, NodeId, RandomFaults, SystemBuilder, TimeDelta};
use swallow_workloads::pipeline::{self, PipelineSpec};

/// Fault-event counts the default sweep injects.
pub const DEFAULT_EVENT_COUNTS: [u32; 5] = [0, 2, 4, 8, 16];

/// Seed of the default sweep's random plans.
pub const DEFAULT_SEED: u64 = 0xB0A7;

/// The workload every row runs: a six-stage, 24-item pipeline (the same
/// shape the observability runs use), quiescing around 27 µs fault-free.
const PIPE: PipelineSpec = PipelineSpec {
    stages: 6,
    items: 24,
    work_per_item: 3,
};

/// One fault-count measurement.
#[derive(Clone, Copy, Debug)]
pub struct ResilienceRow {
    /// Fault events requested from the random generator.
    pub fault_events: u32,
    /// Events actually scheduled (transient unplugs count down + up).
    pub scheduled: u32,
    /// Seed of the random plan.
    pub seed: u64,
    /// Which engine ran it.
    pub engine: EngineMode,
    /// The pipeline quiesced and printed the correct checksum.
    pub completed: bool,
    /// Data tokens delivered to a destination.
    pub delivered_tokens: u64,
    /// Data tokens lost in drop windows.
    pub dropped_tokens: u64,
    /// Tokens retransmitted after detected corruption.
    pub retransmits: u64,
    /// Links taken down (scheduled plus retry escalations).
    pub link_downs: u64,
    /// Routing-table recomputations.
    pub reroutes: u64,
    /// Cores quarantined as unreachable.
    pub quarantined: u64,
    /// Core stall windows applied.
    pub core_stalls: u64,
    /// Brownout windows applied.
    pub brownouts: u64,
    /// Delivered / (delivered + dropped) data tokens.
    pub delivered_rate: f64,
    /// Machine ledger total for the run.
    pub energy_j: f64,
    /// `energy_j` relative to the fault-free row (0 for the baseline;
    /// hung rows include the budget's worth of static burn).
    pub energy_overhead: f64,
    /// |metered − ledger| / |ledger| after the final metrics flush.
    pub conservation_rel: f64,
}

impl ResilienceRow {
    /// Stable engine name for tables and JSON.
    pub fn engine_name(&self) -> &'static str {
        match self.engine {
            EngineMode::LockStep => "lockstep",
            EngineMode::FastForward => "fastforward",
            EngineMode::Parallel { .. } => "parallel",
        }
    }

    /// Host worker threads (0 for the serial engines).
    pub fn threads(&self) -> usize {
        match self.engine {
            EngineMode::Parallel { threads } => threads,
            _ => 0,
        }
    }
}

/// The whole experiment: one row per injected fault count.
#[derive(Clone, Debug)]
pub struct Resilience {
    /// Rows in ascending fault-count order (baseline first).
    pub rows: Vec<ResilienceRow>,
}

impl Resilience {
    /// Serialises the rows as the `BENCH_resilience.json` schema:
    /// `{"experiment": "resilience", "rows": [{fault_events, scheduled,
    /// seed, engine, threads, completed, delivered_tokens, ...}, ...]}`.
    /// Hand-rolled — the workspace builds offline with no serde
    /// dependency.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiment\": \"resilience\",\n  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let sep = if i + 1 < self.rows.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"fault_events\": {}, \"scheduled\": {}, \"seed\": {}, \
                 \"engine\": \"{}\", \"threads\": {}, \"completed\": {}, \
                 \"delivered_tokens\": {}, \"dropped_tokens\": {}, \
                 \"retransmits\": {}, \"link_downs\": {}, \"reroutes\": {}, \
                 \"quarantined\": {}, \"core_stalls\": {}, \"brownouts\": {}, \
                 \"delivered_rate\": {:.6}, \
                 \"energy_j\": {:.9e}, \"energy_overhead\": {:.6}, \
                 \"conservation_rel\": {:.3e}}}{sep}\n",
                r.fault_events,
                r.scheduled,
                r.seed,
                r.engine_name(),
                r.threads(),
                r.completed,
                r.delivered_tokens,
                r.dropped_tokens,
                r.retransmits,
                r.link_downs,
                r.reroutes,
                r.quarantined,
                r.core_stalls,
                r.brownouts,
                r.delivered_rate,
                r.energy_j,
                r.energy_overhead,
                r.conservation_rel,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`Self::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

impl fmt::Display for Resilience {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Resilience under random faults (pipeline {}x{} items, seed {:#x}):",
            PIPE.stages, PIPE.items, DEFAULT_SEED
        )?;
        writeln!(
            f,
            "  {:>6} {:>9} {:>10} {:>9} {:>7} {:>8} {:>10} {:>6} {:>6} {:>10} {:>9} {:>9}",
            "faults",
            "completed",
            "delivered",
            "dropped",
            "retry",
            "reroutes",
            "quarantine",
            "stalls",
            "brown",
            "energy µJ",
            "overhead",
            "conserve"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>6} {:>9} {:>10} {:>9} {:>7} {:>8} {:>10} {:>6} {:>6} {:>10.3} {:>8.1}% {:>9.1e}",
                r.fault_events,
                if r.completed { "yes" } else { "HUNG" },
                r.delivered_tokens,
                r.dropped_tokens,
                r.retransmits,
                r.reroutes,
                r.quarantined,
                r.core_stalls,
                r.brownouts,
                r.energy_j * 1e6,
                r.energy_overhead * 100.0,
                r.conservation_rel,
            )?;
        }
        let survived = self.rows.iter().filter(|r| r.completed).count();
        write!(
            f,
            "  {survived}/{} fault loads completed the pipeline",
            self.rows.len()
        )
    }
}

/// Seeded random plan shaped to the pipeline's active window (~27 µs)
/// and its traffic-carrying links: instants land where there is traffic
/// to disturb, and the link universe is capped to the internal bundles
/// between the pipeline's stage nodes (a uniform draw over the whole
/// 84-link fabric would mostly hit idle links and measure nothing).
fn plan_for(fault_events: u32, seed: u64) -> FaultPlan {
    if fault_events == 0 {
        return FaultPlan::new();
    }
    let probe = SystemBuilder::new().build().expect("builds");
    let stages = PIPE.stages as u16;
    let links = probe
        .machine()
        .link_descs()
        .iter()
        .filter(|d| d.dir == Direction::Internal && d.from.0 < stages && d.to.0 < stages)
        .map(|d| d.id.raw() + 1)
        .max()
        .unwrap_or(probe.machine().link_descs().len() as u32);
    let cores = stages.min(probe.machine().core_count() as u16);
    let cfg = RandomFaults {
        events: fault_events,
        span: TimeDelta::from_us(20),
        window: TimeDelta::from_us(2),
        ..RandomFaults::default()
    };
    FaultPlan::random(seed, &cfg, links, cores)
}

/// Runs the pipeline under one random fault load.
pub fn measure(
    engine: EngineMode,
    fault_events: u32,
    seed: u64,
    budget: TimeDelta,
) -> ResilienceRow {
    let plan = plan_for(fault_events, seed);
    let scheduled = plan.len() as u32;
    let mut system = SystemBuilder::new()
        .engine(engine)
        .faults(plan)
        .metrics()
        .build()
        .expect("builds");
    pipeline::generate(&PIPE, system.machine().spec())
        .expect("generates")
        .apply(&mut system)
        .expect("loads");
    let quiescent = system.run_until_quiescent(budget);
    system.flush_metrics();
    let report = system.metrics_report();

    let sink = NodeId((PIPE.stages - 1) as u16);
    let completed =
        quiescent && system.output(sink).trim() == pipeline::checksum(&PIPE).to_string();
    let metered = report.metered_energy.as_joules();
    let ledger = report.ledger_energy.as_joules();
    let faults = report.faults;
    ResilienceRow {
        fault_events,
        scheduled,
        seed,
        engine,
        completed,
        delivered_tokens: faults.delivered_tokens,
        dropped_tokens: faults.dropped_tokens,
        retransmits: faults.retransmits,
        link_downs: faults.link_downs,
        reroutes: faults.reroutes,
        quarantined: faults.quarantined_cores,
        core_stalls: faults.core_stalls,
        brownouts: faults.brownouts,
        delivered_rate: faults.delivered_rate(),
        energy_j: ledger,
        energy_overhead: 0.0, // filled in against the baseline below
        conservation_rel: (metered - ledger).abs() / ledger.abs().max(f64::MIN_POSITIVE),
    }
}

/// Sweeps the fault counts under one engine, computing each row's energy
/// overhead against the sweep's zero-fault baseline (when present).
pub fn run_with(
    engine: EngineMode,
    event_counts: &[u32],
    seed: u64,
    budget: TimeDelta,
) -> Resilience {
    let mut rows: Vec<ResilienceRow> = event_counts
        .iter()
        .map(|&events| measure(engine, events, seed, budget))
        .collect();
    if let Some(base) = rows
        .iter()
        .find(|r| r.fault_events == 0)
        .map(|r| r.energy_j)
        .filter(|&e| e > 0.0)
    {
        for r in &mut rows {
            r.energy_overhead = r.energy_j / base - 1.0;
        }
    }
    Resilience { rows }
}

/// The default sweep: fast-forward engine over [`DEFAULT_EVENT_COUNTS`]
/// (quick mode trims the tail), budgeting 300 µs per run so hung rows
/// terminate promptly.
pub fn run(quick: bool) -> Resilience {
    let counts: &[u32] = if quick {
        &DEFAULT_EVENT_COUNTS[..3]
    } else {
        &DEFAULT_EVENT_COUNTS
    };
    run_with(
        EngineMode::FastForward,
        counts,
        DEFAULT_SEED,
        TimeDelta::from_us(300),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_and_faulted_rows_are_well_formed() {
        let r = run_with(
            EngineMode::FastForward,
            &[0, 4],
            DEFAULT_SEED,
            TimeDelta::from_us(120),
        );
        assert_eq!(r.rows.len(), 2);
        let base = &r.rows[0];
        assert!(base.completed, "fault-free pipeline must complete");
        assert_eq!(base.scheduled, 0);
        assert_eq!(base.energy_overhead, 0.0);
        assert_eq!(base.delivered_rate, 1.0);
        assert!(base.energy_j > 0.0);
        let faulted = &r.rows[1];
        assert!(faulted.scheduled >= 4);
        assert!(
            !faulted.delivered_rate.is_nan() && faulted.delivered_rate <= 1.0,
            "{faulted:?}"
        );
        for row in &r.rows {
            assert!(row.conservation_rel <= 1e-9, "conservation broke: {row:?}");
        }
        let rendered = r.to_string();
        assert!(rendered.contains("Resilience under random faults"));
        assert!(rendered.contains("completed the pipeline"));
    }

    #[test]
    fn json_has_every_row_and_field() {
        let r = run_with(
            EngineMode::FastForward,
            &[0, 2],
            DEFAULT_SEED,
            TimeDelta::from_us(120),
        );
        let json = r.to_json();
        assert_eq!(json.matches("\"fault_events\"").count(), r.rows.len());
        for field in [
            "\"experiment\": \"resilience\"",
            "\"engine\": \"fastforward\"",
            "\"threads\": 0",
            "\"completed\":",
            "\"delivered_tokens\":",
            "\"dropped_tokens\":",
            "\"retransmits\":",
            "\"link_downs\":",
            "\"reroutes\":",
            "\"quarantined\":",
            "\"delivered_rate\":",
            "\"energy_j\":",
            "\"energy_overhead\":",
            "\"conservation_rel\":",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        // Trailing-comma-free: the last row closes straight into the array.
        assert!(json.contains("}\n  ]\n}\n"));
    }
}
