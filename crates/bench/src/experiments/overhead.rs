//! §V.B — packet protocol overhead.
//!
//! "The overhead of packet data reduces throughput to approximately 87 %
//! of the link speed, but is dependent upon the packet size." Each packet
//! costs a three-token route header plus a closing END token, so payload
//! efficiency is `4·P / (4·P + 4)` for a P-word packet. We sweep packet
//! sizes over one link and measure both the token-level efficiency and
//! the achieved wall-clock payload rate.

use std::fmt;
use swallow::{NodeId, SystemBuilder, TimeDelta};
use swallow_workloads::traffic::{self, StreamSpec};

/// One packet-size point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverheadRow {
    /// Packet payload in 32-bit words.
    pub packet_words: u32,
    /// Measured payload tokens / total tokens.
    pub token_efficiency: f64,
    /// Achieved payload rate / configured link rate.
    pub rate_efficiency: f64,
    /// The closed-form `4P / (4P + 4)`.
    pub model_efficiency: f64,
}

/// The whole experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct Overhead {
    /// One row per packet size.
    pub rows: Vec<OverheadRow>,
}

/// Sweeps packet sizes, streaming `words` in total per point over the
/// package-internal link pair of one package.
pub fn run(words: u32) -> Overhead {
    let sizes = [1u32, 2, 4, 8, 16, 32, 64];
    let mut rows = Vec::new();
    for packet_words in sizes {
        let words = words.next_multiple_of(packet_words);
        let mut system = SystemBuilder::new().build().expect("one slice");
        traffic::stream(&StreamSpec {
            src: NodeId(0),
            dst: NodeId(8), // vertical neighbour: exactly one board link
            words,
            packet_words,
        })
        .expect("generates")
        .apply(&mut system)
        .expect("loads");
        let t0 = system.now();
        assert!(
            system.run_until_quiescent(TimeDelta::from_ms(500)),
            "stream did not drain at packet size {packet_words}"
        );
        let stats = system
            .machine()
            .fabric()
            .link_stats()
            .find(|s| s.from == NodeId(0) && s.to == NodeId(8))
            .expect("link exists");
        let total = stats.data_tokens + stats.ctrl_tokens + stats.header_tokens;
        let token_efficiency = stats.data_tokens as f64 / total as f64;
        let elapsed = system.now().since(t0).as_secs_f64();
        let rate = stats.data_tokens as f64 * 8.0 / elapsed;
        let link_rate = swallow::energy::WireClass::BoardVertical
            .data_rate()
            .as_hz() as f64;
        rows.push(OverheadRow {
            packet_words,
            token_efficiency,
            rate_efficiency: rate / link_rate,
            model_efficiency: (4 * packet_words) as f64 / (4 * packet_words + 4) as f64,
        });
    }
    Overhead { rows }
}

impl fmt::Display for Overhead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§V.B — packet overhead (3-token header + END per packet); paper: ≈87% of link speed:"
        )?;
        writeln!(
            f,
            "{:>13} {:>16} {:>16} {:>16}",
            "packet words", "token eff.", "achieved rate", "model 4P/(4P+4)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>13} {:>15.1}% {:>15.1}% {:>15.1}%",
                r.packet_words,
                r.token_efficiency * 100.0,
                r.rate_efficiency * 100.0,
                r.model_efficiency * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_grows_with_packet_size() {
        let o = run(128);
        for pair in o.rows.windows(2) {
            assert!(pair[1].token_efficiency > pair[0].token_efficiency);
        }
        // Token accounting matches the closed form exactly.
        for r in &o.rows {
            assert!(
                (r.token_efficiency - r.model_efficiency).abs() < 1e-9,
                "{r:?}"
            );
        }
    }

    #[test]
    fn paper_regime_sits_near_eight_word_packets() {
        // 87% falls between the 4-word (80%) and 8-word (88.9%) packets.
        let o = run(128);
        let eff = |p: u32| {
            o.rows
                .iter()
                .find(|r| r.packet_words == p)
                .expect("row")
                .token_efficiency
        };
        assert!(eff(4) < 0.87 && eff(8) > 0.87);
    }

    #[test]
    fn achieved_rate_tracks_token_efficiency() {
        let o = run(256);
        for r in &o.rows {
            // Wall-clock rate is within a few points of the token
            // efficiency (sender-side pipelining keeps the link busy).
            assert!(
                r.rate_efficiency > r.token_efficiency - 0.12
                    && r.rate_efficiency <= r.token_efficiency + 0.02,
                "{r:?}"
            );
        }
    }
}
