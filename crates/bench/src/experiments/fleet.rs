//! Fleet load sweep: offered load vs goodput, tail latency and energy.
//!
//! Not a single-figure paper artefact — this is the serving-layer view
//! the paper motivates in §I (many cheap machines behind a network
//! front-end, energy transparency end to end). A fleet of independent
//! machines runs the bridge-fronted request/reply service while the
//! open-loop generator sweeps the per-machine arrival rate; each load
//! point reports offered vs goodput (requests/s), p50/p95/p99 latency
//! from the scheduled arrival, and whole-fleet joules per served request
//! (idle burn included — the energy-proportionality story told in
//! serving units).
//!
//! Rows are bit-identical across repeat runs and host thread counts;
//! [`FleetBench::write_json`] emits them as `BENCH_fleet.json` for CI
//! trend tracking, and [`check_conservation`] re-runs the §II gate per
//! machine (supply-integrated energy must reproduce the ledger total).

use std::fmt;
use swallow_fleet::{ArrivalKind, FleetError, FleetResult, FleetSpec};

/// Per-machine arrival rates the default sweep visits (requests/s). The
/// top points push the 80 Mbit/s bridge toward saturation: a 2-word
/// request frame occupies ingress for 900 ns, so offered load beyond
/// ~1.1 M frames/s must show up as queueing delay, not extra goodput.
pub const DEFAULT_RATES: [f64; 6] = [25e3, 50e3, 100e3, 200e3, 400e3, 800e3];

/// A shorter sweep for `--quick` runs.
pub const QUICK_RATES: [f64; 3] = [50e3, 200e3, 800e3];

/// One load point.
#[derive(Clone, Copy, Debug)]
pub struct FleetRow {
    /// Offered per-machine arrival rate (requests/s).
    pub rate_rps: f64,
    /// Requests scheduled fleet-wide.
    pub offered: u64,
    /// Requests accepted at ingress.
    pub injected: u64,
    /// Requests rejected by bridge backpressure.
    pub rejected: u64,
    /// Requests served within the horizon.
    pub completed: u64,
    /// Oracle-failing replies (always 0 on a healthy fleet).
    pub wrong: u64,
    /// Served requests per second of simulated time, fleet-wide.
    pub goodput_rps: f64,
    /// Median latency from scheduled arrival, picoseconds.
    pub p50_ps: u64,
    /// 95th-percentile latency, picoseconds.
    pub p95_ps: u64,
    /// 99th-percentile latency, picoseconds.
    pub p99_ps: u64,
    /// Whole-fleet energy per served request, joules.
    pub joules_per_request: f64,
    /// Fleet ledger total over the run, joules.
    pub total_energy_j: f64,
    /// Energy spent with nothing in flight, joules.
    pub idle_energy_j: f64,
}

impl FleetRow {
    fn from_result(rate_rps: f64, r: &FleetResult) -> FleetRow {
        FleetRow {
            rate_rps,
            offered: r.offered,
            injected: r.injected,
            rejected: r.rejected,
            completed: r.completed,
            wrong: r.wrong,
            goodput_rps: r.goodput_rps(),
            p50_ps: r.latency_ps(0.50).unwrap_or(0),
            p95_ps: r.latency_ps(0.95).unwrap_or(0),
            p99_ps: r.latency_ps(0.99).unwrap_or(0),
            joules_per_request: r.joules_per_request(),
            total_energy_j: r.total_energy_j,
            idle_energy_j: r.idle_energy_j,
        }
    }
}

/// The whole sweep.
#[derive(Clone, Debug)]
pub struct FleetBench {
    /// Machines in the fleet.
    pub machines: usize,
    /// Arrival-process label (`poisson` / `bursty:N`).
    pub arrivals: String,
    /// Fleet seed.
    pub seed: u64,
    /// Requests per machine per load point.
    pub requests: u32,
    /// One row per swept rate.
    pub rows: Vec<FleetRow>,
}

/// Stable label for an arrival kind (JSON and tables).
pub fn arrival_label(kind: ArrivalKind) -> String {
    match kind {
        ArrivalKind::Poisson => "poisson".to_owned(),
        ArrivalKind::Bursty { burst } => format!("bursty:{burst}"),
    }
}

impl FleetBench {
    /// Serialises the sweep as the `BENCH_fleet.json` schema:
    /// `{"experiment": "fleet", "machines": N, "arrivals": "...",
    /// "seed": S, "requests": R, "rows": [{rate_rps, offered, injected,
    /// rejected, completed, wrong, goodput_rps, p50_ps, p95_ps, p99_ps,
    /// joules_per_request, total_energy_j, idle_energy_j}, ...]}`.
    /// Every field is either an integer or a fixed-precision float of a
    /// deterministic simulation quantity, so the file is bit-identical
    /// across repeat runs and host thread counts. Hand-rolled — the
    /// workspace builds offline with no serde dependency.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"experiment\": \"fleet\",\n  \"machines\": {},\n  \
             \"arrivals\": \"{}\",\n  \"seed\": {},\n  \"requests\": {},\n  \"rows\": [\n",
            self.machines, self.arrivals, self.seed, self.requests
        );
        for (i, r) in self.rows.iter().enumerate() {
            let sep = if i + 1 < self.rows.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"rate_rps\": {:.1}, \"offered\": {}, \"injected\": {}, \
                 \"rejected\": {}, \"completed\": {}, \"wrong\": {}, \
                 \"goodput_rps\": {:.3}, \"p50_ps\": {}, \"p95_ps\": {}, \
                 \"p99_ps\": {}, \"joules_per_request\": {:.9e}, \
                 \"total_energy_j\": {:.9e}, \"idle_energy_j\": {:.9e}}}{sep}\n",
                r.rate_rps,
                r.offered,
                r.injected,
                r.rejected,
                r.completed,
                r.wrong,
                r.goodput_rps,
                r.p50_ps,
                r.p95_ps,
                r.p99_ps,
                r.joules_per_request,
                r.total_energy_j,
                r.idle_energy_j,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`Self::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

impl fmt::Display for FleetBench {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fleet load sweep: {} machines, {} arrivals, {} requests/machine, seed {}:",
            self.machines, self.arrivals, self.requests, self.seed
        )?;
        writeln!(
            f,
            "  {:>10} {:>8} {:>8} {:>9} {:>12} {:>9} {:>9} {:>9} {:>10}",
            "rate/mc",
            "offered",
            "served",
            "rejected",
            "goodput",
            "p50 us",
            "p95 us",
            "p99 us",
            "uJ/req"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>10.0} {:>8} {:>8} {:>9} {:>12.0} {:>9.2} {:>9.2} {:>9.2} {:>10.2}",
                r.rate_rps,
                r.offered,
                r.completed,
                r.rejected,
                r.goodput_rps,
                r.p50_ps as f64 / 1e6,
                r.p95_ps as f64 / 1e6,
                r.p99_ps as f64 / 1e6,
                r.joules_per_request * 1e6,
            )?;
        }
        Ok(())
    }
}

/// The per-machine conservation gate: on every machine that ran with the
/// metrics hub, the supply-integrated energy must reproduce the ledger
/// total within f64 association.
///
/// # Errors
///
/// A description of the first violating machine.
pub fn check_conservation(result: &FleetResult) -> Result<(), String> {
    for (m, outcome) in result.machines.iter().enumerate() {
        let Some(metered) = outcome.metered_energy_j else {
            return Err(format!("machine {m} ran without the metrics hub"));
        };
        let ledger = outcome.total_energy_j;
        let rel = (metered - ledger).abs() / ledger.abs().max(f64::MIN_POSITIVE);
        if rel > 1e-9 {
            return Err(format!(
                "machine {m}: metered {metered:.9e} J vs ledger {ledger:.9e} J (rel {rel:.2e})"
            ));
        }
    }
    Ok(())
}

/// Sweeps `rates`, running the whole fleet once per load point, and
/// gates conservation per machine when the spec has metrics on.
///
/// # Errors
///
/// [`FleetError`] from any load point, or the conservation message
/// wrapped in the row label.
pub fn run_sweep(base: &FleetSpec, rates: &[f64]) -> Result<FleetBench, FleetError> {
    let mut rows = Vec::with_capacity(rates.len());
    for &rate_rps in rates {
        let spec = FleetSpec {
            rate_rps,
            ..base.clone()
        };
        let result = swallow_fleet::run(&spec)?;
        if spec.metrics {
            if let Err(msg) = check_conservation(&result) {
                return Err(FleetError::BadParameter(Box::leak(
                    format!("conservation failed at {rate_rps} rps: {msg}").into_boxed_str(),
                )));
            }
        }
        rows.push(FleetRow::from_result(rate_rps, &result));
    }
    Ok(FleetBench {
        machines: base.machines,
        arrivals: arrival_label(base.arrivals),
        seed: base.seed,
        requests: base.requests,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow::TimeDelta;

    fn tiny_spec() -> FleetSpec {
        FleetSpec {
            machines: 2,
            workers: 4,
            requests: 6,
            work: 2,
            drain: TimeDelta::from_us(200),
            metrics: true,
            ..FleetSpec::default()
        }
    }

    #[test]
    fn sweep_rows_are_well_formed_and_gated() {
        let bench = run_sweep(&tiny_spec(), &[100e3, 400e3]).expect("sweeps");
        assert_eq!(bench.rows.len(), 2);
        for r in &bench.rows {
            assert_eq!(r.offered, 12);
            assert_eq!(r.completed, 12);
            assert_eq!(r.wrong, 0);
            assert!(r.goodput_rps > 0.0);
            assert!(r.p50_ps > 0 && r.p50_ps <= r.p95_ps && r.p95_ps <= r.p99_ps);
            assert!(r.joules_per_request > 0.0);
        }
        // Higher offered load finishes sooner => higher goodput here
        // (same request count over a shorter horizon).
        assert!(bench.rows[1].goodput_rps > bench.rows[0].goodput_rps);
        let rendered = bench.to_string();
        assert!(rendered.contains("poisson"));
        assert!(rendered.contains("uJ/req"));
    }

    #[test]
    fn json_is_deterministic_and_complete() {
        let spec = tiny_spec();
        let a = run_sweep(&spec, &QUICK_RATES[..2]).expect("sweeps");
        let b = run_sweep(&spec, &QUICK_RATES[..2]).expect("sweeps");
        assert_eq!(a.to_json(), b.to_json(), "repeat runs are bit-identical");
        let json = a.to_json();
        for field in [
            "\"experiment\": \"fleet\"",
            "\"machines\": 2",
            "\"arrivals\": \"poisson\"",
            "\"seed\": 42",
            "\"rate_rps\":",
            "\"goodput_rps\":",
            "\"p99_ps\":",
            "\"joules_per_request\":",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert!(json.contains("}\n  ]\n}\n"));
    }

    #[test]
    fn conservation_gate_spots_missing_metrics() {
        let spec = FleetSpec {
            metrics: false,
            ..tiny_spec()
        };
        let result = swallow_fleet::run(&spec).expect("runs");
        assert!(check_conservation(&result).is_err());
    }
}
