//! Eq. 2 — instruction throughput vs active thread count.
//!
//! `IPSt = f / max(4, Nt)` and `IPSc = f · min(4, Nt) / 4`: per-thread
//! rate falls once more than four threads share the four-stage pipeline,
//! while aggregate throughput saturates at `f`. Measured by running `Nt`
//! busy threads on one simulated core and counting retirements.

use std::fmt;
use swallow::isa::{Assembler, NodeId, ThreadId};
use swallow::xcore::{Core, CoreConfig};
use swallow::Frequency;

/// One measurement row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Eq2Row {
    /// Active threads.
    pub threads: usize,
    /// Measured per-thread MIPS.
    pub per_thread_mips: f64,
    /// Eq. 2's per-thread prediction.
    pub formula_thread_mips: f64,
    /// Measured aggregate MIPS.
    pub aggregate_mips: f64,
    /// Eq. 2's aggregate prediction.
    pub formula_aggregate_mips: f64,
}

/// The whole experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct Eq2 {
    /// Core clock used.
    pub frequency: Frequency,
    /// One row per thread count 1..=8.
    pub rows: Vec<Eq2Row>,
}

/// Runs the sweep at `f` with a measurement window of `window` cycles.
pub fn run(f: Frequency, window: u64) -> Eq2 {
    let mut rows = Vec::new();
    for nt in 1..=8usize {
        let spawners = nt - 1;
        let src = format!(
            "
                ldc   r5, {spawners}
                ldap  r6, worker
            spawn:
                bf    r5, worker
                tspawn r7, r6, r5
                sub   r5, r5, 1
                bu    spawn
            worker:
                add   r1, r1, 1
                bu    worker
            "
        );
        let program = Assembler::new().assemble(&src).expect("assembles");
        let mut config = CoreConfig::swallow(NodeId(0));
        config.frequency = f;
        let mut core = Core::new(config);
        core.load_program(&program).expect("fits");
        for _ in 0..200 {
            core.tick(core.next_tick_at());
        }
        let before: Vec<u64> = (0..8).map(|t| core.thread_instret(ThreadId(t))).collect();
        for _ in 0..window {
            core.tick(core.next_tick_at());
        }
        let deltas: Vec<u64> = (0..8)
            .map(|t| core.thread_instret(ThreadId(t)) - before[t as usize])
            .filter(|&d| d > 0)
            .collect();
        let secs = (f.period() * window).as_secs_f64();
        let total: u64 = deltas.iter().sum();
        let per_thread = total as f64 / deltas.len() as f64 / secs / 1e6;
        let f_mips = f.as_mhz_f64();
        rows.push(Eq2Row {
            threads: nt,
            per_thread_mips: per_thread,
            formula_thread_mips: f_mips / (nt.max(4) as f64),
            aggregate_mips: total as f64 / secs / 1e6,
            formula_aggregate_mips: f_mips * (nt.min(4) as f64) / 4.0,
        });
    }
    Eq2 { frequency: f, rows }
}

impl fmt::Display for Eq2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Eq. 2 — thread scaling at {}:", self.frequency)?;
        writeln!(
            f,
            "{:>3} {:>16} {:>14} {:>16} {:>14}",
            "Nt", "IPSt meas", "IPSt=f/max(4,N)", "IPSc meas", "IPSc formula"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>3} {:>12.1} MIPS {:>10.1} MIPS {:>12.1} MIPS {:>10.1} MIPS",
                r.threads,
                r.per_thread_mips,
                r.formula_thread_mips,
                r.aggregate_mips,
                r.formula_aggregate_mips
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_match_the_formula_within_one_percent() {
        let eq2 = run(Frequency::from_mhz(500), 24_000);
        for r in &eq2.rows {
            let thread_err =
                (r.per_thread_mips - r.formula_thread_mips).abs() / r.formula_thread_mips;
            let agg_err =
                (r.aggregate_mips - r.formula_aggregate_mips).abs() / r.formula_aggregate_mips;
            assert!(thread_err < 0.01, "{r:?}");
            assert!(agg_err < 0.01, "{r:?}");
        }
    }

    #[test]
    fn aggregate_saturates_at_four_threads() {
        let eq2 = run(Frequency::from_mhz(400), 12_000);
        let at = |n: usize| eq2.rows[n - 1].aggregate_mips;
        assert!(at(2) > at(1) * 1.9);
        assert!((at(8) - at(4)).abs() / at(4) < 0.01);
        // Per-thread rate halves from 4 to 8 threads.
        let pt = |n: usize| eq2.rows[n - 1].per_thread_mips;
        assert!((pt(8) * 2.0 - pt(4)).abs() / pt(4) < 0.02);
    }
}
