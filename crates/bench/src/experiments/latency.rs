//! §V.C — communication latencies.
//!
//! The paper quotes: core-local word ≈50 ns (≈6 instructions), in-package
//! word ≈40 instructions, package-to-package word 360 ns (≈45
//! instructions), single token core-to-core 270 ns. We measure one-way
//! word latency by ping-pong (RTT/2 over many iterations, so setup code
//! amortises out) at each distance, and convert to "sending-thread
//! instructions" at the single-thread rate of f/4.

use std::fmt;
use swallow::noc::routing::Layer;
use swallow::{Assembler, GridSpec, NodeId, SystemBuilder, TimeDelta};
use swallow_workloads::codegen::chanend_rid;

/// One measured distance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyRow {
    /// Distance label.
    pub name: &'static str,
    /// Measured one-way latency (ns).
    pub one_way_ns: f64,
    /// In sending-thread instructions (8 ns each at 500 MHz, 1 thread).
    pub instructions: f64,
    /// Paper's figure for comparison (ns; instruction counts × 8 ns).
    pub paper_ns: f64,
}

/// The whole experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct Latency {
    /// One row per distance.
    pub rows: Vec<LatencyRow>,
}

/// Ping-pong `iters` words between two chanends on (possibly) different
/// cores; returns one-way ns.
fn ping_pong(grid: GridSpec, a: NodeId, b: NodeId, iters: u32) -> f64 {
    let mut system = SystemBuilder::new()
        .slices(grid.slices_x, grid.slices_y)
        .build()
        .expect("valid grid");
    if a == b {
        // Two threads on one core.
        let src = format!(
            "
                getr  r0, chanend
                getr  r1, chanend
                setd  r0, r1
                setd  r1, r0
                ldap  r2, echo
                tspawn r3, r2, r1
                getr  r4, timer
                in    r5, r4
                ldc   r6, {iters}
            pp:
                out   r0, r6
                in    r7, r0
                sub   r6, r6, 1
                bt    r6, pp
                in    r8, r4
                sub   r8, r8, r5
                print r8
                freet
            echo:
                in    r5, r0
                out   r0, r5
                bu    echo
            "
        );
        let program = Assembler::new().assemble(&src).expect("assembles");
        system.load_program(a, &program).expect("fits");
    } else {
        let peer = chanend_rid(b, 0);
        let initiator = format!(
            "
                getr  r0, chanend
                ldc   r1, {peer}
                setd  r0, r1
                getr  r4, timer
                in    r5, r4
                ldc   r6, {iters}
            pp:
                out   r0, r6
                in    r7, r0
                sub   r6, r6, 1
                bt    r6, pp
                in    r8, r4
                sub   r8, r8, r5
                print r8
                freet
            "
        );
        let me = chanend_rid(a, 0);
        let echo = format!(
            "
                getr  r0, chanend
                ldc   r1, {me}
                setd  r0, r1
            el:
                in    r5, r0
                out   r0, r5
                bu    el
            "
        );
        system
            .load_program(
                a,
                &Assembler::new().assemble(&initiator).expect("assembles"),
            )
            .expect("fits");
        system
            .load_program(b, &Assembler::new().assemble(&echo).expect("assembles"))
            .expect("fits");
    }
    // Run until the initiator prints its tick count.
    let deadline = TimeDelta::from_ms(100);
    let start = system.now();
    while system.output(a).is_empty() && system.now().since(start) < deadline {
        system.machine_mut().step();
    }
    let ticks: f64 = system
        .output(a)
        .trim()
        .parse()
        .expect("initiator printed tick count");
    // Timer ticks are 10 ns; RTT/2 per iteration.
    ticks * 10.0 / iters as f64 / 2.0
}

/// Runs all distances; `iters` ping-pongs per distance.
pub fn run(iters: u32) -> Latency {
    let one = GridSpec::ONE_SLICE;
    let two = GridSpec {
        slices_x: 2,
        slices_y: 1,
    };
    // Distances and paper anchors: 50 ns core-local, 40 instructions
    // in-package (×8 ns), 45 instructions / 360 ns between packages.
    let cases: [(&'static str, GridSpec, NodeId, NodeId, f64); 5] = [
        ("core-local", one, NodeId(0), NodeId(0), 50.0),
        (
            "in-package (internal link)",
            one,
            one.node_at(0, 0, Layer::Vertical),
            one.node_at(0, 0, Layer::Horizontal),
            40.0 * 8.0,
        ),
        (
            "package-to-package, vertical",
            one,
            one.node_at(0, 0, Layer::Vertical),
            one.node_at(0, 1, Layer::Vertical),
            45.0 * 8.0,
        ),
        (
            "package-to-package, horizontal",
            one,
            one.node_at(0, 0, Layer::Horizontal),
            one.node_at(1, 0, Layer::Horizontal),
            45.0 * 8.0,
        ),
        (
            "slice-to-slice (FFC)",
            two,
            two.node_at(3, 0, Layer::Horizontal),
            two.node_at(4, 0, Layer::Horizontal),
            // No separate paper figure: the FFC cable runs at the same
            // 62.5 Mbit/s as on-board traces (Table I), so latency
            // matches the package-to-package case; only energy differs.
            45.0 * 8.0,
        ),
    ];
    let rows = cases
        .into_iter()
        .map(|(name, grid, a, b, paper_ns)| {
            let one_way_ns = ping_pong(grid, a, b, iters);
            LatencyRow {
                name,
                one_way_ns,
                instructions: one_way_ns / 8.0,
                paper_ns,
            }
        })
        .collect();
    Latency { rows }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "§V.C — one-way 32-bit word latency (ping-pong RTT/2):")?;
        writeln!(
            f,
            "{:<32} {:>12} {:>14} {:>12}",
            "Path", "meas (ns)", "instructions", "paper (ns)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<32} {:>12.0} {:>14.1} {:>12.0}",
                r.name, r.one_way_ns, r.instructions, r.paper_ns
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_ladder_is_ordered() {
        let lat = run(32);
        let ns: Vec<f64> = lat.rows.iter().map(|r| r.one_way_ns).collect();
        // local < in-package < off-package; all off-package paths run at
        // the same Table I rate, so vertical ≈ horizontal ≈ FFC.
        assert!(ns[0] < ns[1], "{ns:?}");
        assert!(ns[1] < ns[2], "{ns:?}");
        assert!((ns[2] - ns[3]).abs() / ns[2] < 0.1, "{ns:?}");
        assert!((ns[2] - ns[4]).abs() / ns[2] < 0.1, "{ns:?}");
    }

    #[test]
    fn magnitudes_are_in_the_papers_regime() {
        let lat = run(32);
        for r in &lat.rows {
            // Same order of magnitude as the paper's figure (×/÷ 3).
            assert!(
                r.one_way_ns > r.paper_ns / 3.0 && r.one_way_ns < r.paper_ns * 3.0,
                "{}: {} ns vs paper {} ns",
                r.name,
                r.one_way_ns,
                r.paper_ns
            );
        }
    }
}
