//! The survey tables: candidate processors (Table II) and many-core
//! systems (Table III).
//!
//! These are comparison tables, not measurements; the value of
//! reproducing them in code is that the *selection predicate* (Table II's
//! "only the XS1-L meets all requirements") and the *derived column*
//! (Table III's µW/MHz) are computed, not transcribed — and Swallow's own
//! row in Table III comes out of this repository's power model.

use std::fmt;
use swallow::energy::core_power;

/// Memory configuration classes of Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemoryKind {
    /// Unified single-cycle SRAM (the XS1-L).
    UnifiedSram,
    /// Local + global SRAM (Epiphany).
    LocalGlobalSram,
    /// Flash instructions + SRAM data (MSP430, AVR).
    FlashPlusSram,
    /// Cached DRAM or unspecified cached hierarchy.
    Cached,
}

/// A candidate processor row (Table II).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// Processor name.
    pub name: &'static str,
    /// Cores × data width, e.g. (1, 32).
    pub cores_by_width: (u16, u16),
    /// Superscalar issue.
    pub superscalar: bool,
    /// Has (or requires) a cache.
    pub cache: bool,
    /// Memory configuration.
    pub memory: MemoryKind,
    /// Has a multi-core interconnect that scales beyond one chip.
    pub scalable_interconnect: bool,
    /// Time-deterministic execution (scheduling + memory).
    pub time_deterministic: bool,
}

impl Candidate {
    /// The paper's requirement predicate (§IV.A): a scalable interconnect
    /// *and* time-deterministic execution.
    pub fn meets_requirements(&self) -> bool {
        self.scalable_interconnect && self.time_deterministic
    }
}

/// Table II, transcribed. `ARM Cortex M` is time-deterministic only
/// without a cache, which the paper renders as "W/o cache"; it still
/// fails the interconnect requirement.
pub fn table2_candidates() -> Vec<Candidate> {
    vec![
        Candidate {
            name: "ARM Cortex M",
            cores_by_width: (1, 32),
            superscalar: false,
            cache: false, // optional; deterministic only without it
            memory: MemoryKind::Cached,
            scalable_interconnect: false,
            time_deterministic: true,
        },
        Candidate {
            name: "ARM Cortex A, single core",
            cores_by_width: (1, 32),
            superscalar: true,
            cache: true,
            memory: MemoryKind::Cached,
            scalable_interconnect: false,
            time_deterministic: false,
        },
        Candidate {
            name: "ARM Cortex A, multi-core",
            cores_by_width: (4, 32),
            superscalar: true,
            cache: true,
            memory: MemoryKind::Cached,
            scalable_interconnect: false, // coherent memory, not a NoC
            time_deterministic: false,
        },
        Candidate {
            name: "Adapteva Epiphany",
            cores_by_width: (64, 32),
            superscalar: true,
            cache: false,
            memory: MemoryKind::LocalGlobalSram,
            scalable_interconnect: true,
            time_deterministic: false,
        },
        Candidate {
            name: "XMOS XS1-L",
            cores_by_width: (1, 32),
            superscalar: false,
            cache: false,
            memory: MemoryKind::UnifiedSram,
            scalable_interconnect: true,
            time_deterministic: true,
        },
        Candidate {
            name: "MSP430",
            cores_by_width: (1, 16),
            superscalar: false,
            cache: false,
            memory: MemoryKind::FlashPlusSram,
            scalable_interconnect: false,
            time_deterministic: true,
        },
        Candidate {
            name: "AVR",
            cores_by_width: (1, 8),
            superscalar: false,
            cache: false,
            memory: MemoryKind::FlashPlusSram,
            scalable_interconnect: false,
            time_deterministic: false,
        },
        Candidate {
            name: "Quark",
            cores_by_width: (1, 32),
            superscalar: false,
            cache: true,
            memory: MemoryKind::Cached,
            scalable_interconnect: false, // Ethernet only
            time_deterministic: false,
        },
    ]
}

/// A surveyed many-core system row (Table III).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SurveyedSystem {
    /// System name.
    pub name: &'static str,
    /// Instruction set.
    pub isa: &'static str,
    /// Cores per chip.
    pub cores_per_chip: u32,
    /// Total cores demonstrated (range rendered as min–max).
    pub total_cores: (u32, u32),
    /// Technology node in nanometres.
    pub tech_nm: u32,
    /// Power per core in milliwatts (representative value).
    pub power_per_core_mw: f64,
    /// Operating frequency in MHz.
    pub frequency_mhz: f64,
}

impl SurveyedSystem {
    /// The derived µW/MHz column of Table III.
    pub fn microwatts_per_mhz(&self) -> f64 {
        self.power_per_core_mw * 1000.0 / self.frequency_mhz
    }
}

/// Swallow's own Table III row, *derived from this repository's power
/// model*: the µW/MHz figure is Eq. 1's dynamic slope (0.30 mW/MHz =
/// 300 µW/MHz), exactly how the paper computes it.
pub fn swallow_row() -> SurveyedSystem {
    let slope_uw_per_mhz =
        (core_power::IDLE_NJ_PER_CYCLE + core_power::ACTIVE_SLOT_NJ_AVG) * 1000.0;
    let f_mhz = 500.0;
    SurveyedSystem {
        name: "Swallow",
        isa: "XS1",
        cores_per_chip: 2,
        total_cores: (16, 480),
        tech_nm: 65,
        power_per_core_mw: core_power::STATIC_MW + slope_uw_per_mhz / 1000.0 * f_mhz,
        frequency_mhz: f_mhz,
    }
}

/// Table III, transcribed (Swallow's row is derived; see [`swallow_row`]).
pub fn table3_systems() -> Vec<SurveyedSystem> {
    vec![
        swallow_row(),
        SurveyedSystem {
            name: "SpiNNaker",
            isa: "ARM9",
            cores_per_chip: 17,
            total_cores: (1_036_800, 1_036_800),
            tech_nm: 130,
            power_per_core_mw: 87.0,
            frequency_mhz: 200.0,
        },
        SurveyedSystem {
            name: "Centip3De",
            isa: "Cortex-M3",
            cores_per_chip: 64,
            total_cores: (64, 64),
            tech_nm: 130,
            // 203–1851 mW depending on configuration; µW/MHz uses the
            // configuration pairing 1851 mW with 80 MHz → 23 100 ≈ the
            // paper's 2540–2300 range × 10 (the paper divides per
            // near-threshold cluster); we keep the low configuration.
            power_per_core_mw: 203.0,
            frequency_mhz: 80.0,
        },
        SurveyedSystem {
            name: "Tile64",
            isa: "Tile",
            cores_per_chip: 64,
            total_cores: (64, 480),
            tech_nm: 130,
            power_per_core_mw: 300.0,
            frequency_mhz: 1000.0,
        },
        SurveyedSystem {
            name: "Epiphany-IV",
            isa: "Epiphany",
            cores_per_chip: 64,
            total_cores: (64, 64),
            tech_nm: 28,
            power_per_core_mw: 31.0,
            frequency_mhz: 800.0,
        },
    ]
}

/// Renders Table II.
pub struct Table2(pub Vec<Candidate>);

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<28} {:>11} {:>6} {:>6} {:>13} {:>14}",
            "Processor", "cores×width", "super", "cache", "interconnect", "deterministic"
        )?;
        for c in &self.0 {
            writeln!(
                f,
                "{:<28} {:>7}x{:<3} {:>6} {:>6} {:>13} {:>14}{}",
                c.name,
                c.cores_by_width.0,
                c.cores_by_width.1,
                if c.superscalar { "yes" } else { "no" },
                if c.cache { "yes" } else { "no" },
                if c.scalable_interconnect { "yes" } else { "no" },
                if c.time_deterministic { "yes" } else { "no" },
                if c.meets_requirements() {
                    "  <= meets all"
                } else {
                    ""
                },
            )?;
        }
        Ok(())
    }
}

/// Renders Table III.
pub struct Table3(pub Vec<SurveyedSystem>);

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:<10} {:>10} {:>14} {:>8} {:>12} {:>10} {:>9}",
            "System", "ISA", "cores/chip", "total cores", "node", "mW/core", "MHz", "uW/MHz"
        )?;
        for s in &self.0 {
            let total = if s.total_cores.0 == s.total_cores.1 {
                format!("{}", s.total_cores.0)
            } else {
                format!("{}-{}", s.total_cores.0, s.total_cores.1)
            };
            writeln!(
                f,
                "{:<12} {:<10} {:>10} {:>14} {:>6}nm {:>12.0} {:>10.0} {:>9.1}",
                s.name,
                s.isa,
                s.cores_per_chip,
                total,
                s.tech_nm,
                s.power_per_core_mw,
                s.frequency_mhz,
                s.microwatts_per_mhz(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_xs1_meets_all_requirements() {
        let passing: Vec<&str> = table2_candidates()
            .iter()
            .filter(|c| c.meets_requirements())
            .map(|c| c.name)
            .collect();
        assert_eq!(passing, ["XMOS XS1-L"]);
    }

    #[test]
    fn swallow_uw_per_mhz_matches_table3() {
        // Table III lists Swallow at 300 µW/MHz (Eq. 1's slope).
        let row = swallow_row();
        assert!(
            (row.microwatts_per_mhz() - (300.0 + 46.0 * 1000.0 / 500.0 / 1.0)).abs() < 110.0,
            "uW/MHz = {}",
            row.microwatts_per_mhz()
        );
        // Using the paper's convention (dynamic slope only):
        let slope = (core_power::IDLE_NJ_PER_CYCLE + core_power::ACTIVE_SLOT_NJ_AVG) * 1000.0;
        assert!((slope - 300.0).abs() < 1e-9);
        // And the mW/core column reproduces the 193 mW headline (±3).
        assert!((row.power_per_core_mw - 193.0).abs() < 4.0);
    }

    #[test]
    fn spinnaker_derivation_matches_paper() {
        let spinnaker = table3_systems()
            .into_iter()
            .find(|s| s.name == "SpiNNaker")
            .expect("present");
        assert!((spinnaker.microwatts_per_mhz() - 435.0).abs() < 1.0);
    }

    #[test]
    fn swallow_sits_mid_range_for_power_per_core() {
        // §VI: "Swallow's power per core is in the middle of the surveyed
        // range".
        let systems = table3_systems();
        let swallow = swallow_row().power_per_core_mw;
        let below = systems
            .iter()
            .filter(|s| s.power_per_core_mw < swallow)
            .count();
        let above = systems
            .iter()
            .filter(|s| s.power_per_core_mw > swallow)
            .count();
        assert!(below >= 1 && above >= 1);
    }

    #[test]
    fn tables_render() {
        let t2 = Table2(table2_candidates()).to_string();
        assert!(t2.contains("XMOS XS1-L"));
        assert!(t2.contains("meets all"));
        let t3 = Table3(table3_systems()).to_string();
        assert!(t3.contains("Swallow"));
        assert!(t3.contains("uW/MHz"));
    }
}
