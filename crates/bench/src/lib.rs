//! Experiment harnesses reproducing every table and figure of the paper.
//!
//! Each experiment module exposes a `run(...)` returning a typed result
//! with the same rows/series the paper reports, plus a `Display`
//! rendering. The `reproduce` binary prints all of them; the Criterion
//! benches under `benches/` time representative simulation points and
//! print the rows as they go.
//!
//! | module | paper artefact |
//! |---|---|
//! | [`experiments::table1`] | Table I — per-bit link energies |
//! | [`experiments::fig2`] | Fig. 2 — node power breakdown |
//! | [`experiments::fig3`] | Fig. 3 — power vs frequency |
//! | [`experiments::fig4`] | Fig. 4 — DVFS savings |
//! | [`survey`] (Table II) | candidate processor comparison |
//! | [`experiments::eq2`] | Eq. 2 — IPS vs thread count |
//! | [`experiments::latency`] | §V.C — communication latencies |
//! | [`experiments::overhead`] | §V.B — packet protocol overhead |
//! | [`experiments::ec_ratio`] | §V.D — EC ratio ladder |
//! | [`survey`] (Table III) | many-core system survey |
//! | [`experiments::system_power`] | §III.A headline numbers |

pub mod experiments;
pub mod survey;
