//! Regenerates every table and figure of the paper from simulation.
//!
//! ```text
//! cargo run --release -p swallow-bench --bin reproduce            # everything
//! cargo run --release -p swallow-bench --bin reproduce fig3 ec   # a subset
//! cargo run --release -p swallow-bench --bin reproduce --quick   # smaller workloads
//! ```
//!
//! Experiment names: table1 fig2 fig3 fig4 table2 eq2 latency overhead ec
//! table3 system system480 ablation proportionality throughput resilience
//! fleet.
//!
//! The fleet experiment sweeps an open-loop arrival rate over a fleet of
//! independent machines and writes `BENCH_fleet.json` (offered load,
//! goodput, p50/p95/p99 latency, joules per request — bit-identical
//! across repeat runs and host thread counts), running the per-machine
//! conservation gate on every load point:
//!
//! ```text
//! reproduce fleet --machines 4 --arrivals poisson --seed 42
//! reproduce fleet --machines 2 --arrivals bursty:16 --threads 8 --quick
//! ```
//!
//! The throughput experiment additionally writes its rows to
//! `BENCH_throughput.json` in the working directory, and accepts engine
//! overrides for one-off measurements:
//!
//! ```text
//! reproduce throughput --engine parallel --threads 8 --grid 2x2
//! reproduce throughput --engine lockstep --grid 1x1
//! ```
//!
//! `--engine {lockstep,fastforward,parallel}` pins the engine (default:
//! the full sweep over every engine), `--threads N` sets the parallel
//! engine's host thread count (0 = one per host CPU), and `--grid WxH`
//! sizes the measured machine in slices for the pinned-engine run.
//!
//! The observability layer is exercised with `--trace` / `--metrics`,
//! and deterministic faults are injected with `--faults`:
//!
//! ```text
//! reproduce --trace out.json --metrics out.csv
//! reproduce --trace out.json --engine parallel --threads 4
//! reproduce --faults "kill-link:0@2us, corrupt:8@5us+2us, brownout:600@12us+3us"
//! ```
//!
//! Any of the three flags switches to a dedicated instrumented run (a
//! six-stage pipeline on the configured grid, honouring `--engine`/
//! `--threads`/`--grid`): `--trace` writes the merged event log as
//! Chrome `trace_event` JSON (open in Perfetto), `--metrics` writes the
//! per-supply power time series as CSV, and `--faults` replays the given
//! fault schedule (grammar: `FaultPlan::parse`) while the run's fault
//! and recovery counters are reported. Every instrumented run checks
//! that the integrated supply series reproduces the energy-ledger total
//! and exits non-zero when conservation fails.
//!
//! Deterministic checkpointing (`SWLWSNAP` format, DESIGN.md §3.13):
//!
//! ```text
//! reproduce --snapshot-at 3000000 --snapshot-out warm.snap   # write at t = 3 µs
//! reproduce --restore warm.snap                              # continue bit-identically
//! reproduce --restore warm.snap --engine parallel --threads 4
//! ```
//!
//! `--snapshot-at <ps>` runs the instrumented pipeline to the given
//! simulated instant and serializes the whole machine; `--restore
//! <file>` resumes one (under any engine — the continuation is
//! bit-identical regardless), and performs the same always-on
//! conservation check as a cold run.

use std::path::Path;
use std::time::Instant;
use swallow::{EngineMode, FaultPlan, Frequency, SystemBuilder, TimeDelta};
use swallow_bench::experiments::{
    ablation, ec_ratio, eq2, fig2, fig3, fig4, fleet, latency, overhead, proportionality,
    resilience, system_power, table1, throughput,
};
use swallow_bench::survey;
use swallow_fleet::{ArrivalKind, FleetSpec};
use swallow_workloads::pipeline::{self, PipelineSpec};

const ALL: [&str; 17] = [
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "table2",
    "eq2",
    "latency",
    "overhead",
    "ec",
    "table3",
    "system",
    "system480",
    "ablation",
    "proportionality",
    "throughput",
    "resilience",
    "fleet",
];

/// Engine/threads/grid overrides parsed from the command line.
struct EngineOverride {
    engine: Option<EngineMode>,
    /// Raw `--threads` value (also reused as the fleet's host threads).
    threads: usize,
    grid: (u16, u16),
    trace: Option<String>,
    metrics: Option<String>,
    faults: Option<FaultPlan>,
    /// Write a `SWLWSNAP` snapshot at this simulated instant (ps).
    snapshot_at: Option<u64>,
    /// Snapshot destination (default `swallow.snap`).
    snapshot_out: String,
    /// Resume an instrumented run from a snapshot file.
    restore: Option<String>,
    /// Fleet size for the fleet experiment.
    machines: usize,
    /// Fleet arrival process.
    arrivals: ArrivalKind,
    /// Fleet seed.
    seed: u64,
}

/// Pulls `--engine`, `--threads` and `--grid` (each `--flag value` or
/// `--flag=value`) out of `args`, leaving every other argument in place.
fn parse_engine_override(args: &mut Vec<String>) -> EngineOverride {
    let mut take = |flag: &str| -> Option<String> {
        let mut i = 0;
        while i < args.len() {
            if let Some(v) = args[i].strip_prefix(&format!("{flag}=")) {
                let v = v.to_owned();
                args.remove(i);
                return Some(v);
            }
            if args[i] == flag {
                args.remove(i);
                if i < args.len() {
                    return Some(args.remove(i));
                }
                die(&format!("{flag} needs a value"));
            }
            i += 1;
        }
        None
    };
    let threads: usize = take("--threads")
        .map(|t| {
            t.parse()
                .unwrap_or_else(|_| die("--threads wants a number"))
        })
        .unwrap_or(0);
    let engine = take("--engine").map(|name| match name.as_str() {
        "lockstep" => EngineMode::LockStep,
        "fastforward" => EngineMode::FastForward,
        "parallel" => EngineMode::Parallel { threads },
        other => die(&format!(
            "unknown engine `{other}`; known: lockstep fastforward parallel"
        )),
    });
    let grid = take("--grid")
        .map(|g| {
            let parse = || -> Option<(u16, u16)> {
                let (w, h) = g.split_once('x')?;
                Some((w.parse().ok()?, h.parse().ok()?))
            };
            parse().unwrap_or_else(|| die("--grid wants WxH, e.g. 2x2"))
        })
        .unwrap_or((1, 1));
    let trace = take("--trace");
    let metrics = take("--metrics");
    let faults = take("--faults")
        .map(|spec| FaultPlan::parse(&spec).unwrap_or_else(|e| die(&format!("--faults: {e}"))));
    let snapshot_at = take("--snapshot-at").map(|ps| {
        ps.parse()
            .unwrap_or_else(|_| die("--snapshot-at wants a picosecond count"))
    });
    let snapshot_out = take("--snapshot-out").unwrap_or_else(|| "swallow.snap".to_owned());
    let restore = take("--restore");
    let machines = take("--machines")
        .map(|m| {
            m.parse()
                .ok()
                .filter(|&m| m >= 1)
                .unwrap_or_else(|| die("--machines wants a positive number"))
        })
        .unwrap_or(4);
    let arrivals = take("--arrivals")
        .map(|a| {
            ArrivalKind::parse(&a)
                .unwrap_or_else(|| die("--arrivals wants poisson, bursty or bursty:N"))
        })
        .unwrap_or(ArrivalKind::Poisson);
    let seed = take("--seed")
        .map(|s| s.parse().unwrap_or_else(|_| die("--seed wants a number")))
        .unwrap_or(42);
    EngineOverride {
        engine,
        threads,
        grid,
        trace,
        metrics,
        faults,
        snapshot_at,
        snapshot_out,
        restore,
        machines,
        arrivals,
        seed,
    }
}

/// The `--trace`/`--metrics`/`--faults` run: a six-stage pipeline on the
/// configured grid with the observability layer on, faults replayed, and
/// the results exported to the requested files.
fn run_observability(overrides: &EngineOverride) {
    let mut system = match overrides.restore.as_deref() {
        // Warm start: the snapshot carries the whole machine — grid,
        // engine, fault plan, metrics series — so only an explicit
        // `--engine` override applies on top.
        Some(path) => {
            let bytes =
                std::fs::read(path).unwrap_or_else(|e| die(&format!("could not read {path}: {e}")));
            let mut system = swallow::SwallowSystem::restore(&bytes)
                .unwrap_or_else(|e| die(&format!("could not restore {path}: {e}")));
            if let Some(engine) = overrides.engine {
                system.machine_mut().set_engine(engine);
            }
            println!(
                "restored {path} at t = {} ps ({} cores, {:?})",
                system.now().as_ps(),
                system.core_count(),
                system.machine().engine()
            );
            system
        }
        None => {
            let engine = overrides.engine.unwrap_or(EngineMode::FastForward);
            let (w, h) = overrides.grid;
            let mut builder = SystemBuilder::new().slices(w, h).engine(engine).metrics();
            if overrides.trace.is_some() {
                builder = builder.tracing();
            }
            if let Some(plan) = overrides.faults.clone() {
                builder = builder.faults(plan);
            }
            let mut system = builder.build().unwrap_or_else(|e| die(&e.to_string()));
            let spec = PipelineSpec {
                stages: 6,
                items: 24,
                work_per_item: 3,
            };
            let placement = pipeline::generate(&spec, system.machine().spec())
                .unwrap_or_else(|e| die(&format!("pipeline generation failed: {e}")));
            placement
                .apply(&mut system)
                .unwrap_or_else(|e| die(&format!("pipeline load failed: {e}")));
            system
        }
    };
    if let Some(at_ps) = overrides.snapshot_at {
        let now_ps = system.now().as_ps();
        if at_ps > now_ps {
            system.run_for(TimeDelta::from_ps(at_ps - now_ps));
        }
        let image = system.snapshot();
        let path = &overrides.snapshot_out;
        match std::fs::write(path, &image) {
            Ok(()) => println!(
                "  wrote {path} ({} bytes at t = {} ps)",
                image.len(),
                system.now().as_ps()
            ),
            Err(e) => die(&format!("could not write {path}: {e}")),
        }
    }
    let (w, h) = {
        let spec = system.machine().spec();
        (spec.slices_x, spec.slices_y)
    };
    let engine = system.machine().engine();
    let quiescent = system.run_until_quiescent(TimeDelta::from_ms(20));
    system.flush_metrics();

    println!("observability run ({engine:?}, {w}x{h} slices, quiescent: {quiescent}):");
    println!("{}", system.metrics_report());
    if let Some(path) = overrides.trace.as_deref() {
        let log = system.trace_log();
        match swallow::write_chrome_trace(Path::new(path), &log) {
            Ok(()) => println!(
                "  wrote {path} ({} trace records, {} dropped)",
                log.len(),
                log.dropped
            ),
            Err(e) => die(&format!("could not write {path}: {e}")),
        }
    }
    if let Some(path) = overrides.metrics.as_deref() {
        let rows = system.machine().metrics().rows();
        match swallow::write_supply_csv(Path::new(path), rows) {
            Ok(()) => println!("  wrote {path} ({} supply rows)", rows.len()),
            Err(e) => die(&format!("could not write {path}: {e}")),
        }
    }
    // The conservation gate runs on every instrumented run — warm
    // starts from a snapshot included, since the snapshot carries the
    // metrics series: the integrated supply series must reproduce the
    // energy-ledger total, faults or no faults, restore or no restore.
    if system.machine().metrics().is_enabled() {
        let metered = system.machine().metrics().total_energy().as_joules();
        let ledger = system.machine().machine_ledger().total().as_joules();
        let rel = (metered - ledger).abs() / ledger.abs().max(f64::MIN_POSITIVE);
        println!(
            "  conservation: integrated {metered:.9e} J vs ledger {ledger:.9e} J (rel {rel:.2e})"
        );
        if rel > 1e-9 {
            die("metered supply series does not integrate back to the energy ledger");
        }
    } else {
        println!("  conservation: skipped (snapshot was taken without the metrics hub enabled)");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let overrides = parse_engine_override(&mut args);
    if overrides.trace.is_some()
        || overrides.metrics.is_some()
        || overrides.faults.is_some()
        || overrides.snapshot_at.is_some()
        || overrides.restore.is_some()
    {
        run_observability(&overrides);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let wanted = |name: &str| {
        if selected.is_empty() {
            // system480 is expensive; only on request or with everything
            // in non-quick mode.
            name != "system480" || !quick
        } else {
            selected.contains(&name)
        }
    };
    for name in ALL {
        if !wanted(name) {
            continue;
        }
        let t0 = Instant::now();
        println!("==================================================================");
        match name {
            "table1" => println!("{}", table1::run(if quick { 128 } else { 512 })),
            "fig2" => println!(
                "{}",
                fig2::run(TimeDelta::from_us(if quick { 20 } else { 60 }))
            ),
            "fig3" => println!("{}", fig3::run(if quick { 6_000 } else { 30_000 })),
            "fig4" => println!("{}", fig4::run(if quick { 4_000 } else { 20_000 })),
            "table2" => {
                println!("Table II — candidate Swallow processors:");
                println!("{}", survey::Table2(survey::table2_candidates()));
            }
            "eq2" => println!(
                "{}",
                eq2::run(
                    Frequency::from_mhz(500),
                    if quick { 12_000 } else { 48_000 }
                )
            ),
            "latency" => println!("{}", latency::run(if quick { 16 } else { 64 })),
            "overhead" => println!("{}", overhead::run(if quick { 128 } else { 512 })),
            "ec" => println!("{}", ec_ratio::run(if quick { 64 } else { 256 })),
            "table3" => {
                println!(
                    "Table III — many-core system survey (Swallow row derived from the model):"
                );
                println!("{}", survey::Table3(survey::table3_systems()));
            }
            "system" => println!(
                "{}",
                system_power::run(TimeDelta::from_us(if quick { 10 } else { 40 }))
            ),
            "proportionality" => println!(
                "{}",
                proportionality::run(Frequency::from_mhz(500), if quick { 6_000 } else { 24_000 })
            ),
            "ablation" => println!(
                "{}",
                ablation::run(if quick { 64 } else { 256 }, if quick { 16 } else { 64 })
            ),
            "system480" => {
                println!("§III.A — direct 480-core machine run (6×5 slices, fully loaded):");
                let span = TimeDelta::from_ns(if quick { 500 } else { 2_000 });
                let (gips, watts) = system_power::run_480(span);
                println!("  measured: {gips:.1} GIPS, {watts:.1} W at the 5 V inputs");
                println!("  paper:    240 GIPS, 134 W");
            }
            "throughput" => {
                let span = TimeDelta::from_us(if quick { 5 } else { 20 });
                let t = match overrides.engine {
                    // Pinned engine: one busy-grid measurement.
                    Some(engine) => {
                        let (w, h) = overrides.grid;
                        let scenario: &'static str =
                            Box::leak(format!("busy-{w}x{h}").into_boxed_str());
                        throughput::Throughput {
                            rows: vec![throughput::measure(scenario, engine, (w, h), 1, span)],
                        }
                    }
                    None => throughput::run(span),
                };
                println!("{t}");
                let path = std::path::Path::new("BENCH_throughput.json");
                match t.write_json(path) {
                    Ok(()) => println!("  wrote {}", path.display()),
                    Err(e) => eprintln!("  could not write {}: {e}", path.display()),
                }
            }
            "fleet" => {
                let rates: &[f64] = if quick {
                    &fleet::QUICK_RATES
                } else {
                    &fleet::DEFAULT_RATES
                };
                let base = FleetSpec {
                    machines: overrides.machines,
                    workers: 8,
                    requests: if quick { 48 } else { 128 },
                    work: 8,
                    arrivals: overrides.arrivals,
                    seed: overrides.seed,
                    threads: if overrides.threads == 0 {
                        throughput::host_parallelism()
                    } else {
                        overrides.threads
                    },
                    drain: TimeDelta::from_ms(1),
                    metrics: true,
                    ..FleetSpec::default()
                };
                // run_sweep gates conservation per machine per load point.
                match fleet::run_sweep(&base, rates) {
                    Ok(bench) => {
                        println!("{bench}");
                        let path = std::path::Path::new("BENCH_fleet.json");
                        match bench.write_json(path) {
                            Ok(()) => println!("  wrote {}", path.display()),
                            Err(e) => eprintln!("  could not write {}: {e}", path.display()),
                        }
                    }
                    Err(e) => die(&format!("fleet sweep failed: {e}")),
                }
            }
            "resilience" => {
                let r = resilience::run(quick);
                println!("{r}");
                let path = std::path::Path::new("BENCH_resilience.json");
                match r.write_json(path) {
                    Ok(()) => println!("  wrote {}", path.display()),
                    Err(e) => eprintln!("  could not write {}: {e}", path.display()),
                }
            }
            other => {
                eprintln!("unknown experiment `{other}`; known: {ALL:?}");
                std::process::exit(2);
            }
        }
        println!("[{name} took {:.2?}]", t0.elapsed());
    }
}
