//! Simulator throughput: the cost of the fast-forward engine against the
//! lock-step reference on a busy slice, an idle 480-core machine and a
//! 10 %-active 480-core machine. Prints the simulated-cycles/s and
//! simulated-MIPS table, then times each scenario × engine pair.

use swallow::{EngineMode, TimeDelta};
use swallow_bench::experiments::throughput;
use swallow_testkit::criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", throughput::run(TimeDelta::from_us(20)));
    let span = TimeDelta::from_us(10);
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    for (scenario, slices, stride) in [
        ("busy_slice", (1u16, 1u16), 1usize),
        ("idle_480", (6, 5), 0),
        ("active10_480", (6, 5), 10),
    ] {
        for engine in [EngineMode::LockStep, EngineMode::FastForward] {
            g.bench_function(&format!("{scenario}_{engine:?}"), |b| {
                b.iter(|| throughput::measure(scenario, engine, slices, stride, span))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
