//! Fig. 4 — DVFS savings. Prints the scaled sweep (with simulated
//! verification), then times it at a reduced window.

use swallow_bench::experiments::fig4;
use swallow_testkit::criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", fig4::run(10_000));
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("dvfs_sweep_2k_cycles", |b| b.iter(|| fig4::run(2_000)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
