//! Eq. 2 — IPS vs thread count. Prints measured vs formula, then times
//! the eight-point sweep.

use swallow::Frequency;
use swallow_bench::experiments::eq2;
use swallow_testkit::criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", eq2::run(Frequency::from_mhz(500), 24_000));
    let mut g = c.benchmark_group("eq2");
    g.sample_size(10);
    g.bench_function("thread_sweep_6k_cycles", |b| {
        b.iter(|| eq2::run(Frequency::from_mhz(500), 6_000))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
