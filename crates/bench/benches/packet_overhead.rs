//! §V.B — packet protocol overhead vs packet size. Prints the sweep,
//! then times it at a reduced volume.

use swallow_bench::experiments::overhead;
use swallow_testkit::criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", overhead::run(512));
    let mut g = c.benchmark_group("overhead");
    g.sample_size(10);
    g.bench_function("packet_size_sweep_128_words", |b| {
        b.iter(|| overhead::run(128))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
