//! §III — energy proportionality in load. Prints the sweep and the
//! linear fit, then times it at a reduced window.

use swallow::Frequency;
use swallow_bench::experiments::proportionality;
use swallow_testkit::criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", proportionality::run(Frequency::from_mhz(500), 12_000));
    let mut g = c.benchmark_group("proportionality");
    g.sample_size(10);
    g.bench_function("load_sweep_3k_cycles", |b| {
        b.iter(|| proportionality::run(Frequency::from_mhz(500), 3_000))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
