//! §V.D — EC ratio ladder. Prints analytic + measured ratios, then times
//! the five-scenario run at a reduced volume.

use swallow_bench::experiments::ec_ratio;
use swallow_testkit::criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", ec_ratio::run(128));
    let mut g = c.benchmark_group("ec");
    g.sample_size(10);
    g.bench_function("five_scenarios_32_words", |b| b.iter(|| ec_ratio::run(32)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
