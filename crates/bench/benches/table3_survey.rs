//! Table III — many-core system survey. Prints the table (with Swallow's
//! row derived from the power model) and times the derivation.

use swallow_bench::survey::{swallow_row, table3_systems, Table3};
use swallow_testkit::criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("Table III — many-core system survey:");
    println!("{}", Table3(table3_systems()));
    let mut g = c.benchmark_group("table3");
    g.bench_function("derive_swallow_row", |b| {
        b.iter(|| swallow_row().microwatts_per_mhz())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
