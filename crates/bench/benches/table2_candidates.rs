//! Table II — candidate processor comparison. Prints the table and times
//! the requirement predicate (trivially fast; kept for completeness of
//! the one-bench-per-table rule).

use swallow_bench::survey::{table2_candidates, Table2};
use swallow_testkit::criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("Table II — candidate Swallow processors:");
    println!("{}", Table2(table2_candidates()));
    let mut g = c.benchmark_group("table2");
    g.bench_function("requirement_predicate", |b| {
        b.iter(|| {
            table2_candidates()
                .iter()
                .filter(|c| c.meets_requirements())
                .count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
