//! Ablations: link aggregation width and routing strategy. Prints both
//! tables, then times the aggregation sweep.

use swallow_bench::experiments::ablation;
use swallow_testkit::criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", ablation::run(128, 32));
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("aggregation_sweep_32_words", |b| {
        b.iter(|| ablation::run(32, 8))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
