//! §III.A — headline system power/throughput. Prints the loaded-slice
//! measurements and extrapolations, then times a short loaded-slice run.

use swallow::TimeDelta;
use swallow_bench::experiments::system_power;
use swallow_testkit::criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", system_power::run(TimeDelta::from_us(20)));
    let mut g = c.benchmark_group("system");
    g.sample_size(10);
    g.bench_function("loaded_slice_5us", |b| {
        b.iter(|| system_power::run(TimeDelta::from_us(5)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
