//! Fig. 2 — node power breakdown. Prints the reproduced split, then times
//! the loaded-node measurement.

use swallow::TimeDelta;
use swallow_bench::experiments::fig2;
use swallow_testkit::criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", fig2::run(TimeDelta::from_us(40)));
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("loaded_node_10us", |b| {
        b.iter(|| fig2::run(TimeDelta::from_us(10)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
