//! §V.C — communication latency ladder. Prints the measured one-way
//! latencies, then times a single core-local ping-pong measurement.

use swallow_bench::experiments::latency;
use swallow_testkit::criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", latency::run(64));
    let mut g = c.benchmark_group("latency");
    g.sample_size(10);
    g.bench_function("ladder_16_pings", |b| b.iter(|| latency::run(16)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
