//! Fig. 3 — power vs frequency. Prints the sweep and the Eq. 1 fit, then
//! times one sweep point.

use swallow_bench::experiments::fig3;
use swallow_testkit::criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", fig3::run(20_000));
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("sweep_4k_cycles_per_point", |b| b.iter(|| fig3::run(4_000)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
