//! Table I — per-bit link energies. Prints the reproduced table, then
//! times the on-chip stream measurement.

use swallow_bench::experiments::table1;
use swallow_testkit::criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", table1::run(256));
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("link_energy_sweep_64_words", |b| b.iter(|| table1::run(64)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
