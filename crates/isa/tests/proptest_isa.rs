//! Property tests over the ISA: encode/decode and assemble/disassemble are
//! mutually inverse for arbitrary instructions.

use swallow_isa::{
    decode, encode, Assembler, ControlToken, HostcallFn, Instr, MemOffset, Reg, ResType,
};
use swallow_testkit::proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0usize..14).prop_map(|i| Reg::from_index(i).expect("valid index"))
}

fn any_mem_offset() -> impl Strategy<Value = MemOffset> {
    prop_oneof![
        any_reg().prop_map(MemOffset::Reg),
        any::<i16>().prop_map(MemOffset::Imm),
    ]
}

fn any_res_type() -> impl Strategy<Value = ResType> {
    prop_oneof![
        Just(ResType::Chanend),
        Just(ResType::Timer),
        Just(ResType::Sync),
        Just(ResType::Lock),
        Just(ResType::PowerProbe),
    ]
}

fn any_ct() -> impl Strategy<Value = ControlToken> {
    any::<u8>().prop_map(ControlToken)
}

fn any_off() -> impl Strategy<Value = i32> {
    (i16::MIN as i32)..=(i16::MAX as i32)
}

fn any_instr() -> impl Strategy<Value = Instr> {
    let r = any_reg;
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Ret),
        Just(Instr::FreeT),
        Just(Instr::Waiteu),
        (r(), r(), r()).prop_map(|(d, a, b)| Instr::Add { d, a, b }),
        (r(), r(), r()).prop_map(|(d, a, b)| Instr::Sub { d, a, b }),
        (r(), r(), r()).prop_map(|(d, a, b)| Instr::Mul { d, a, b }),
        (r(), r(), r()).prop_map(|(d, a, b)| Instr::Divs { d, a, b }),
        (r(), r(), r()).prop_map(|(d, a, b)| Instr::Xor { d, a, b }),
        (r(), r(), r()).prop_map(|(d, a, b)| Instr::Lsu { d, a, b }),
        (r(), r()).prop_map(|(d, a)| Instr::Neg { d, a }),
        (r(), r()).prop_map(|(d, a)| Instr::Clz { d, a }),
        (r(), r(), any::<u16>()).prop_map(|(d, a, imm)| Instr::AddI { d, a, imm }),
        (r(), r(), any::<u16>()).prop_map(|(d, a, imm)| Instr::EqI { d, a, imm }),
        (r(), r(), 0u8..32).prop_map(|(d, a, imm)| Instr::ShlI { d, a, imm }),
        (r(), 0u8..=32).prop_map(|(d, width)| Instr::MkMskI { d, width }),
        (r(), 1u8..=32).prop_map(|(r, bits)| Instr::Sext { r, bits }),
        (r(), any::<u32>()).prop_map(|(d, imm)| Instr::Ldc { d, imm }),
        (r(), r(), any_mem_offset()).prop_map(|(d, base, off)| Instr::Ldw { d, base, off }),
        (r(), r(), any_mem_offset()).prop_map(|(s, base, off)| Instr::Stw { s, base, off }),
        (r(), r(), any_mem_offset()).prop_map(|(d, base, off)| Instr::Ld8u { d, base, off }),
        (r(), r(), any_mem_offset()).prop_map(|(s, base, off)| Instr::St16 { s, base, off }),
        (r(), r(), any::<i16>()).prop_map(|(d, base, imm)| Instr::Ldaw { d, base, imm }),
        (r(), any_off()).prop_map(|(d, off)| Instr::Ldap { d, off }),
        any_off().prop_map(|off| Instr::Bu { off }),
        (r(), any_off()).prop_map(|(s, off)| Instr::Bt { s, off }),
        (r(), any_off()).prop_map(|(s, off)| Instr::Bf { s, off }),
        any_off().prop_map(|off| Instr::Bl { off }),
        r().prop_map(|s| Instr::Bau { s }),
        (r(), any_res_type()).prop_map(|(d, ty)| Instr::GetR { d, ty }),
        r().prop_map(|r| Instr::FreeR { r }),
        (r(), r(), r()).prop_map(|(d, entry, arg)| Instr::TSpawn { d, entry, arg }),
        r().prop_map(|r| Instr::MSync { r }),
        r().prop_map(|r| Instr::SSync { r }),
        (r(), r()).prop_map(|(r, s)| Instr::SetD { r, s }),
        (r(), r()).prop_map(|(r, s)| Instr::Out { r, s }),
        (r(), r()).prop_map(|(r, s)| Instr::OutT { r, s }),
        (r(), any_ct()).prop_map(|(r, ct)| Instr::OutCt { r, ct }),
        (r(), r()).prop_map(|(d, r)| Instr::In { d, r }),
        (r(), r()).prop_map(|(d, r)| Instr::InT { d, r }),
        (r(), any_ct()).prop_map(|(r, ct)| Instr::ChkCt { r, ct }),
        (r(), r()).prop_map(|(d, r)| Instr::TestCt { d, r }),
        (r(), r()).prop_map(|(r, s)| Instr::TmWait { r, s }),
        (r(), any_off()).prop_map(|(r, off)| Instr::SetV { r, off }),
        r().prop_map(|r| Instr::Eeu { r }),
        r().prop_map(|r| Instr::Edu { r }),
        Just(Instr::ClrE),
        r().prop_map(|s| Instr::Hostcall {
            func: HostcallFn::PrintInt,
            s
        }),
        r().prop_map(|s| Instr::Hostcall {
            func: HostcallFn::PrintChar,
            s
        }),
    ]
}

proptest! {
    /// decode(encode(i)) == i for every instruction.
    #[test]
    fn encode_decode_round_trip(instr in any_instr()) {
        let enc = encode(&instr).expect("encodable");
        let (back, n) = decode(enc.words()).expect("decodable");
        prop_assert_eq!(back, instr);
        prop_assert_eq!(n, enc.len());
    }

    /// assemble(print(i)) encodes back to i — the disassembler emits valid
    /// assembler input. Hostcall::Halt is excluded: `halt` ignores its
    /// register operand, so it is not injective (prints identically for
    /// every source register).
    #[test]
    fn print_parse_round_trip(instr in any_instr()) {
        let text = instr.to_string();
        let program = Assembler::new()
            .assemble(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to assemble: {e}"));
        let (back, _) = decode(program.words()).expect("decodable");
        prop_assert_eq!(back, instr, "source was `{}`", text);
    }

    /// Arbitrary garbage words either decode or return an error; never panic.
    #[test]
    fn decode_never_panics(words in proptest::collection::vec(any::<u32>(), 1..4)) {
        let _ = decode(&words);
    }
}
