//! Link-layer tokens.
//!
//! XS1 links carry eight-bit *tokens*: data tokens (a payload byte) and
//! control tokens (route management: END, PAUSE, acknowledgements). A
//! 32-bit channel word travels as four data tokens, most significant byte
//! first.

use crate::instr::ControlToken;
use std::fmt;

/// One eight-bit link token.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Token {
    /// A payload byte.
    Data(u8),
    /// A control token (END, PAUSE, ...).
    Ctrl(ControlToken),
}

impl Token {
    /// True for control tokens.
    pub const fn is_ctrl(self) -> bool {
        matches!(self, Token::Ctrl(_))
    }

    /// The payload byte of a data token.
    pub fn data(self) -> Option<u8> {
        match self {
            Token::Data(b) => Some(b),
            Token::Ctrl(_) => None,
        }
    }

    /// True if this token closes the route it travelled on (wormhole
    /// release): END or PAUSE.
    pub fn closes_route(self) -> bool {
        matches!(
            self,
            Token::Ctrl(ControlToken::END) | Token::Ctrl(ControlToken::PAUSE)
        )
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Data(b) => write!(f, "d{b:02x}"),
            Token::Ctrl(ct) => write!(f, "ct:{ct}"),
        }
    }
}

/// Splits a word into four data tokens, most significant byte first.
///
/// ```
/// use swallow_isa::token::{word_to_tokens, Token};
/// let t = word_to_tokens(0x1234_5678);
/// assert_eq!(t[0], Token::Data(0x12));
/// assert_eq!(t[3], Token::Data(0x78));
/// ```
pub fn word_to_tokens(word: u32) -> [Token; 4] {
    [
        Token::Data((word >> 24) as u8),
        Token::Data((word >> 16) as u8),
        Token::Data((word >> 8) as u8),
        Token::Data(word as u8),
    ]
}

/// Reassembles a word from four payload bytes (MSB first).
pub fn bytes_to_word(bytes: [u8; 4]) -> u32 {
    u32::from_be_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_round_trip() {
        for word in [0u32, 1, 0xDEAD_BEEF, u32::MAX, 0x0102_0304] {
            let tokens = word_to_tokens(word);
            let bytes = [
                tokens[0].data().expect("data"),
                tokens[1].data().expect("data"),
                tokens[2].data().expect("data"),
                tokens[3].data().expect("data"),
            ];
            assert_eq!(bytes_to_word(bytes), word);
        }
    }

    #[test]
    fn route_closing_tokens() {
        assert!(Token::Ctrl(ControlToken::END).closes_route());
        assert!(Token::Ctrl(ControlToken::PAUSE).closes_route());
        assert!(!Token::Ctrl(ControlToken::ACK).closes_route());
        assert!(!Token::Data(1).closes_route());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Token::Data(0xAB).to_string(), "dab");
        assert_eq!(Token::Ctrl(ControlToken::END).to_string(), "ct:end");
    }
}
