//! Architectural identifiers: nodes, resources and threads.
//!
//! XS1 resources are named by 32-bit identifiers that embed the owning
//! node, so a channel end's identifier is *globally routable*: `setd` on
//! any core can aim at it. This is the property that lets Swallow treat
//! the whole 480-core machine as one resource space.

use crate::instr::ResType;
use std::fmt;

/// A network node (one core + its switch). The 16-bit space matches the
/// XS1 architecture's limit of 2¹⁶ interconnected cores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The raw 16-bit value.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A hardware thread index within a core (0–7 on the XS1-L).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u8);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A globally routable resource identifier:
/// `[node:16][index:8][type:8]`.
///
/// ```
/// use swallow_isa::{NodeId, ResourceId, ResType};
/// let rid = ResourceId::new(NodeId(7), 3, ResType::Chanend);
/// assert_eq!(rid.node(), NodeId(7));
/// assert_eq!(rid.index(), 3);
/// assert_eq!(rid.res_type(), Some(ResType::Chanend));
/// assert_eq!(ResourceId::from_raw(rid.raw()), rid);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(u32);

impl ResourceId {
    /// The invalid identifier returned by a failed `getr` (all ones).
    pub const INVALID: ResourceId = ResourceId(u32::MAX);

    /// Builds an identifier from its parts.
    pub const fn new(node: NodeId, index: u8, ty: ResType) -> Self {
        ResourceId(((node.0 as u32) << 16) | ((index as u32) << 8) | ty.code() as u32)
    }

    /// Reinterprets a raw register value as a resource identifier.
    pub const fn from_raw(raw: u32) -> Self {
        ResourceId(raw)
    }

    /// The raw 32-bit value (what `getr` writes into a register).
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The owning node.
    pub const fn node(self) -> NodeId {
        NodeId((self.0 >> 16) as u16)
    }

    /// The per-node resource index.
    pub const fn index(self) -> u8 {
        (self.0 >> 8) as u8
    }

    /// The resource type, if the type code is valid.
    pub fn res_type(self) -> Option<ResType> {
        ResType::from_code(self.0 as u8)
    }

    /// True for the `INVALID` sentinel.
    pub const fn is_invalid(self) -> bool {
        self.0 == u32::MAX
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_invalid() {
            return write!(f, "res(invalid)");
        }
        match self.res_type() {
            Some(ty) => write!(f, "{}.{}{}", self.node(), ty.keyword(), self.index()),
            None => write!(f, "res({:#010x})", self.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_and_unpacks_fields() {
        for node in [0u16, 1, 255, 65535] {
            for index in [0u8, 7, 31, 255] {
                for ty in ResType::ALL {
                    let rid = ResourceId::new(NodeId(node), index, ty);
                    assert_eq!(rid.node(), NodeId(node));
                    assert_eq!(rid.index(), index);
                    assert_eq!(rid.res_type(), Some(ty));
                }
            }
        }
    }

    #[test]
    fn invalid_sentinel() {
        assert!(ResourceId::INVALID.is_invalid());
        assert!(!ResourceId::new(NodeId(0), 0, ResType::Chanend).is_invalid());
        assert_eq!(ResourceId::INVALID.to_string(), "res(invalid)");
    }

    #[test]
    fn display_is_readable() {
        let rid = ResourceId::new(NodeId(3), 5, ResType::Chanend);
        assert_eq!(rid.to_string(), "n3.chanend5");
    }
}
