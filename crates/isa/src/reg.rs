//! The architectural register file.
//!
//! XS1 threads each own twelve general-purpose registers plus the stack
//! pointer and link register (the real core also has `dp`/`cp` data/constant
//! pool pointers, which this subset folds into general addressing).

use std::fmt;
use std::str::FromStr;

/// One architectural register: `r0`–`r11`, `sp` or `lr`.
///
/// ```
/// use swallow_isa::Reg;
/// assert_eq!("r3".parse::<Reg>().expect("valid"), Reg::R3);
/// assert_eq!(Reg::SP.index(), 12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reg {
    /// General-purpose register 0 (argument/return by convention).
    R0,
    /// General-purpose register 1.
    R1,
    /// General-purpose register 2.
    R2,
    /// General-purpose register 3.
    R3,
    /// General-purpose register 4.
    R4,
    /// General-purpose register 5.
    R5,
    /// General-purpose register 6.
    R6,
    /// General-purpose register 7.
    R7,
    /// General-purpose register 8.
    R8,
    /// General-purpose register 9.
    R9,
    /// General-purpose register 10.
    R10,
    /// General-purpose register 11.
    R11,
    /// Stack pointer.
    SP,
    /// Link register (return address).
    LR,
}

/// Number of architectural registers per thread.
pub const REG_COUNT: usize = 14;

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; REG_COUNT] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::SP,
        Reg::LR,
    ];

    /// The register's index in the register file (0–13).
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Builds a register from its file index.
    ///
    /// Returns `None` for indices 14 and above.
    pub fn from_index(index: usize) -> Option<Reg> {
        Self::ALL.get(index).copied()
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::SP => write!(f, "sp"),
            Reg::LR => write!(f, "lr"),
            other => write!(f, "r{}", other.index()),
        }
    }
}

/// Error from parsing a register name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseRegError(pub String);

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.0)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sp" => return Ok(Reg::SP),
            "lr" => return Ok(Reg::LR),
            _ => {}
        }
        if let Some(num) = s.strip_prefix('r') {
            if let Ok(n) = num.parse::<usize>() {
                if n < 12 {
                    return Ok(Reg::ALL[n]);
                }
            }
        }
        Err(ParseRegError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_round_trip() {
        for reg in Reg::ALL {
            let text = reg.to_string();
            assert_eq!(text.parse::<Reg>().expect("round trip"), reg);
        }
    }

    #[test]
    fn index_round_trip() {
        for (i, reg) in Reg::ALL.iter().enumerate() {
            assert_eq!(reg.index(), i);
            assert_eq!(Reg::from_index(i), Some(*reg));
        }
        assert_eq!(Reg::from_index(14), None);
    }

    #[test]
    fn rejects_bad_names() {
        for bad in ["r12", "r13", "r99", "x0", "", "pc", "R0"] {
            assert!(bad.parse::<Reg>().is_err(), "{bad} should not parse");
        }
    }
}
