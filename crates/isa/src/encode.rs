//! Binary instruction encoding.
//!
//! The real XS1 mixes 16-bit and 32-bit instruction formats with a prefix
//! mechanism for large immediates. This reproduction uses a simplified
//! regular layout (documented in `DESIGN.md` §5): every instruction is one
//! 32-bit word, with a second *extension word* for 32-bit constants:
//!
//! ```text
//!  31       24 23    20 19    16 15                    0
//! +-----------+--------+--------+-----------------------+
//! |  opcode   | field A| field B|        imm16          |
//! +-----------+--------+--------+-----------------------+
//! ```
//!
//! Field A/B hold register indices; `imm16` holds immediates, branch
//! offsets (as `i16`, in words) or a third register index in its low
//! nibble. Nothing downstream of the assembler/loader depends on the exact
//! bit layout, so swapping in a bit-exact XS1 encoder would be a local
//! change.

use crate::instr::{ControlToken, HostcallFn, Instr, MemOffset, ResType};
use crate::reg::Reg;
use std::fmt;

/// An encoded instruction: one or two 32-bit words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Encoded {
    words: [u32; 2],
    len: u8,
}

impl Encoded {
    fn one(w: u32) -> Self {
        Encoded {
            words: [w, 0],
            len: 1,
        }
    }

    fn two(w: u32, ext: u32) -> Self {
        Encoded {
            words: [w, ext],
            len: 2,
        }
    }

    /// The encoded words.
    pub fn words(&self) -> &[u32] {
        &self.words[..self.len as usize]
    }

    /// Number of 32-bit words (1 or 2).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always false; an encoding has at least one word.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Error from encoding an instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// A branch/address offset does not fit the 16-bit offset field.
    OffsetOutOfRange {
        /// The offending offset, in words.
        offset: i32,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::OffsetOutOfRange { offset } => {
                write!(f, "branch offset {offset} words does not fit in 16 bits")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error from decoding a word stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Register field held an out-of-range index.
    BadRegister(u8),
    /// Unknown resource-type code in a `getr`.
    BadResType(u8),
    /// Unknown hostcall function code.
    BadHostcall(u16),
    /// An immediate field held bits the instruction's operand cannot
    /// carry (e.g. a shift amount or control-token byte above `0xFF`, or
    /// a third-register index above the low nibble). The encoder never
    /// produces such words, so decoding them would break the
    /// decode→encode round trip; they are rejected instead.
    BadImmediate(u16),
    /// The word decodes structurally but is not the encoding the encoder
    /// would produce for the resulting instruction (junk bits in fields
    /// the instruction does not use). Rejected so decode→encode is the
    /// identity on every accepted word.
    NonCanonical(u32),
    /// The stream ended inside a two-word instruction.
    Truncated,
    /// Decode address out of bounds or unaligned.
    BadAddress(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::BadRegister(r) => write!(f, "invalid register index {r}"),
            DecodeError::BadResType(c) => write!(f, "unknown resource type code {c:#x}"),
            DecodeError::BadHostcall(c) => write!(f, "unknown hostcall function {c}"),
            DecodeError::BadImmediate(imm) => {
                write!(f, "immediate {imm:#06x} does not fit the operand field")
            }
            DecodeError::NonCanonical(w) => {
                write!(f, "word {w:#010x} is not a canonical instruction encoding")
            }
            DecodeError::Truncated => write!(f, "instruction stream truncated"),
            DecodeError::BadAddress(a) => write!(f, "invalid instruction address {a:#x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Opcode bytes. Grouped to mirror `Instr`.
mod op {
    pub const NOP: u8 = 0x00;
    pub const ADD: u8 = 0x01;
    pub const SUB: u8 = 0x02;
    pub const MUL: u8 = 0x03;
    pub const DIVS: u8 = 0x04;
    pub const DIVU: u8 = 0x05;
    pub const REMS: u8 = 0x06;
    pub const REMU: u8 = 0x07;
    pub const AND: u8 = 0x08;
    pub const OR: u8 = 0x09;
    pub const XOR: u8 = 0x0A;
    pub const SHL: u8 = 0x0B;
    pub const SHR: u8 = 0x0C;
    pub const ASHR: u8 = 0x0D;
    pub const EQ: u8 = 0x0E;
    pub const LSS: u8 = 0x0F;
    pub const LSU: u8 = 0x10;
    pub const NEG: u8 = 0x11;
    pub const NOT: u8 = 0x12;
    pub const CLZ: u8 = 0x13;
    pub const BYTEREV: u8 = 0x14;
    pub const BITREV: u8 = 0x15;
    pub const ADDI: u8 = 0x16;
    pub const SUBI: u8 = 0x17;
    pub const EQI: u8 = 0x18;
    pub const SHLI: u8 = 0x19;
    pub const SHRI: u8 = 0x1A;
    pub const ASHRI: u8 = 0x1B;
    pub const MKMSKI: u8 = 0x1C;
    pub const MKMSK: u8 = 0x1D;
    pub const SEXT: u8 = 0x1E;
    pub const ZEXT: u8 = 0x1F;
    pub const LDC16: u8 = 0x20;
    pub const LDC32: u8 = 0x21;
    pub const LDW_R: u8 = 0x22;
    pub const LDW_I: u8 = 0x23;
    pub const STW_R: u8 = 0x24;
    pub const STW_I: u8 = 0x25;
    pub const LD16S_R: u8 = 0x26;
    pub const LD16S_I: u8 = 0x27;
    pub const LD8U_R: u8 = 0x28;
    pub const LD8U_I: u8 = 0x29;
    pub const ST16_R: u8 = 0x2A;
    pub const ST16_I: u8 = 0x2B;
    pub const ST8_R: u8 = 0x2C;
    pub const ST8_I: u8 = 0x2D;
    pub const LDAW: u8 = 0x2E;
    pub const LDAP: u8 = 0x2F;
    pub const BU: u8 = 0x30;
    pub const BT: u8 = 0x31;
    pub const BF: u8 = 0x32;
    pub const BL: u8 = 0x33;
    pub const BAU: u8 = 0x34;
    pub const RET: u8 = 0x35;
    pub const GETR: u8 = 0x36;
    pub const FREER: u8 = 0x37;
    pub const TSPAWN: u8 = 0x38;
    pub const FREET: u8 = 0x39;
    pub const MSYNC: u8 = 0x3A;
    pub const SSYNC: u8 = 0x3B;
    pub const SETD: u8 = 0x3C;
    pub const OUT: u8 = 0x3D;
    pub const OUTT: u8 = 0x3E;
    pub const OUTCT: u8 = 0x3F;
    pub const IN: u8 = 0x40;
    pub const INT: u8 = 0x41;
    pub const CHKCT: u8 = 0x42;
    pub const TESTCT: u8 = 0x43;
    pub const TMWAIT: u8 = 0x44;
    pub const WAITEU: u8 = 0x45;
    pub const HOSTCALL: u8 = 0x46;
    pub const SETV: u8 = 0x47;
    pub const EEU: u8 = 0x48;
    pub const EDU: u8 = 0x49;
    pub const CLRE: u8 = 0x4A;
}

fn word(opcode: u8, a: u8, b: u8, imm16: u16) -> u32 {
    ((opcode as u32) << 24) | ((a as u32 & 0xF) << 20) | ((b as u32 & 0xF) << 16) | imm16 as u32
}

fn off16(off: i32) -> Result<u16, EncodeError> {
    i16::try_from(off)
        .map(|v| v as u16)
        .map_err(|_| EncodeError::OffsetOutOfRange { offset: off })
}

fn r(reg: Reg) -> u8 {
    reg.index() as u8
}

/// Encodes an instruction.
///
/// # Errors
///
/// Returns [`EncodeError::OffsetOutOfRange`] when a branch or `ldap`
/// offset exceeds ±32767 words.
pub fn encode(instr: &Instr) -> Result<Encoded, EncodeError> {
    use Instr::*;
    let enc = match *instr {
        Nop => Encoded::one(word(op::NOP, 0, 0, 0)),
        Add { d, a, b } => Encoded::one(word(op::ADD, r(d), r(a), r(b) as u16)),
        Sub { d, a, b } => Encoded::one(word(op::SUB, r(d), r(a), r(b) as u16)),
        Mul { d, a, b } => Encoded::one(word(op::MUL, r(d), r(a), r(b) as u16)),
        Divs { d, a, b } => Encoded::one(word(op::DIVS, r(d), r(a), r(b) as u16)),
        Divu { d, a, b } => Encoded::one(word(op::DIVU, r(d), r(a), r(b) as u16)),
        Rems { d, a, b } => Encoded::one(word(op::REMS, r(d), r(a), r(b) as u16)),
        Remu { d, a, b } => Encoded::one(word(op::REMU, r(d), r(a), r(b) as u16)),
        And { d, a, b } => Encoded::one(word(op::AND, r(d), r(a), r(b) as u16)),
        Or { d, a, b } => Encoded::one(word(op::OR, r(d), r(a), r(b) as u16)),
        Xor { d, a, b } => Encoded::one(word(op::XOR, r(d), r(a), r(b) as u16)),
        Shl { d, a, b } => Encoded::one(word(op::SHL, r(d), r(a), r(b) as u16)),
        Shr { d, a, b } => Encoded::one(word(op::SHR, r(d), r(a), r(b) as u16)),
        Ashr { d, a, b } => Encoded::one(word(op::ASHR, r(d), r(a), r(b) as u16)),
        Eq { d, a, b } => Encoded::one(word(op::EQ, r(d), r(a), r(b) as u16)),
        Lss { d, a, b } => Encoded::one(word(op::LSS, r(d), r(a), r(b) as u16)),
        Lsu { d, a, b } => Encoded::one(word(op::LSU, r(d), r(a), r(b) as u16)),
        Neg { d, a } => Encoded::one(word(op::NEG, r(d), r(a), 0)),
        Not { d, a } => Encoded::one(word(op::NOT, r(d), r(a), 0)),
        Clz { d, a } => Encoded::one(word(op::CLZ, r(d), r(a), 0)),
        Byterev { d, a } => Encoded::one(word(op::BYTEREV, r(d), r(a), 0)),
        Bitrev { d, a } => Encoded::one(word(op::BITREV, r(d), r(a), 0)),
        AddI { d, a, imm } => Encoded::one(word(op::ADDI, r(d), r(a), imm)),
        SubI { d, a, imm } => Encoded::one(word(op::SUBI, r(d), r(a), imm)),
        EqI { d, a, imm } => Encoded::one(word(op::EQI, r(d), r(a), imm)),
        ShlI { d, a, imm } => Encoded::one(word(op::SHLI, r(d), r(a), imm as u16)),
        ShrI { d, a, imm } => Encoded::one(word(op::SHRI, r(d), r(a), imm as u16)),
        AshrI { d, a, imm } => Encoded::one(word(op::ASHRI, r(d), r(a), imm as u16)),
        MkMskI { d, width } => Encoded::one(word(op::MKMSKI, r(d), 0, width as u16)),
        MkMsk { d, s } => Encoded::one(word(op::MKMSK, r(d), r(s), 0)),
        Sext { r: reg, bits } => Encoded::one(word(op::SEXT, r(reg), 0, bits as u16)),
        Zext { r: reg, bits } => Encoded::one(word(op::ZEXT, r(reg), 0, bits as u16)),
        Ldc { d, imm } => {
            if imm <= u16::MAX as u32 {
                Encoded::one(word(op::LDC16, r(d), 0, imm as u16))
            } else {
                Encoded::two(word(op::LDC32, r(d), 0, 0), imm)
            }
        }
        Ldw { d, base, off } => Encoded::one(mem_word(op::LDW_R, op::LDW_I, d, base, off)),
        Stw { s, base, off } => Encoded::one(mem_word(op::STW_R, op::STW_I, s, base, off)),
        Ld16s { d, base, off } => Encoded::one(mem_word(op::LD16S_R, op::LD16S_I, d, base, off)),
        Ld8u { d, base, off } => Encoded::one(mem_word(op::LD8U_R, op::LD8U_I, d, base, off)),
        St16 { s, base, off } => Encoded::one(mem_word(op::ST16_R, op::ST16_I, s, base, off)),
        St8 { s, base, off } => Encoded::one(mem_word(op::ST8_R, op::ST8_I, s, base, off)),
        Ldaw { d, base, imm } => Encoded::one(word(op::LDAW, r(d), r(base), imm as u16)),
        Ldap { d, off } => Encoded::one(word(op::LDAP, r(d), 0, off16(off)?)),
        Bu { off } => Encoded::one(word(op::BU, 0, 0, off16(off)?)),
        Bt { s, off } => Encoded::one(word(op::BT, r(s), 0, off16(off)?)),
        Bf { s, off } => Encoded::one(word(op::BF, r(s), 0, off16(off)?)),
        Bl { off } => Encoded::one(word(op::BL, 0, 0, off16(off)?)),
        Bau { s } => Encoded::one(word(op::BAU, r(s), 0, 0)),
        Ret => Encoded::one(word(op::RET, 0, 0, 0)),
        GetR { d, ty } => Encoded::one(word(op::GETR, r(d), 0, ty.code() as u16)),
        FreeR { r: reg } => Encoded::one(word(op::FREER, r(reg), 0, 0)),
        TSpawn { d, entry, arg } => Encoded::one(word(op::TSPAWN, r(d), r(entry), r(arg) as u16)),
        FreeT => Encoded::one(word(op::FREET, 0, 0, 0)),
        MSync { r: reg } => Encoded::one(word(op::MSYNC, r(reg), 0, 0)),
        SSync { r: reg } => Encoded::one(word(op::SSYNC, r(reg), 0, 0)),
        SetD { r: reg, s } => Encoded::one(word(op::SETD, r(reg), r(s), 0)),
        Out { r: reg, s } => Encoded::one(word(op::OUT, r(reg), r(s), 0)),
        OutT { r: reg, s } => Encoded::one(word(op::OUTT, r(reg), r(s), 0)),
        OutCt { r: reg, ct } => Encoded::one(word(op::OUTCT, r(reg), 0, ct.0 as u16)),
        In { d, r: reg } => Encoded::one(word(op::IN, r(d), r(reg), 0)),
        InT { d, r: reg } => Encoded::one(word(op::INT, r(d), r(reg), 0)),
        ChkCt { r: reg, ct } => Encoded::one(word(op::CHKCT, r(reg), 0, ct.0 as u16)),
        TestCt { d, r: reg } => Encoded::one(word(op::TESTCT, r(d), r(reg), 0)),
        TmWait { r: reg, s } => Encoded::one(word(op::TMWAIT, r(reg), r(s), 0)),
        Waiteu => Encoded::one(word(op::WAITEU, 0, 0, 0)),
        SetV { r: reg, off } => Encoded::one(word(op::SETV, r(reg), 0, off16(off)?)),
        Eeu { r: reg } => Encoded::one(word(op::EEU, r(reg), 0, 0)),
        Edu { r: reg } => Encoded::one(word(op::EDU, r(reg), 0, 0)),
        ClrE => Encoded::one(word(op::CLRE, 0, 0, 0)),
        Hostcall { func, s } => {
            let code = match func {
                HostcallFn::PrintInt => 0,
                HostcallFn::PrintChar => 1,
                HostcallFn::Halt => 2,
            };
            Encoded::one(word(op::HOSTCALL, r(s), 0, code))
        }
    };
    Ok(enc)
}

/// Encodes `ldc d, imm` in the two-word wide form unconditionally.
///
/// The assembler uses this for label references: layout (pass 1) must fix
/// the instruction's size before the label's value is known, so it always
/// reserves the extension word.
pub fn encode_wide_ldc(d: Reg, imm: u32) -> Encoded {
    Encoded::two(word(op::LDC32, r(d), 0, 0), imm)
}

fn mem_word(op_r: u8, op_i: u8, data: Reg, base: Reg, off: MemOffset) -> u32 {
    match off {
        MemOffset::Reg(idx) => word(op_r, r(data), r(base), r(idx) as u16),
        MemOffset::Imm(imm) => word(op_i, r(data), r(base), imm as u16),
    }
}

fn reg_field(value: u8) -> Result<Reg, DecodeError> {
    Reg::from_index(value as usize).ok_or(DecodeError::BadRegister(value))
}

/// Decodes one instruction from `words`, returning it with the number of
/// words consumed (1 or 2).
///
/// # Errors
///
/// Returns a [`DecodeError`] for unknown opcodes, bad register fields or a
/// truncated two-word instruction.
pub fn decode(words: &[u32]) -> Result<(Instr, usize), DecodeError> {
    use Instr::*;
    let w = *words.first().ok_or(DecodeError::Truncated)?;
    let opcode = (w >> 24) as u8;
    let fa = ((w >> 20) & 0xF) as u8;
    let fb = ((w >> 16) & 0xF) as u8;
    let imm16 = (w & 0xFFFF) as u16;
    let a = || reg_field(fa);
    let b = || reg_field(fb);
    // Strict operand decoding: the encoder only ever emits a third
    // register index in the low nibble and 8-bit operands in the low
    // byte, so wider bit patterns are non-canonical and rejected —
    // `encode(decode(w))` must reproduce `w` exactly.
    let c = || {
        if imm16 > 0xF {
            return Err(DecodeError::BadImmediate(imm16));
        }
        reg_field(imm16 as u8)
    };
    let imm8 = || u8::try_from(imm16).map_err(|_| DecodeError::BadImmediate(imm16));
    let soff = || imm16 as i16 as i32;

    let instr = match opcode {
        op::NOP => Nop,
        op::ADD => Add {
            d: a()?,
            a: b()?,
            b: c()?,
        },
        op::SUB => Sub {
            d: a()?,
            a: b()?,
            b: c()?,
        },
        op::MUL => Mul {
            d: a()?,
            a: b()?,
            b: c()?,
        },
        op::DIVS => Divs {
            d: a()?,
            a: b()?,
            b: c()?,
        },
        op::DIVU => Divu {
            d: a()?,
            a: b()?,
            b: c()?,
        },
        op::REMS => Rems {
            d: a()?,
            a: b()?,
            b: c()?,
        },
        op::REMU => Remu {
            d: a()?,
            a: b()?,
            b: c()?,
        },
        op::AND => And {
            d: a()?,
            a: b()?,
            b: c()?,
        },
        op::OR => Or {
            d: a()?,
            a: b()?,
            b: c()?,
        },
        op::XOR => Xor {
            d: a()?,
            a: b()?,
            b: c()?,
        },
        op::SHL => Shl {
            d: a()?,
            a: b()?,
            b: c()?,
        },
        op::SHR => Shr {
            d: a()?,
            a: b()?,
            b: c()?,
        },
        op::ASHR => Ashr {
            d: a()?,
            a: b()?,
            b: c()?,
        },
        op::EQ => Eq {
            d: a()?,
            a: b()?,
            b: c()?,
        },
        op::LSS => Lss {
            d: a()?,
            a: b()?,
            b: c()?,
        },
        op::LSU => Lsu {
            d: a()?,
            a: b()?,
            b: c()?,
        },
        op::NEG => Neg { d: a()?, a: b()? },
        op::NOT => Not { d: a()?, a: b()? },
        op::CLZ => Clz { d: a()?, a: b()? },
        op::BYTEREV => Byterev { d: a()?, a: b()? },
        op::BITREV => Bitrev { d: a()?, a: b()? },
        op::ADDI => AddI {
            d: a()?,
            a: b()?,
            imm: imm16,
        },
        op::SUBI => SubI {
            d: a()?,
            a: b()?,
            imm: imm16,
        },
        op::EQI => EqI {
            d: a()?,
            a: b()?,
            imm: imm16,
        },
        op::SHLI => ShlI {
            d: a()?,
            a: b()?,
            imm: imm8()?,
        },
        op::SHRI => ShrI {
            d: a()?,
            a: b()?,
            imm: imm8()?,
        },
        op::ASHRI => AshrI {
            d: a()?,
            a: b()?,
            imm: imm8()?,
        },
        op::MKMSKI => MkMskI {
            d: a()?,
            width: imm8()?,
        },
        op::MKMSK => MkMsk { d: a()?, s: b()? },
        op::SEXT => Sext {
            r: a()?,
            bits: imm8()?,
        },
        op::ZEXT => Zext {
            r: a()?,
            bits: imm8()?,
        },
        op::LDC16 => Ldc {
            d: a()?,
            imm: imm16 as u32,
        },
        op::LDC32 => {
            let ext = *words.get(1).ok_or(DecodeError::Truncated)?;
            if fb != 0 || imm16 != 0 {
                return Err(DecodeError::NonCanonical(w));
            }
            // The one accepted long form: a small constant in the wide
            // encoding (the assembler reserves the extension word for
            // label references before their values are known).
            return Ok((Ldc { d: a()?, imm: ext }, 2));
        }
        op::LDW_R => Ldw {
            d: a()?,
            base: b()?,
            off: MemOffset::Reg(c()?),
        },
        op::LDW_I => Ldw {
            d: a()?,
            base: b()?,
            off: MemOffset::Imm(imm16 as i16),
        },
        op::STW_R => Stw {
            s: a()?,
            base: b()?,
            off: MemOffset::Reg(c()?),
        },
        op::STW_I => Stw {
            s: a()?,
            base: b()?,
            off: MemOffset::Imm(imm16 as i16),
        },
        op::LD16S_R => Ld16s {
            d: a()?,
            base: b()?,
            off: MemOffset::Reg(c()?),
        },
        op::LD16S_I => Ld16s {
            d: a()?,
            base: b()?,
            off: MemOffset::Imm(imm16 as i16),
        },
        op::LD8U_R => Ld8u {
            d: a()?,
            base: b()?,
            off: MemOffset::Reg(c()?),
        },
        op::LD8U_I => Ld8u {
            d: a()?,
            base: b()?,
            off: MemOffset::Imm(imm16 as i16),
        },
        op::ST16_R => St16 {
            s: a()?,
            base: b()?,
            off: MemOffset::Reg(c()?),
        },
        op::ST16_I => St16 {
            s: a()?,
            base: b()?,
            off: MemOffset::Imm(imm16 as i16),
        },
        op::ST8_R => St8 {
            s: a()?,
            base: b()?,
            off: MemOffset::Reg(c()?),
        },
        op::ST8_I => St8 {
            s: a()?,
            base: b()?,
            off: MemOffset::Imm(imm16 as i16),
        },
        op::LDAW => Ldaw {
            d: a()?,
            base: b()?,
            imm: imm16 as i16,
        },
        op::LDAP => Ldap {
            d: a()?,
            off: soff(),
        },
        op::BU => Bu { off: soff() },
        op::BT => Bt {
            s: a()?,
            off: soff(),
        },
        op::BF => Bf {
            s: a()?,
            off: soff(),
        },
        op::BL => Bl { off: soff() },
        op::BAU => Bau { s: a()? },
        op::RET => Ret,
        op::GETR => GetR {
            d: a()?,
            ty: {
                let code = imm8()?;
                ResType::from_code(code).ok_or(DecodeError::BadResType(code))?
            },
        },
        op::FREER => FreeR { r: a()? },
        op::TSPAWN => TSpawn {
            d: a()?,
            entry: b()?,
            arg: c()?,
        },
        op::FREET => FreeT,
        op::MSYNC => MSync { r: a()? },
        op::SSYNC => SSync { r: a()? },
        op::SETD => SetD { r: a()?, s: b()? },
        op::OUT => Out { r: a()?, s: b()? },
        op::OUTT => OutT { r: a()?, s: b()? },
        op::OUTCT => OutCt {
            r: a()?,
            ct: ControlToken(imm8()?),
        },
        op::IN => In { d: a()?, r: b()? },
        op::INT => InT { d: a()?, r: b()? },
        op::CHKCT => ChkCt {
            r: a()?,
            ct: ControlToken(imm8()?),
        },
        op::TESTCT => TestCt { d: a()?, r: b()? },
        op::TMWAIT => TmWait { r: a()?, s: b()? },
        op::WAITEU => Waiteu,
        op::SETV => SetV {
            r: a()?,
            off: soff(),
        },
        op::EEU => Eeu { r: a()? },
        op::EDU => Edu { r: a()? },
        op::CLRE => ClrE,
        op::HOSTCALL => Hostcall {
            func: match imm16 {
                0 => HostcallFn::PrintInt,
                1 => HostcallFn::PrintChar,
                2 => HostcallFn::Halt,
                other => return Err(DecodeError::BadHostcall(other)),
            },
            s: a()?,
        },
        other => return Err(DecodeError::BadOpcode(other)),
    };
    // Canonicality: the encoder is the single source of truth for the
    // bit layout, so a word it would not itself produce for `instr`
    // (junk in unused fields, mostly) is rejected rather than silently
    // normalised — decode→encode must be the identity on accepted words.
    let canonical = encode(&instr).map_err(|_| DecodeError::NonCanonical(w))?;
    if canonical.words() != [w] {
        return Err(DecodeError::NonCanonical(w));
    }
    Ok((instr, 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg::*;

    fn round_trip(i: Instr) {
        let enc = encode(&i).expect("encodes");
        let (back, n) = decode(enc.words()).expect("decodes");
        assert_eq!(back, i, "round trip failed for {i}");
        assert_eq!(n, enc.len());
    }

    #[test]
    fn round_trips_representative_instructions() {
        use Instr::*;
        for i in [
            Nop,
            Add {
                d: R0,
                a: R1,
                b: R2,
            },
            Divu {
                d: R11,
                a: SP,
                b: LR,
            },
            Neg { d: R3, a: R4 },
            AddI {
                d: R0,
                a: R0,
                imm: 65535,
            },
            ShlI {
                d: R1,
                a: R2,
                imm: 31,
            },
            MkMskI { d: R5, width: 17 },
            Sext { r: R7, bits: 8 },
            Ldc { d: R0, imm: 42 },
            Ldc {
                d: R0,
                imm: 0xDEAD_BEEF,
            },
            Ldw {
                d: R1,
                base: SP,
                off: MemOffset::Imm(-3),
            },
            Ldw {
                d: R1,
                base: R2,
                off: MemOffset::Reg(R3),
            },
            Stw {
                s: R9,
                base: R10,
                off: MemOffset::Imm(100),
            },
            St8 {
                s: R0,
                base: R1,
                off: MemOffset::Reg(R2),
            },
            Ldaw {
                d: R0,
                base: SP,
                imm: -8,
            },
            Ldap { d: R11, off: -200 },
            Bu { off: -1 },
            Bt { s: R4, off: 32000 },
            Bf { s: R4, off: -32000 },
            Bl { off: 12 },
            Bau { s: LR },
            Ret,
            GetR {
                d: R2,
                ty: ResType::PowerProbe,
            },
            FreeR { r: R2 },
            TSpawn {
                d: R0,
                entry: R1,
                arg: R2,
            },
            FreeT,
            MSync { r: R6 },
            SSync { r: R6 },
            SetD { r: R1, s: R2 },
            Out { r: R1, s: R2 },
            OutT { r: R1, s: R2 },
            OutCt {
                r: R1,
                ct: ControlToken::END,
            },
            In { d: R3, r: R1 },
            InT { d: R3, r: R1 },
            ChkCt {
                r: R1,
                ct: ControlToken::PAUSE,
            },
            TestCt { d: R0, r: R1 },
            TmWait { r: R5, s: R6 },
            Waiteu,
            Hostcall {
                func: HostcallFn::PrintInt,
                s: R0,
            },
            Hostcall {
                func: HostcallFn::Halt,
                s: R0,
            },
        ] {
            round_trip(i);
        }
    }

    #[test]
    fn wide_constants_use_extension_word() {
        let small = encode(&Instr::Ldc { d: R0, imm: 0xFFFF }).expect("encodes");
        assert_eq!(small.len(), 1);
        let wide = encode(&Instr::Ldc {
            d: R0,
            imm: 0x1_0000,
        })
        .expect("encodes");
        assert_eq!(wide.len(), 2);
        assert_eq!(wide.words()[1], 0x1_0000);
    }

    #[test]
    fn out_of_range_offset_rejected() {
        assert_eq!(
            encode(&Instr::Bu { off: 40_000 }),
            Err(EncodeError::OffsetOutOfRange { offset: 40_000 })
        );
        assert!(encode(&Instr::Bu { off: -32_768 }).is_ok());
    }

    #[test]
    fn decode_errors() {
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0xFFu32 << 24]), Err(DecodeError::BadOpcode(0xFF)));
        // ldc32 missing its extension word
        let wide = encode(&Instr::Ldc {
            d: R0,
            imm: 1 << 20,
        })
        .expect("encodes");
        assert_eq!(decode(&wide.words()[..1]), Err(DecodeError::Truncated));
        // add with register field 15
        let bad = (op_add() << 24) | (0xF << 20);
        assert_eq!(decode(&[bad]), Err(DecodeError::BadRegister(15)));
        // getr with a bogus resource code
        let bad_getr = (0x36u32 << 24) | 0x000F;
        assert_eq!(decode(&[bad_getr]), Err(DecodeError::BadResType(0xF)));
    }

    fn op_add() -> u32 {
        0x01
    }

    #[test]
    fn non_canonical_immediates_are_rejected() {
        // Words the encoder can never emit: an 8-bit operand field with
        // bits set above the low byte, or a third-register field with
        // bits above the low nibble. These used to be silently truncated
        // on decode, breaking the decode→encode round trip.
        let one_word = |opcode: u32, imm16: u32| (opcode << 24) | imm16;
        for (opcode, imm16) in [
            (0x19, 0x0105u32), // shli
            (0x1A, 0x0100),    // shri
            (0x1B, 0xFF00),    // ashri
            (0x1C, 0x0100),    // mkmski
            (0x1E, 0x01F0),    // sext
            (0x1F, 0x8001),    // zext
            (0x3F, 0x0100),    // outct
            (0x42, 0x0100),    // chkct
        ] {
            assert_eq!(
                decode(&[one_word(opcode, imm16)]),
                Err(DecodeError::BadImmediate(imm16 as u16)),
                "opcode {opcode:#04x} must reject imm16 {imm16:#06x}"
            );
        }
        // getr: the resource code must fit in 8 bits *before* it is
        // looked up — 0x0102 is not a sneaky spelling of code 0x02.
        assert_eq!(
            decode(&[one_word(0x36, 0x0102)]),
            Err(DecodeError::BadImmediate(0x0102))
        );
        // Three-register forms: the third index lives in the low nibble
        // only; 0x0105 is not a sneaky spelling of register 5.
        assert_eq!(
            decode(&[one_word(op_add(), 0x0105)]),
            Err(DecodeError::BadImmediate(0x0105))
        );
    }

    #[test]
    fn canonical_u8_operands_still_round_trip() {
        use Instr::*;
        // The full 8-bit operand range stays accepted (the executor is
        // responsible for semantics like shift amounts ≥ 32).
        for imm in [0u8, 1, 31, 32, 255] {
            round_trip(ShlI { d: R1, a: R2, imm });
            round_trip(MkMskI { d: R5, width: imm });
            round_trip(Zext { r: R7, bits: imm });
            round_trip(OutCt {
                r: R1,
                ct: ControlToken(imm),
            });
        }
    }

    #[test]
    fn junk_in_unused_fields_is_rejected() {
        // `nop` with a register index in field A, `neg` with a stray
        // imm16, a wide `ldc` head word with junk in field B: all decode
        // structurally but are not words the encoder would emit, so they
        // must be rejected — decode→encode is the identity on every
        // accepted word.
        let nop_junk = 3u32 << 20;
        assert_eq!(
            decode(&[nop_junk]),
            Err(DecodeError::NonCanonical(nop_junk))
        );
        let neg_junk = (0x11u32 << 24) | 5;
        assert_eq!(
            decode(&[neg_junk]),
            Err(DecodeError::NonCanonical(neg_junk))
        );
        let wide_junk = (0x21u32 << 24) | (1 << 16);
        assert_eq!(
            decode(&[wide_junk, 42]),
            Err(DecodeError::NonCanonical(wide_junk))
        );
    }

    #[test]
    fn wide_ldc_with_small_constant_stays_accepted() {
        // The one *documented* long-form asymmetry: the assembler emits
        // `ldc32` for label references before the value is known, so the
        // wide form must decode even when the constant would have fit the
        // short form (it re-encodes short — that is the canonical form).
        let wide = encode_wide_ldc(R0, 42);
        assert_eq!(wide.len(), 2);
        let (instr, n) = decode(wide.words()).expect("wide ldc decodes");
        assert_eq!(n, 2);
        assert_eq!(instr, Instr::Ldc { d: R0, imm: 42 });
        assert_eq!(encode(&instr).expect("encodes").len(), 1);
    }
}
