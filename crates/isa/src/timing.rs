//! Fixed instruction timing and energy classification.
//!
//! Time-determinism is the headline property of the XS1-L (Table II of the
//! paper: it is the only surveyed core that is time-deterministic *and*
//! scalable). In this model every instruction completes in a fixed number
//! of issue slots — one for everything except the iterative divider — and
//! there is no cache, so no timing variance exists anywhere in the core.
//!
//! [`EnergyClass`] buckets instructions the way the Kerrison et al. energy
//! model (ACM TECS 2015, the paper's ref. 4) does: by functional unit
//! activity. The per-class energy *values* live in `swallow-energy`; the
//! classification is a property of the ISA and lives here.

use crate::instr::Instr;

/// Number of issue slots the thread occupies for one instruction.
///
/// All instructions take one slot except the 32-cycle iterative divider
/// (`divs`/`divu`/`rems`/`remu`), matching the XS1's "fixed instruction
/// completion time for most instructions".
///
/// ```
/// use swallow_isa::{issue_cycles, Instr, Reg};
/// assert_eq!(issue_cycles(&Instr::Nop), 1);
/// assert_eq!(
///     issue_cycles(&Instr::Divu { d: Reg::R0, a: Reg::R1, b: Reg::R2 }),
///     32
/// );
/// ```
pub fn issue_cycles(instr: &Instr) -> u32 {
    match instr {
        Instr::Divs { .. } | Instr::Divu { .. } | Instr::Rems { .. } | Instr::Remu { .. } => 32,
        _ => 1,
    }
}

/// Energy classification of an instruction (functional-unit activity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EnergyClass {
    /// No datapath activity beyond fetch (nop, waiteu).
    Idle,
    /// Single-cycle ALU operation.
    Alu,
    /// Multiplier activity.
    Mul,
    /// Iterative divider activity (per cycle).
    Div,
    /// SRAM access (load/store).
    Mem,
    /// Branch/control transfer.
    Branch,
    /// Channel-end / network-interface activity.
    Comm,
    /// Resource management (allocate, free, synchronise).
    Resource,
}

impl EnergyClass {
    /// All classes, in ascending typical-energy order.
    pub const ALL: [EnergyClass; 8] = [
        EnergyClass::Idle,
        EnergyClass::Alu,
        EnergyClass::Branch,
        EnergyClass::Resource,
        EnergyClass::Comm,
        EnergyClass::Mul,
        EnergyClass::Mem,
        EnergyClass::Div,
    ];

    /// Classifies an instruction.
    pub fn of(instr: &Instr) -> EnergyClass {
        use Instr::*;
        match instr {
            Nop | Waiteu => EnergyClass::Idle,
            Mul { .. } => EnergyClass::Mul,
            Divs { .. } | Divu { .. } | Rems { .. } | Remu { .. } => EnergyClass::Div,
            Ldw { .. } | Stw { .. } | Ld16s { .. } | Ld8u { .. } | St16 { .. } | St8 { .. } => {
                EnergyClass::Mem
            }
            Bu { .. } | Bt { .. } | Bf { .. } | Bl { .. } | Bau { .. } | Ret => EnergyClass::Branch,
            GetR { .. } | FreeR { .. } | FreeT | TSpawn { .. } | MSync { .. } | SSync { .. } => {
                EnergyClass::Resource
            }
            SetD { .. }
            | Out { .. }
            | OutT { .. }
            | OutCt { .. }
            | In { .. }
            | InT { .. }
            | ChkCt { .. }
            | TestCt { .. }
            | TmWait { .. }
            | SetV { .. }
            | Eeu { .. }
            | Edu { .. }
            | ClrE => EnergyClass::Comm,
            Hostcall { .. } => EnergyClass::Resource,
            _ => EnergyClass::Alu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::MemOffset;
    use crate::reg::Reg::*;

    #[test]
    fn only_divides_are_multi_cycle() {
        use Instr::*;
        let singles = [
            Nop,
            Add {
                d: R0,
                a: R1,
                b: R2,
            },
            Mul {
                d: R0,
                a: R1,
                b: R2,
            },
            Ldw {
                d: R0,
                base: R1,
                off: MemOffset::Imm(0),
            },
            Bu { off: 0 },
            Out { r: R0, s: R1 },
        ];
        for i in singles {
            assert_eq!(issue_cycles(&i), 1, "{i}");
        }
        assert_eq!(
            issue_cycles(&Instr::Divs {
                d: R0,
                a: R1,
                b: R2
            }),
            32
        );
        assert_eq!(
            issue_cycles(&Instr::Remu {
                d: R0,
                a: R1,
                b: R2
            }),
            32
        );
    }

    #[test]
    fn classes_cover_expected_instructions() {
        use Instr::*;
        assert_eq!(EnergyClass::of(&Nop), EnergyClass::Idle);
        assert_eq!(
            EnergyClass::of(&Add {
                d: R0,
                a: R1,
                b: R2
            }),
            EnergyClass::Alu
        );
        assert_eq!(EnergyClass::of(&Ldc { d: R0, imm: 1 }), EnergyClass::Alu);
        assert_eq!(
            EnergyClass::of(&Mul {
                d: R0,
                a: R1,
                b: R2
            }),
            EnergyClass::Mul
        );
        assert_eq!(
            EnergyClass::of(&Stw {
                s: R0,
                base: R1,
                off: MemOffset::Imm(0)
            }),
            EnergyClass::Mem
        );
        assert_eq!(EnergyClass::of(&Ret), EnergyClass::Branch);
        assert_eq!(EnergyClass::of(&Out { r: R0, s: R1 }), EnergyClass::Comm);
        assert_eq!(EnergyClass::of(&FreeT), EnergyClass::Resource);
    }
}
