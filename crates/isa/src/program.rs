//! An assembled program image.
//!
//! A [`Program`] is a flat vector of 32-bit words (code and data
//! interleaved, as produced by the [assembler](crate::Assembler)), an entry
//! point and a symbol table. Images are position-zero: the Swallow boot
//! loader places them at SRAM address 0 on each target core.

use crate::encode::{decode, DecodeError};
use crate::instr::Instr;
use std::collections::BTreeMap;

/// An assembled, loadable program image.
///
/// ```
/// use swallow_isa::Assembler;
/// # fn main() -> Result<(), swallow_isa::AsmError> {
/// let p = Assembler::new().assemble("start: nop\n bu start")?;
/// assert_eq!(p.symbol("start"), Some(0));
/// assert_eq!(p.len_bytes(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    words: Vec<u32>,
    entry: u32,
    symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Builds a program from raw parts. Used by the assembler; also handy
    /// for hand-crafted images in tests.
    pub fn from_parts(words: Vec<u32>, entry: u32, symbols: BTreeMap<String, u32>) -> Self {
        Program {
            words,
            entry,
            symbols,
        }
    }

    /// The image as 32-bit words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Image size in bytes.
    pub fn len_bytes(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// Entry-point byte address.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Looks up a label's byte address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All symbols in name order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u32)> {
        self.symbols.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Decodes the instruction at byte address `addr`.
    ///
    /// Returns the instruction and its size in words.
    ///
    /// # Errors
    ///
    /// Fails for unaligned or out-of-range addresses and for words that do
    /// not decode (e.g. data sections).
    pub fn decode_at(&self, addr: u32) -> Result<(Instr, usize), DecodeError> {
        if !addr.is_multiple_of(4) {
            return Err(DecodeError::BadAddress(addr));
        }
        let idx = (addr / 4) as usize;
        if idx >= self.words.len() {
            return Err(DecodeError::BadAddress(addr));
        }
        decode(&self.words[idx..])
    }

    /// Disassembles the whole image, best-effort: data words that do not
    /// decode are rendered as `.word`.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        let mut addr_to_label: BTreeMap<u32, &str> = BTreeMap::new();
        for (name, addr) in &self.symbols {
            addr_to_label.insert(*addr, name);
        }
        let mut idx = 0usize;
        while idx < self.words.len() {
            let addr = (idx * 4) as u32;
            if let Some(label) = addr_to_label.get(&addr) {
                out.push_str(label);
                out.push_str(":\n");
            }
            match decode(&self.words[idx..]) {
                Ok((instr, n)) => {
                    out.push_str(&format!("    {instr}\n"));
                    idx += n;
                }
                Err(_) => {
                    out.push_str(&format!("    .word {:#010x}\n", self.words[idx]));
                    idx += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::reg::Reg;

    #[test]
    fn decode_at_validates_addresses() {
        let p = Assembler::new().assemble("nop\nnop").expect("assembles");
        assert!(p.decode_at(0).is_ok());
        assert!(p.decode_at(4).is_ok());
        assert_eq!(p.decode_at(2), Err(DecodeError::BadAddress(2)));
        assert_eq!(p.decode_at(8), Err(DecodeError::BadAddress(8)));
    }

    #[test]
    fn entry_defaults_to_zero_and_follows_directive() {
        let p = Assembler::new().assemble("nop").expect("assembles");
        assert_eq!(p.entry(), 0);
        let p = Assembler::new()
            .assemble("data: .word 7\n.entry main\nmain: nop")
            .expect("assembles");
        assert_eq!(p.entry(), 4);
        assert_eq!(p.symbol("data"), Some(0));
    }

    #[test]
    fn disassemble_round_trips_through_assembler() {
        let src = "
            start:
                ldc   r0, 5
                ldc   r1, 100000
            loop:
                sub   r0, r0, 1
                bt    r0, loop
                freet
        ";
        let p1 = Assembler::new().assemble(src).expect("assembles");
        let p2 = Assembler::new()
            .assemble(&p1.disassemble())
            .expect("reassembles");
        assert_eq!(p1.words(), p2.words());
    }

    #[test]
    fn data_words_render_as_directives() {
        let p = Assembler::new()
            .assemble("tbl: .word 0xFF000000\n nop")
            .expect("assembles");
        let text = p.disassemble();
        assert!(text.contains(".word 0xff000000"), "{text}");
        assert!(text.contains("nop"));
        let _ = Reg::R0; // silence unused import in cfg(test) builds
    }
}
