//! XS1-style instruction set architecture for the Swallow platform model.
//!
//! The XMOS XS1-L used by Swallow executes a compact RISC ISA with
//! ISA-level primitives for channel I/O, timers, locks and thread
//! management. This crate defines a faithful *subset* of that ISA:
//!
//! * [`Instr`] — the instruction set (ALU, memory, control flow, resource
//!   and channel operations),
//! * [`Reg`] — the architectural register file (`r0`–`r11`, `sp`, `lr`),
//! * [`encode()`](encode())/[`decode()`](decode()) — a simplified 32-bit encoding
//!   (the real XS1 mixes 16/32-bit formats; see `DESIGN.md` §5),
//! * [`Assembler`] — a two-pass textual assembler with labels and data
//!   directives,
//! * [`timing`] — fixed per-instruction issue timing (the property that
//!   makes the platform time-deterministic) and energy classes for the
//!   Kerrison-style instruction-level energy model.
//!
//! ```
//! use swallow_isa::{Assembler, Instr, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Assembler::new().assemble(
//!     "    ldc   r0, 10
//!      loop:
//!          sub   r0, r0, 1
//!          bt    r0, loop
//!          freet",
//! )?;
//! assert_eq!(program.decode_at(0)?.0, Instr::Ldc { d: Reg::R0, imm: 10 });
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod encode;
pub mod ident;
pub mod instr;
pub mod predecode;
pub mod program;
pub mod reg;
pub mod timing;
pub mod token;

pub use asm::{AsmError, Assembler};
pub use encode::{decode, encode, DecodeError, EncodeError, Encoded};
pub use ident::{NodeId, ResourceId, ThreadId};
pub use instr::{ControlToken, HostcallFn, Instr, MemOffset, ResType};
pub use predecode::{predecode, Predecoded};
pub use program::Program;
pub use reg::Reg;
pub use timing::{issue_cycles, EnergyClass};
pub use token::Token;
