//! `swallow-asm` — assemble and disassemble Swallow program images.
//!
//! ```text
//! swallow_asm build  prog.s  prog.img    # assemble to a binary image
//! swallow_asm dump   prog.img            # disassemble an image
//! swallow_asm check  prog.s              # assemble, report size/symbols
//! ```
//!
//! Image format: little-endian `u32` words — exactly what the boot
//! loader writes into SRAM at address 0 (entry point in the first word
//! of a 2-word header: `[magic "SWLW", entry]`).

use std::collections::BTreeMap;
use std::process::ExitCode;
use swallow_isa::{Assembler, Program};

/// Magic word identifying an image file.
const MAGIC: u32 = u32::from_le_bytes(*b"SWLW");

fn encode_image(program: &Program) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + program.words().len() * 4);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&program.entry().to_le_bytes());
    for w in program.words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

fn decode_image(bytes: &[u8]) -> Result<Program, String> {
    if bytes.len() < 8 || !bytes.len().is_multiple_of(4) {
        return Err("image truncated or unaligned".into());
    }
    let word = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().expect("bounds"));
    if word(0) != MAGIC {
        return Err("bad magic (not a Swallow image)".into());
    }
    let entry = word(4);
    let words: Vec<u32> = (8..bytes.len()).step_by(4).map(word).collect();
    Ok(Program::from_parts(words, entry, BTreeMap::new()))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, src, out] if cmd == "build" => {
            let text = std::fs::read_to_string(src).map_err(|e| format!("{src}: {e}"))?;
            let program = Assembler::new()
                .assemble(&text)
                .map_err(|e| e.to_string())?;
            std::fs::write(out, encode_image(&program)).map_err(|e| format!("{out}: {e}"))?;
            println!(
                "{out}: {} bytes, entry {:#x}",
                program.len_bytes(),
                program.entry()
            );
            Ok(())
        }
        [cmd, img] if cmd == "dump" => {
            let bytes = std::fs::read(img).map_err(|e| format!("{img}: {e}"))?;
            let program = decode_image(&bytes)?;
            print!("{}", program.disassemble());
            Ok(())
        }
        [cmd, src] if cmd == "check" => {
            let text = std::fs::read_to_string(src).map_err(|e| format!("{src}: {e}"))?;
            let program = Assembler::new()
                .assemble(&text)
                .map_err(|e| e.to_string())?;
            println!(
                "ok: {} bytes ({} words), entry {:#x}",
                program.len_bytes(),
                program.words().len(),
                program.entry()
            );
            for (name, addr) in program.symbols() {
                println!("  {addr:#06x} {name}");
            }
            Ok(())
        }
        _ => Err("usage: swallow_asm build <src> <img> | dump <img> | check <src>".into()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("swallow_asm: {msg}");
            ExitCode::FAILURE
        }
    }
}
