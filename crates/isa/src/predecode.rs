//! Decode-once instruction entries.
//!
//! Interpreting a core at speed means not re-deriving the same facts
//! about the same SRAM word millions of times. A [`Predecoded`] entry
//! packs everything the execution hot loop needs to know about one
//! instruction — the decoded [`Instr`], how many 32-bit words it
//! occupies, its fixed issue-slot count and its [`EnergyClass`] — so a
//! cache of entries (see `swallow-xcore`'s `decode_cache`) turns the
//! steady-state fetch/decode/classify path into a single array load.
//!
//! Everything in an entry is a pure function of the instruction words,
//! so caching entries can never change architectural behaviour: a cache
//! hit yields bit-identical state transitions, timing and energy charges
//! to a fresh [`decode`](crate::decode) (the invisibility argument in
//! DESIGN.md §3.11).

use crate::encode::{decode, DecodeError};
use crate::instr::Instr;
use crate::timing::{issue_cycles, EnergyClass};

/// One fully classified instruction: the decode result plus the derived
/// timing/energy facts the interpreter needs at every issue slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Predecoded {
    /// The decoded instruction.
    pub instr: Instr,
    /// 32-bit words the instruction occupies (1 or 2).
    pub words: u8,
    /// Issue slots the instruction holds the pipeline for
    /// ([`issue_cycles`]; at most 32, the iterative divider).
    pub issue_cycles: u8,
    /// Energy classification ([`EnergyClass::of`]).
    pub class: EnergyClass,
}

impl Predecoded {
    /// Classifies an already decoded instruction.
    pub fn of(instr: Instr, words: usize) -> Self {
        Predecoded {
            words: words as u8,
            issue_cycles: issue_cycles(&instr) as u8,
            class: EnergyClass::of(&instr),
            instr,
        }
    }
}

/// Decodes and classifies one instruction from `words`.
///
/// Equivalent to [`decode`] followed by [`Predecoded::of`].
///
/// # Errors
///
/// Returns the [`DecodeError`] from [`decode`] unchanged.
///
/// ```
/// use swallow_isa::{predecode, EnergyClass, Instr, Reg};
/// let words = [swallow_isa::encode(&Instr::Nop).unwrap().words()[0]];
/// let entry = predecode(&words).unwrap();
/// assert_eq!(entry.instr, Instr::Nop);
/// assert_eq!(entry.words, 1);
/// assert_eq!(entry.issue_cycles, 1);
/// assert_eq!(entry.class, EnergyClass::Idle);
/// ```
pub fn predecode(words: &[u32]) -> Result<Predecoded, DecodeError> {
    decode(words).map(|(instr, words)| Predecoded::of(instr, words))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::reg::Reg;

    #[test]
    fn entries_agree_with_decode_and_classifiers() {
        for instr in [
            Instr::Nop,
            Instr::Add {
                d: Reg::R0,
                a: Reg::R1,
                b: Reg::R2,
            },
            Instr::Divu {
                d: Reg::R0,
                a: Reg::R1,
                b: Reg::R2,
            },
            Instr::Ldc {
                d: Reg::R3,
                imm: 0xDEAD_BEEF,
            },
            Instr::Out {
                r: Reg::R0,
                s: Reg::R1,
            },
        ] {
            let enc = encode(&instr).expect("encodes");
            let entry = predecode(enc.words()).expect("decodes");
            let (fresh, words) = decode(enc.words()).expect("decodes");
            assert_eq!(entry.instr, fresh);
            assert_eq!(entry.words as usize, words);
            assert_eq!(entry.issue_cycles as u32, issue_cycles(&fresh));
            assert_eq!(entry.class, EnergyClass::of(&fresh));
        }
    }

    #[test]
    fn errors_pass_through() {
        assert_eq!(predecode(&[]), Err(DecodeError::Truncated));
    }
}
