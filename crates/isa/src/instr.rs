//! The instruction set.
//!
//! Instructions are grouped the way the XS1 reference manual groups them:
//! arithmetic/logic, memory access, control flow, resource management and
//! channel communication. Branch offsets are in *words* relative to the
//! instruction following the branch (all instructions occupy one or two
//! 32-bit words; see the `encode` module).
//!
//! The [`fmt::Display`] implementation is the disassembler: it renders the
//! exact textual form accepted by the [assembler](crate::Assembler), so
//! `parse ∘ print` is the identity (verified by property tests).

use crate::reg::Reg;
use std::fmt;

/// A memory operand: `base[index]` with either a register or an immediate
/// index. Word/halfword accesses scale the index by the access size, as on
/// XS1 (`ldw d, b[i]` addresses `b + 4*i`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemOffset {
    /// Register index, scaled by the access size.
    Reg(Reg),
    /// Immediate index, scaled by the access size.
    Imm(i16),
}

impl fmt::Display for MemOffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemOffset::Reg(r) => write!(f, "{r}"),
            MemOffset::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// Resource types allocatable with `getr`.
///
/// `PowerProbe` is Swallow-specific: it models the ADC measurement
/// daughter-board being readable from the system itself (the paper's
/// self-measurement feature, §II).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResType {
    /// A channel end for message passing.
    Chanend,
    /// A 32-bit free-running timer (10 ns reference ticks).
    Timer,
    /// A thread synchroniser (barrier).
    Sync,
    /// A hardware lock (mutex).
    Lock,
    /// A power-measurement probe (Swallow ADC daughter-board).
    PowerProbe,
}

impl ResType {
    /// All resource types.
    pub const ALL: [ResType; 5] = [
        ResType::Chanend,
        ResType::Timer,
        ResType::Sync,
        ResType::Lock,
        ResType::PowerProbe,
    ];

    /// The 4-bit type code used in resource identifiers and encodings.
    pub const fn code(self) -> u8 {
        match self {
            ResType::Chanend => 0x2,
            ResType::Timer => 0x1,
            ResType::Sync => 0x3,
            ResType::Lock => 0x4,
            ResType::PowerProbe => 0xA,
        }
    }

    /// Inverse of [`ResType::code`].
    pub fn from_code(code: u8) -> Option<ResType> {
        ResType::ALL.into_iter().find(|t| t.code() == code)
    }

    /// The assembler keyword for this resource type.
    pub const fn keyword(self) -> &'static str {
        match self {
            ResType::Chanend => "chanend",
            ResType::Timer => "timer",
            ResType::Sync => "sync",
            ResType::Lock => "lock",
            ResType::PowerProbe => "probe",
        }
    }
}

impl fmt::Display for ResType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Well-known control-token values used by the link protocol (§V.B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ControlToken(pub u8);

impl ControlToken {
    /// Closes the route held open by a packet (end of message).
    pub const END: ControlToken = ControlToken(0x01);
    /// Closes the route, pausing a stream without ending the message.
    pub const PAUSE: ControlToken = ControlToken(0x02);
    /// Positive acknowledgement.
    pub const ACK: ControlToken = ControlToken(0x03);
    /// Negative acknowledgement.
    pub const NACK: ControlToken = ControlToken(0x04);

    /// The assembler keyword, if this token has one.
    pub fn keyword(self) -> Option<&'static str> {
        match self {
            ControlToken::END => Some("end"),
            ControlToken::PAUSE => Some("pause"),
            ControlToken::ACK => Some("ack"),
            ControlToken::NACK => Some("nack"),
            _ => None,
        }
    }
}

impl fmt::Display for ControlToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.keyword() {
            Some(kw) => f.write_str(kw),
            None => write!(f, "{}", self.0),
        }
    }
}

/// Simulator services (akin to semihosting on real development boards;
/// on physical Swallow the same role is played by streaming over the
/// Ethernet bridge).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HostcallFn {
    /// Print a register as a signed integer.
    PrintInt,
    /// Print the low byte of a register as a character.
    PrintChar,
    /// Halt the whole core (ends simulation for it).
    Halt,
}

/// One machine instruction.
///
/// Operand order follows XS1 conventions: destination first for loads and
/// ALU operations; resource first for channel outputs (`out res, s`),
/// destination first for inputs (`in d, res`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // Fields are conventional: d=dest, a/b/s=sources, r=resource.
pub enum Instr {
    // --- arithmetic / logic, three-register -------------------------------
    Add {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Sub {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Mul {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Divs {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Divu {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Rems {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Remu {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    And {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Or {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Xor {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Shl {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Shr {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Ashr {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Eq {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Lss {
        d: Reg,
        a: Reg,
        b: Reg,
    },
    Lsu {
        d: Reg,
        a: Reg,
        b: Reg,
    },

    // --- arithmetic / logic, two-register ---------------------------------
    Neg {
        d: Reg,
        a: Reg,
    },
    Not {
        d: Reg,
        a: Reg,
    },
    Clz {
        d: Reg,
        a: Reg,
    },
    Byterev {
        d: Reg,
        a: Reg,
    },
    Bitrev {
        d: Reg,
        a: Reg,
    },

    // --- immediate forms ---------------------------------------------------
    AddI {
        d: Reg,
        a: Reg,
        imm: u16,
    },
    SubI {
        d: Reg,
        a: Reg,
        imm: u16,
    },
    EqI {
        d: Reg,
        a: Reg,
        imm: u16,
    },
    ShlI {
        d: Reg,
        a: Reg,
        imm: u8,
    },
    ShrI {
        d: Reg,
        a: Reg,
        imm: u8,
    },
    AshrI {
        d: Reg,
        a: Reg,
        imm: u8,
    },
    /// `mkmsk d, width`: d = (1 << width) - 1.
    MkMskI {
        d: Reg,
        width: u8,
    },
    /// `mkmsk d, s`: d = (1 << s) - 1 (width from register).
    MkMsk {
        d: Reg,
        s: Reg,
    },
    /// Sign-extend register in place from `bits` to 32.
    Sext {
        r: Reg,
        bits: u8,
    },
    /// Zero-extend register in place from `bits` to 32.
    Zext {
        r: Reg,
        bits: u8,
    },
    /// Load constant (up to 32 bits; wide constants use an extension word).
    Ldc {
        d: Reg,
        imm: u32,
    },

    // --- memory ------------------------------------------------------------
    Ldw {
        d: Reg,
        base: Reg,
        off: MemOffset,
    },
    Stw {
        s: Reg,
        base: Reg,
        off: MemOffset,
    },
    Ld16s {
        d: Reg,
        base: Reg,
        off: MemOffset,
    },
    Ld8u {
        d: Reg,
        base: Reg,
        off: MemOffset,
    },
    St16 {
        s: Reg,
        base: Reg,
        off: MemOffset,
    },
    St8 {
        s: Reg,
        base: Reg,
        off: MemOffset,
    },
    /// Load effective address of a word: d = base + 4*imm.
    Ldaw {
        d: Reg,
        base: Reg,
        imm: i16,
    },
    /// Load a program-relative address: d = pc_next + 4*off.
    Ldap {
        d: Reg,
        off: i32,
    },

    // --- control flow (offsets in words, relative to next pc) --------------
    Bu {
        off: i32,
    },
    Bt {
        s: Reg,
        off: i32,
    },
    Bf {
        s: Reg,
        off: i32,
    },
    /// Branch and link (call); lr = return address.
    Bl {
        off: i32,
    },
    /// Branch absolute (register holds byte address).
    Bau {
        s: Reg,
    },
    /// Return via lr.
    Ret,

    // --- resources and threads ---------------------------------------------
    GetR {
        d: Reg,
        ty: ResType,
    },
    FreeR {
        r: Reg,
    },
    /// Spawn a thread on this core: d = thread id, entry = byte address,
    /// arg becomes the new thread's r0. Condenses XS1's
    /// `getst/tsetpc/tseti/tstart` sequence (see `DESIGN.md` §5).
    TSpawn {
        d: Reg,
        entry: Reg,
        arg: Reg,
    },
    /// Terminate the current thread (`freet`).
    FreeT,
    /// Master synchronise on a barrier resource.
    MSync {
        r: Reg,
    },
    /// Slave synchronise on a barrier resource.
    SSync {
        r: Reg,
    },

    // --- channels, timers, locks, probes ------------------------------------
    /// Set the destination of a channel end (or parameter of a resource).
    SetD {
        r: Reg,
        s: Reg,
    },
    /// Output a 32-bit word to a resource.
    Out {
        r: Reg,
        s: Reg,
    },
    /// Output a single byte token.
    OutT {
        r: Reg,
        s: Reg,
    },
    /// Output a control token.
    OutCt {
        r: Reg,
        ct: ControlToken,
    },
    /// Input a 32-bit word from a resource (chanend, timer, lock, probe).
    In {
        d: Reg,
        r: Reg,
    },
    /// Input a single byte token.
    InT {
        d: Reg,
        r: Reg,
    },
    /// Check (consume) an expected control token; traps on mismatch.
    ChkCt {
        r: Reg,
        ct: ControlToken,
    },
    /// d = 1 if the next token on r is a control token, else 0 (peek).
    TestCt {
        d: Reg,
        r: Reg,
    },
    /// Block until the timer resource value is >= s.
    TmWait {
        r: Reg,
        s: Reg,
    },

    // --- events (the XS1 select mechanism) ----------------------------------
    /// Set a resource's event vector to a program-relative address.
    SetV {
        r: Reg,
        off: i32,
    },
    /// Enable events on a resource for the executing thread.
    Eeu {
        r: Reg,
    },
    /// Disable events on a resource.
    Edu {
        r: Reg,
    },
    /// Disable every event owned by the executing thread.
    ClrE,

    // --- miscellaneous -------------------------------------------------------
    Nop,
    /// Wait until an enabled event fires, vectoring to its handler; with
    /// no events enabled, idles the thread forever.
    Waiteu,
    /// Simulator service call.
    Hostcall {
        func: HostcallFn,
        s: Reg,
    },
}

impl Instr {
    /// True for instructions that may transfer control.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Instr::Bu { .. }
                | Instr::Bt { .. }
                | Instr::Bf { .. }
                | Instr::Bl { .. }
                | Instr::Bau { .. }
                | Instr::Ret
        )
    }

    /// True for instructions that touch a resource (channel/timer/lock/...).
    pub fn is_resource_op(&self) -> bool {
        matches!(
            self,
            Instr::GetR { .. }
                | Instr::FreeR { .. }
                | Instr::MSync { .. }
                | Instr::SSync { .. }
                | Instr::SetD { .. }
                | Instr::Out { .. }
                | Instr::OutT { .. }
                | Instr::OutCt { .. }
                | Instr::In { .. }
                | Instr::InT { .. }
                | Instr::ChkCt { .. }
                | Instr::TestCt { .. }
                | Instr::TmWait { .. }
                | Instr::SetV { .. }
                | Instr::Eeu { .. }
                | Instr::Edu { .. }
        )
    }
}

/// Formats a word-offset branch target as it appears in assembly when no
/// label is available: `.+N` / `.-N` relative to the *next* instruction.
fn fmt_off(f: &mut fmt::Formatter<'_>, off: i32) -> fmt::Result {
    if off >= 0 {
        write!(f, ".+{off}")
    } else {
        write!(f, ".{off}")
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Add { d, a, b } => write!(f, "add {d}, {a}, {b}"),
            Sub { d, a, b } => write!(f, "sub {d}, {a}, {b}"),
            Mul { d, a, b } => write!(f, "mul {d}, {a}, {b}"),
            Divs { d, a, b } => write!(f, "divs {d}, {a}, {b}"),
            Divu { d, a, b } => write!(f, "divu {d}, {a}, {b}"),
            Rems { d, a, b } => write!(f, "rems {d}, {a}, {b}"),
            Remu { d, a, b } => write!(f, "remu {d}, {a}, {b}"),
            And { d, a, b } => write!(f, "and {d}, {a}, {b}"),
            Or { d, a, b } => write!(f, "or {d}, {a}, {b}"),
            Xor { d, a, b } => write!(f, "xor {d}, {a}, {b}"),
            Shl { d, a, b } => write!(f, "shl {d}, {a}, {b}"),
            Shr { d, a, b } => write!(f, "shr {d}, {a}, {b}"),
            Ashr { d, a, b } => write!(f, "ashr {d}, {a}, {b}"),
            Eq { d, a, b } => write!(f, "eq {d}, {a}, {b}"),
            Lss { d, a, b } => write!(f, "lss {d}, {a}, {b}"),
            Lsu { d, a, b } => write!(f, "lsu {d}, {a}, {b}"),
            Neg { d, a } => write!(f, "neg {d}, {a}"),
            Not { d, a } => write!(f, "not {d}, {a}"),
            Clz { d, a } => write!(f, "clz {d}, {a}"),
            Byterev { d, a } => write!(f, "byterev {d}, {a}"),
            Bitrev { d, a } => write!(f, "bitrev {d}, {a}"),
            AddI { d, a, imm } => write!(f, "add {d}, {a}, {imm}"),
            SubI { d, a, imm } => write!(f, "sub {d}, {a}, {imm}"),
            EqI { d, a, imm } => write!(f, "eq {d}, {a}, {imm}"),
            ShlI { d, a, imm } => write!(f, "shl {d}, {a}, {imm}"),
            ShrI { d, a, imm } => write!(f, "shr {d}, {a}, {imm}"),
            AshrI { d, a, imm } => write!(f, "ashr {d}, {a}, {imm}"),
            MkMskI { d, width } => write!(f, "mkmsk {d}, {width}"),
            MkMsk { d, s } => write!(f, "mkmsk {d}, {s}"),
            Sext { r, bits } => write!(f, "sext {r}, {bits}"),
            Zext { r, bits } => write!(f, "zext {r}, {bits}"),
            Ldc { d, imm } => write!(f, "ldc {d}, {imm}"),
            Ldw { d, base, off } => write!(f, "ldw {d}, {base}[{off}]"),
            Stw { s, base, off } => write!(f, "stw {s}, {base}[{off}]"),
            Ld16s { d, base, off } => write!(f, "ld16s {d}, {base}[{off}]"),
            Ld8u { d, base, off } => write!(f, "ld8u {d}, {base}[{off}]"),
            St16 { s, base, off } => write!(f, "st16 {s}, {base}[{off}]"),
            St8 { s, base, off } => write!(f, "st8 {s}, {base}[{off}]"),
            Ldaw { d, base, imm } => write!(f, "ldaw {d}, {base}[{imm}]"),
            Ldap { d, off } => {
                write!(f, "ldap {d}, ")?;
                fmt_off(f, off)
            }
            Bu { off } => {
                write!(f, "bu ")?;
                fmt_off(f, off)
            }
            Bt { s, off } => {
                write!(f, "bt {s}, ")?;
                fmt_off(f, off)
            }
            Bf { s, off } => {
                write!(f, "bf {s}, ")?;
                fmt_off(f, off)
            }
            Bl { off } => {
                write!(f, "bl ")?;
                fmt_off(f, off)
            }
            Bau { s } => write!(f, "bau {s}"),
            Ret => write!(f, "ret"),
            GetR { d, ty } => write!(f, "getr {d}, {ty}"),
            FreeR { r } => write!(f, "freer {r}"),
            TSpawn { d, entry, arg } => write!(f, "tspawn {d}, {entry}, {arg}"),
            FreeT => write!(f, "freet"),
            MSync { r } => write!(f, "msync {r}"),
            SSync { r } => write!(f, "ssync {r}"),
            SetD { r, s } => write!(f, "setd {r}, {s}"),
            Out { r, s } => write!(f, "out {r}, {s}"),
            OutT { r, s } => write!(f, "outt {r}, {s}"),
            OutCt { r, ct } => write!(f, "outct {r}, {ct}"),
            In { d, r } => write!(f, "in {d}, {r}"),
            InT { d, r } => write!(f, "int {d}, {r}"),
            ChkCt { r, ct } => write!(f, "chkct {r}, {ct}"),
            TestCt { d, r } => write!(f, "testct {d}, {r}"),
            TmWait { r, s } => write!(f, "tmwait {r}, {s}"),
            SetV { r, off } => {
                write!(f, "setv {r}, ")?;
                fmt_off(f, off)
            }
            Eeu { r } => write!(f, "eeu {r}"),
            Edu { r } => write!(f, "edu {r}"),
            ClrE => write!(f, "clre"),
            Nop => write!(f, "nop"),
            Waiteu => write!(f, "waiteu"),
            Hostcall { func, s } => match func {
                HostcallFn::PrintInt => write!(f, "print {s}"),
                HostcallFn::PrintChar => write!(f, "printc {s}"),
                HostcallFn::Halt => write!(f, "halt"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restype_code_round_trip() {
        for ty in ResType::ALL {
            assert_eq!(ResType::from_code(ty.code()), Some(ty));
        }
        assert_eq!(ResType::from_code(0xF), None);
    }

    #[test]
    fn control_token_keywords() {
        assert_eq!(ControlToken::END.to_string(), "end");
        assert_eq!(ControlToken::PAUSE.to_string(), "pause");
        assert_eq!(ControlToken(0x17).to_string(), "23");
    }

    #[test]
    fn branch_classification() {
        assert!(Instr::Ret.is_branch());
        assert!(Instr::Bu { off: -1 }.is_branch());
        assert!(!Instr::Nop.is_branch());
        assert!(Instr::Out {
            r: Reg::R0,
            s: Reg::R1
        }
        .is_resource_op());
        assert!(!Instr::Add {
            d: Reg::R0,
            a: Reg::R0,
            b: Reg::R0
        }
        .is_resource_op());
    }

    #[test]
    fn display_matches_reference_forms() {
        assert_eq!(
            Instr::Ldw {
                d: Reg::R0,
                base: Reg::R1,
                off: MemOffset::Imm(3)
            }
            .to_string(),
            "ldw r0, r1[3]"
        );
        assert_eq!(Instr::Bu { off: -2 }.to_string(), "bu .-2");
        assert_eq!(Instr::Bu { off: 5 }.to_string(), "bu .+5");
        assert_eq!(
            Instr::GetR {
                d: Reg::R2,
                ty: ResType::Chanend
            }
            .to_string(),
            "getr r2, chanend"
        );
        assert_eq!(
            Instr::OutCt {
                r: Reg::R1,
                ct: ControlToken::END
            }
            .to_string(),
            "outct r1, end"
        );
    }
}
