//! A two-pass textual assembler.
//!
//! The accepted syntax is the same as the disassembler's output (see
//! [`Instr`]'s `Display` impl), plus labels, comments and data directives:
//!
//! ```text
//! # comments run to end of line (also `//` and `;`)
//!         .entry main          # set the entry point (default: address 0)
//! table:  .word 0x1234         # emit a raw data word (value or label)
//!         .space 4             # emit 4 zero words
//! main:
//!         ldc   r0, 10
//! loop:   sub   r0, r0, 1
//!         bt    r0, loop       # branch targets: label or .+N / .-N
//!         freet
//! ```
//!
//! Immediates may be decimal, `0x` hex, `0b` binary or `'c'` character
//! literals. `mov d, s` is accepted as sugar for `add d, s, 0`.

use crate::encode::{encode, encode_wide_ldc};
use crate::instr::{ControlToken, HostcallFn, Instr, MemOffset, ResType};
use crate::program::Program;
use crate::reg::Reg;
use std::collections::BTreeMap;
use std::fmt;

/// An assembly error, with the 1-based source line where it occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// The assembler. Stateless; one instance can assemble many programs.
///
/// ```
/// use swallow_isa::Assembler;
/// # fn main() -> Result<(), swallow_isa::AsmError> {
/// let program = Assembler::new().assemble("nop\nfreet")?;
/// assert_eq!(program.words().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Assembler;

impl Assembler {
    /// Creates an assembler.
    pub fn new() -> Self {
        Assembler
    }

    /// Assembles `source` into a loadable [`Program`].
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] carrying the offending line number for
    /// syntax errors, unknown mnemonics/labels, duplicate labels, and
    /// out-of-range immediates or branch offsets.
    pub fn assemble(&self, source: &str) -> Result<Program, AsmError> {
        let items = parse_items(source)?;

        // Pass 1: lay out items and collect label addresses.
        let mut labels: BTreeMap<String, u32> = BTreeMap::new();
        let mut word_addr = 0u32;
        for item in &items {
            for label in &item.labels {
                if labels.insert(label.clone(), word_addr * 4).is_some() {
                    return Err(AsmError::new(
                        item.line,
                        format!("duplicate label `{label}`"),
                    ));
                }
            }
            word_addr += item.size_words(&labels);
        }

        // Pass 2: resolve and emit.
        let mut words = Vec::with_capacity(word_addr as usize);
        let mut entry: Option<(usize, String)> = None;
        for item in &items {
            let at = words.len() as u32;
            match &item.body {
                Body::None => {}
                Body::Entry(label) => {
                    if entry.is_some() {
                        return Err(AsmError::new(item.line, "duplicate .entry directive"));
                    }
                    entry = Some((item.line, label.clone()));
                }
                Body::Word(value) => {
                    let v = resolve_value(value, &labels, item.line)?;
                    words.push(v);
                }
                Body::Space(n) => {
                    words.extend(std::iter::repeat_n(0, *n as usize));
                }
                Body::Op(mnemonic, operands) => {
                    // `ldc d, label` was laid out as two words in pass 1
                    // (the label value was still unknown); keep the wide
                    // form even if the resolved address fits 16 bits.
                    let wide_label = mnemonic == "ldc"
                        && operands.len() == 2
                        && parse_imm(&operands[1]).is_none();
                    let instr = lower(item.line, mnemonic, operands, &labels, at)?;
                    if let (true, Instr::Ldc { d, imm }) = (wide_label, instr) {
                        words.extend_from_slice(encode_wide_ldc(d, imm).words());
                    } else {
                        let enc =
                            encode(&instr).map_err(|e| AsmError::new(item.line, e.to_string()))?;
                        words.extend_from_slice(enc.words());
                    }
                }
            }
        }

        let entry_addr = match entry {
            None => 0,
            Some((line, label)) => *labels
                .get(&label)
                .ok_or_else(|| AsmError::new(line, format!("unknown entry label `{label}`")))?,
        };
        Ok(Program::from_parts(words, entry_addr, labels))
    }
}

#[derive(Debug)]
enum Body {
    /// A label-only (or empty) line.
    None,
    Entry(String),
    Word(Value),
    Space(u32),
    Op(String, Vec<String>),
}

#[derive(Debug)]
enum Value {
    Imm(i64),
    Sym(String),
}

#[derive(Debug)]
struct Item {
    line: usize,
    labels: Vec<String>,
    body: Body,
}

impl Item {
    fn size_words(&self, _labels: &BTreeMap<String, u32>) -> u32 {
        match &self.body {
            Body::None | Body::Entry(_) => 0,
            Body::Word(_) => 1,
            Body::Space(n) => *n,
            Body::Op(m, operands) => {
                if m == "ldc" {
                    // Wide constants and label references take an extension
                    // word; the choice must be deterministic in pass 1.
                    if let Some(text) = operands.get(1) {
                        match parse_imm(text) {
                            Some(v) if (0..=0xFFFF).contains(&v) => 1,
                            _ => 2,
                        }
                    } else {
                        1
                    }
                } else {
                    1
                }
            }
        }
    }
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for marker in ["#", "//", ";"] {
        if let Some(pos) = line.find(marker) {
            end = end.min(pos);
        }
    }
    &line[..end]
}

fn is_label_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

fn parse_items(source: &str) -> Result<Vec<Item>, AsmError> {
    let mut items = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut rest = strip_comment(raw).trim();
        let mut labels = Vec::new();
        // Leading `name:` labels (several may stack on one line).
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let head = head.trim();
            if head.is_empty() || !head.chars().all(is_label_char) || head.starts_with('.') {
                break;
            }
            labels.push(head.to_owned());
            rest = tail[1..].trim();
        }
        let body = if rest.is_empty() {
            Body::None
        } else if let Some(dir) = rest.strip_prefix('.') {
            parse_directive(line_no, dir)?
        } else {
            let (mnemonic, args) = match rest.split_once(char::is_whitespace) {
                Some((m, a)) => (m, a.trim()),
                None => (rest, ""),
            };
            let operands: Vec<String> = if args.is_empty() {
                Vec::new()
            } else {
                args.split(',').map(|s| s.trim().to_owned()).collect()
            };
            if operands.iter().any(|o| o.is_empty()) {
                return Err(AsmError::new(line_no, "empty operand"));
            }
            Body::Op(mnemonic.to_ascii_lowercase(), operands)
        };
        if labels.is_empty() && matches!(body, Body::None) {
            continue;
        }
        items.push(Item {
            line: line_no,
            labels,
            body,
        });
    }
    Ok(items)
}

fn parse_directive(line: usize, dir: &str) -> Result<Body, AsmError> {
    let (name, arg) = match dir.split_once(char::is_whitespace) {
        Some((n, a)) => (n, a.trim()),
        None => (dir, ""),
    };
    match name {
        "word" => {
            if let Some(v) = parse_imm(arg) {
                Ok(Body::Word(Value::Imm(v)))
            } else if !arg.is_empty() && arg.chars().all(is_label_char) {
                Ok(Body::Word(Value::Sym(arg.to_owned())))
            } else {
                Err(AsmError::new(line, format!("bad .word operand `{arg}`")))
            }
        }
        "space" => match parse_imm(arg) {
            Some(n) if (0..=(1 << 16)).contains(&n) => Ok(Body::Space(n as u32)),
            _ => Err(AsmError::new(line, format!("bad .space count `{arg}`"))),
        },
        "entry" => {
            if arg.is_empty() {
                Err(AsmError::new(line, ".entry requires a label"))
            } else {
                Ok(Body::Entry(arg.to_owned()))
            }
        }
        other => Err(AsmError::new(line, format!("unknown directive `.{other}`"))),
    }
}

fn resolve_value(
    value: &Value,
    labels: &BTreeMap<String, u32>,
    line: usize,
) -> Result<u32, AsmError> {
    match value {
        Value::Imm(v) => imm_to_u32(*v)
            .ok_or_else(|| AsmError::new(line, format!("value {v} does not fit in 32 bits"))),
        Value::Sym(name) => labels
            .get(name)
            .copied()
            .ok_or_else(|| AsmError::new(line, format!("unknown label `{name}`"))),
    }
}

fn imm_to_u32(v: i64) -> Option<u32> {
    if (0..=u32::MAX as i64).contains(&v) {
        Some(v as u32)
    } else if (i32::MIN as i64..0).contains(&v) {
        Some(v as i32 as u32)
    } else {
        None
    }
}

/// Parses an immediate: decimal, hex (`0x`), binary (`0b`) or `'c'`.
fn parse_imm(text: &str) -> Option<i64> {
    let text = text.trim();
    if let Some(ch) = text.strip_prefix('\'') {
        let ch = ch.strip_suffix('\'')?;
        let mut chars = ch.chars();
        let c = chars.next()?;
        if chars.next().is_some() {
            return None;
        }
        return Some(c as i64);
    }
    let (neg, digits) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let value = if let Some(hex) = digits
        .strip_prefix("0x")
        .or_else(|| digits.strip_prefix("0X"))
    {
        i64::from_str_radix(&hex.replace('_', ""), 16).ok()?
    } else if let Some(bin) = digits
        .strip_prefix("0b")
        .or_else(|| digits.strip_prefix("0B"))
    {
        i64::from_str_radix(&bin.replace('_', ""), 2).ok()?
    } else {
        digits.replace('_', "").parse::<i64>().ok()?
    };
    Some(if neg { -value } else { value })
}

struct Ctx<'a> {
    line: usize,
    labels: &'a BTreeMap<String, u32>,
    /// Word address of this (single-word) instruction.
    at: u32,
}

impl Ctx<'_> {
    fn err(&self, msg: impl Into<String>) -> AsmError {
        AsmError::new(self.line, msg)
    }

    fn reg(&self, text: &str) -> Result<Reg, AsmError> {
        text.parse::<Reg>()
            .map_err(|_| self.err(format!("expected register, found `{text}`")))
    }

    fn imm_range(&self, text: &str, lo: i64, hi: i64) -> Result<i64, AsmError> {
        let v = parse_imm(text)
            .ok_or_else(|| self.err(format!("expected immediate, found `{text}`")))?;
        if (lo..=hi).contains(&v) {
            Ok(v)
        } else {
            Err(self.err(format!("immediate {v} out of range {lo}..={hi}")))
        }
    }

    /// Branch target: label or `.+N` / `.-N`, as a word offset from pc+1.
    fn target(&self, text: &str) -> Result<i32, AsmError> {
        if let Some(rel) = text.strip_prefix('.') {
            let v = parse_imm(rel.strip_prefix('+').unwrap_or(rel))
                .ok_or_else(|| self.err(format!("bad relative target `{text}`")))?;
            return i32::try_from(v).map_err(|_| self.err("relative target out of range"));
        }
        let addr = self
            .labels
            .get(text)
            .ok_or_else(|| self.err(format!("unknown label `{text}`")))?;
        let target_word = (addr / 4) as i64;
        let next = self.at as i64 + 1;
        i32::try_from(target_word - next).map_err(|_| self.err("branch target out of range"))
    }

    /// Memory operand `base[index]` where index is a register or immediate.
    fn mem(&self, text: &str) -> Result<(Reg, MemOffset), AsmError> {
        let open = text
            .find('[')
            .ok_or_else(|| self.err(format!("expected `base[index]`, found `{text}`")))?;
        if !text.ends_with(']') {
            return Err(self.err(format!("expected `base[index]`, found `{text}`")));
        }
        let base = self.reg(text[..open].trim())?;
        let inner = text[open + 1..text.len() - 1].trim();
        if let Ok(reg) = inner.parse::<Reg>() {
            Ok((base, MemOffset::Reg(reg)))
        } else {
            let v = self.imm_range(inner, i16::MIN as i64, i16::MAX as i64)?;
            Ok((base, MemOffset::Imm(v as i16)))
        }
    }

    fn control_token(&self, text: &str) -> Result<ControlToken, AsmError> {
        match text {
            "end" => Ok(ControlToken::END),
            "pause" => Ok(ControlToken::PAUSE),
            "ack" => Ok(ControlToken::ACK),
            "nack" => Ok(ControlToken::NACK),
            other => Ok(ControlToken(self.imm_range(other, 0, 255)? as u8)),
        }
    }
}

fn expect_arity(line: usize, mnemonic: &str, ops: &[String], n: usize) -> Result<(), AsmError> {
    if ops.len() == n {
        Ok(())
    } else {
        Err(AsmError::new(
            line,
            format!("`{mnemonic}` expects {n} operand(s), found {}", ops.len()),
        ))
    }
}

#[allow(clippy::too_many_lines)] // A flat mnemonic table reads better split than clever.
fn lower(
    line: usize,
    mnemonic: &str,
    ops: &[String],
    labels: &BTreeMap<String, u32>,
    at: u32,
) -> Result<Instr, AsmError> {
    let cx = Ctx { line, labels, at };
    let arity = |n| expect_arity(line, mnemonic, ops, n);

    // Helper closures keep each arm one line.
    let reg3 = |cons: fn(Reg, Reg, Reg) -> Instr| -> Result<Instr, AsmError> {
        arity(3)?;
        Ok(cons(cx.reg(&ops[0])?, cx.reg(&ops[1])?, cx.reg(&ops[2])?))
    };
    let reg2 = |cons: fn(Reg, Reg) -> Instr| -> Result<Instr, AsmError> {
        arity(2)?;
        Ok(cons(cx.reg(&ops[0])?, cx.reg(&ops[1])?))
    };
    // Third operand is a register or an immediate.
    let reg3_or_imm = |rc: fn(Reg, Reg, Reg) -> Instr,
                       ic: fn(Reg, Reg, u16) -> Instr,
                       hi: i64|
     -> Result<Instr, AsmError> {
        arity(3)?;
        let d = cx.reg(&ops[0])?;
        let a = cx.reg(&ops[1])?;
        if let Ok(b) = ops[2].parse::<Reg>() {
            Ok(rc(d, a, b))
        } else {
            Ok(ic(d, a, cx.imm_range(&ops[2], 0, hi)? as u16))
        }
    };

    let instr = match mnemonic {
        "nop" => {
            arity(0)?;
            Instr::Nop
        }
        "add" => reg3_or_imm(
            |d, a, b| Instr::Add { d, a, b },
            |d, a, imm| Instr::AddI { d, a, imm },
            0xFFFF,
        )?,
        "sub" => reg3_or_imm(
            |d, a, b| Instr::Sub { d, a, b },
            |d, a, imm| Instr::SubI { d, a, imm },
            0xFFFF,
        )?,
        "eq" => reg3_or_imm(
            |d, a, b| Instr::Eq { d, a, b },
            |d, a, imm| Instr::EqI { d, a, imm },
            0xFFFF,
        )?,
        "shl" => reg3_or_imm(
            |d, a, b| Instr::Shl { d, a, b },
            |d, a, imm| Instr::ShlI {
                d,
                a,
                imm: imm as u8,
            },
            31,
        )?,
        "shr" => reg3_or_imm(
            |d, a, b| Instr::Shr { d, a, b },
            |d, a, imm| Instr::ShrI {
                d,
                a,
                imm: imm as u8,
            },
            31,
        )?,
        "ashr" => reg3_or_imm(
            |d, a, b| Instr::Ashr { d, a, b },
            |d, a, imm| Instr::AshrI {
                d,
                a,
                imm: imm as u8,
            },
            31,
        )?,
        "mul" => reg3(|d, a, b| Instr::Mul { d, a, b })?,
        "divs" => reg3(|d, a, b| Instr::Divs { d, a, b })?,
        "divu" => reg3(|d, a, b| Instr::Divu { d, a, b })?,
        "rems" => reg3(|d, a, b| Instr::Rems { d, a, b })?,
        "remu" => reg3(|d, a, b| Instr::Remu { d, a, b })?,
        "and" => reg3(|d, a, b| Instr::And { d, a, b })?,
        "or" => reg3(|d, a, b| Instr::Or { d, a, b })?,
        "xor" => reg3(|d, a, b| Instr::Xor { d, a, b })?,
        "lss" => reg3(|d, a, b| Instr::Lss { d, a, b })?,
        "lsu" => reg3(|d, a, b| Instr::Lsu { d, a, b })?,
        "neg" => reg2(|d, a| Instr::Neg { d, a })?,
        "not" => reg2(|d, a| Instr::Not { d, a })?,
        "clz" => reg2(|d, a| Instr::Clz { d, a })?,
        "byterev" => reg2(|d, a| Instr::Byterev { d, a })?,
        "bitrev" => reg2(|d, a| Instr::Bitrev { d, a })?,
        "mov" => {
            arity(2)?;
            Instr::AddI {
                d: cx.reg(&ops[0])?,
                a: cx.reg(&ops[1])?,
                imm: 0,
            }
        }
        "mkmsk" => {
            arity(2)?;
            let d = cx.reg(&ops[0])?;
            if let Ok(s) = ops[1].parse::<Reg>() {
                Instr::MkMsk { d, s }
            } else {
                Instr::MkMskI {
                    d,
                    width: cx.imm_range(&ops[1], 0, 32)? as u8,
                }
            }
        }
        "sext" => {
            arity(2)?;
            Instr::Sext {
                r: cx.reg(&ops[0])?,
                bits: cx.imm_range(&ops[1], 1, 32)? as u8,
            }
        }
        "zext" => {
            arity(2)?;
            Instr::Zext {
                r: cx.reg(&ops[0])?,
                bits: cx.imm_range(&ops[1], 1, 32)? as u8,
            }
        }
        "ldc" => {
            arity(2)?;
            let d = cx.reg(&ops[0])?;
            if let Some(v) = parse_imm(&ops[1]) {
                let imm = imm_to_u32(v)
                    .ok_or_else(|| cx.err(format!("constant {v} does not fit in 32 bits")))?;
                Instr::Ldc { d, imm }
            } else {
                let addr = labels
                    .get(ops[1].as_str())
                    .ok_or_else(|| cx.err(format!("unknown label `{}`", ops[1])))?;
                Instr::Ldc { d, imm: *addr }
            }
        }
        "ldw" | "ld16s" | "ld8u" => {
            arity(2)?;
            let d = cx.reg(&ops[0])?;
            let (base, off) = cx.mem(&ops[1])?;
            match mnemonic {
                "ldw" => Instr::Ldw { d, base, off },
                "ld16s" => Instr::Ld16s { d, base, off },
                _ => Instr::Ld8u { d, base, off },
            }
        }
        "stw" | "st16" | "st8" => {
            arity(2)?;
            let s = cx.reg(&ops[0])?;
            let (base, off) = cx.mem(&ops[1])?;
            match mnemonic {
                "stw" => Instr::Stw { s, base, off },
                "st16" => Instr::St16 { s, base, off },
                _ => Instr::St8 { s, base, off },
            }
        }
        "ldaw" => {
            arity(2)?;
            let d = cx.reg(&ops[0])?;
            let (base, off) = cx.mem(&ops[1])?;
            match off {
                MemOffset::Imm(imm) => Instr::Ldaw { d, base, imm },
                MemOffset::Reg(_) => {
                    return Err(cx.err("ldaw requires an immediate index"));
                }
            }
        }
        "ldap" => {
            arity(2)?;
            Instr::Ldap {
                d: cx.reg(&ops[0])?,
                off: cx.target(&ops[1])?,
            }
        }
        "bu" => {
            arity(1)?;
            Instr::Bu {
                off: cx.target(&ops[0])?,
            }
        }
        "bl" => {
            arity(1)?;
            Instr::Bl {
                off: cx.target(&ops[0])?,
            }
        }
        "bt" => {
            arity(2)?;
            Instr::Bt {
                s: cx.reg(&ops[0])?,
                off: cx.target(&ops[1])?,
            }
        }
        "bf" => {
            arity(2)?;
            Instr::Bf {
                s: cx.reg(&ops[0])?,
                off: cx.target(&ops[1])?,
            }
        }
        "bau" => {
            arity(1)?;
            Instr::Bau {
                s: cx.reg(&ops[0])?,
            }
        }
        "ret" => {
            arity(0)?;
            Instr::Ret
        }
        "getr" => {
            arity(2)?;
            let d = cx.reg(&ops[0])?;
            let ty = ResType::ALL
                .into_iter()
                .find(|t| t.keyword() == ops[1])
                .ok_or_else(|| cx.err(format!("unknown resource type `{}`", ops[1])))?;
            Instr::GetR { d, ty }
        }
        "freer" => {
            arity(1)?;
            Instr::FreeR {
                r: cx.reg(&ops[0])?,
            }
        }
        "tspawn" => reg3(|d, entry, arg| Instr::TSpawn { d, entry, arg })?,
        "freet" => {
            arity(0)?;
            Instr::FreeT
        }
        "msync" => {
            arity(1)?;
            Instr::MSync {
                r: cx.reg(&ops[0])?,
            }
        }
        "ssync" => {
            arity(1)?;
            Instr::SSync {
                r: cx.reg(&ops[0])?,
            }
        }
        "setd" => reg2(|r, s| Instr::SetD { r, s })?,
        "out" => reg2(|r, s| Instr::Out { r, s })?,
        "outt" => reg2(|r, s| Instr::OutT { r, s })?,
        "in" => reg2(|d, r| Instr::In { d, r })?,
        "int" => reg2(|d, r| Instr::InT { d, r })?,
        "testct" => reg2(|d, r| Instr::TestCt { d, r })?,
        "tmwait" => reg2(|r, s| Instr::TmWait { r, s })?,
        "outct" => {
            arity(2)?;
            Instr::OutCt {
                r: cx.reg(&ops[0])?,
                ct: cx.control_token(&ops[1])?,
            }
        }
        "chkct" => {
            arity(2)?;
            Instr::ChkCt {
                r: cx.reg(&ops[0])?,
                ct: cx.control_token(&ops[1])?,
            }
        }
        "waiteu" => {
            arity(0)?;
            Instr::Waiteu
        }
        "setv" => {
            arity(2)?;
            Instr::SetV {
                r: cx.reg(&ops[0])?,
                off: cx.target(&ops[1])?,
            }
        }
        "eeu" => {
            arity(1)?;
            Instr::Eeu {
                r: cx.reg(&ops[0])?,
            }
        }
        "edu" => {
            arity(1)?;
            Instr::Edu {
                r: cx.reg(&ops[0])?,
            }
        }
        "clre" => {
            arity(0)?;
            Instr::ClrE
        }
        "print" => {
            arity(1)?;
            Instr::Hostcall {
                func: HostcallFn::PrintInt,
                s: cx.reg(&ops[0])?,
            }
        }
        "printc" => {
            arity(1)?;
            Instr::Hostcall {
                func: HostcallFn::PrintChar,
                s: cx.reg(&ops[0])?,
            }
        }
        "halt" => {
            arity(0)?;
            Instr::Hostcall {
                func: HostcallFn::Halt,
                s: Reg::R0,
            }
        }
        other => {
            return Err(AsmError::new(line, format!("unknown mnemonic `{other}`")));
        }
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode;
    use crate::reg::Reg::*;

    fn asm(src: &str) -> Program {
        Assembler::new().assemble(src).expect("assembles")
    }

    fn first(src: &str) -> Instr {
        let p = asm(src);
        decode(p.words()).expect("decodes").0
    }

    #[test]
    fn assembles_every_mnemonic_family() {
        let src = "
            start:
                nop
                add   r0, r1, r2
                add   r0, r1, 7
                sub   r3, r3, 1
                mul   r4, r5, r6
                divu  r7, r8, r9
                and   r0, r1, r2
                shl   r0, r1, 3
                shl   r0, r1, r2
                eq    r0, r1, 0
                lss   r0, r1, r2
                neg   r0, r1
                clz   r2, r3
                mkmsk r0, 8
                mkmsk r0, r1
                sext  r0, 8
                zext  r0, 16
                mov   r5, r6
                ldc   r0, 0x1234
                ldc   r1, 100000
                ldc   r2, start
                ldw   r0, r1[2]
                ldw   r0, r1[r2]
                stw   r0, sp[0]
                ld8u  r0, r1[r2]
                st16  r0, r1[-4]
                ldaw  r0, sp[-2]
                ldap  r11, start
                bu    start
                bt    r0, start
                bf    r0, .+2
                bl    start
                bau   lr
                ret
                getr  r0, chanend
                getr  r1, timer
                getr  r2, probe
                freer r0
                tspawn r0, r1, r2
                msync r3
                ssync r3
                setd  r0, r1
                out   r0, r1
                outt  r0, r1
                outct r0, end
                outct r0, 9
                in    r1, r0
                int   r1, r0
                chkct r0, pause
                testct r1, r0
                tmwait r0, r1
                waiteu
                print r0
                printc r1
                halt
                freet
        ";
        let p = asm(src);
        // 56 instructions + 2 extension words (ldc 100000, ldc start-as-label).
        assert_eq!(p.words().len(), 58);
    }

    #[test]
    fn branch_offsets_are_relative_to_next_instruction() {
        let p = asm("loop: nop\n bu loop");
        let (i, _) = p.decode_at(4).expect("decodes");
        assert_eq!(i, Instr::Bu { off: -2 });
        let p = asm("bu after\n nop\n after: nop");
        let (i, _) = p.decode_at(0).expect("decodes");
        assert_eq!(i, Instr::Bu { off: 1 });
    }

    #[test]
    fn branch_over_wide_ldc_accounts_for_extension_word() {
        let p = asm("bu target\n ldc r0, 0x12345678\n target: nop");
        // ldc takes 2 words, so the branch must skip 2.
        let (i, _) = p.decode_at(0).expect("decodes");
        assert_eq!(i, Instr::Bu { off: 2 });
        assert_eq!(p.symbol("target"), Some(12));
    }

    #[test]
    fn label_references_resolve_to_byte_addresses() {
        let p = asm("nop\n data: .word 42\n ldc r0, data");
        assert_eq!(p.symbol("data"), Some(4));
        let (i, _) = p.decode_at(8).expect("decodes");
        assert_eq!(i, Instr::Ldc { d: R0, imm: 4 });
    }

    #[test]
    fn immediates_in_all_bases() {
        assert_eq!(first("ldc r0, 0x10"), Instr::Ldc { d: R0, imm: 16 });
        assert_eq!(first("ldc r0, 0b101"), Instr::Ldc { d: R0, imm: 5 });
        assert_eq!(first("ldc r0, 'A'"), Instr::Ldc { d: R0, imm: 65 });
        assert_eq!(
            first("ldc r0, -1"),
            Instr::Ldc {
                d: R0,
                imm: u32::MAX
            }
        );
        assert_eq!(first("ldc r0, 1_000"), Instr::Ldc { d: R0, imm: 1000 });
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = Assembler::new()
            .assemble("nop\nbogus r0")
            .expect_err("should fail");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));

        let err = Assembler::new()
            .assemble("x: nop\nx: nop")
            .expect_err("duplicate");
        assert!(err.message.contains("duplicate label"));

        let err = Assembler::new()
            .assemble("bu nowhere")
            .expect_err("unknown label");
        assert!(err.message.contains("nowhere"));

        let err = Assembler::new()
            .assemble("add r0, r1, 99999")
            .expect_err("range");
        assert!(err.message.contains("out of range"));

        let err = Assembler::new().assemble("add r0, r1").expect_err("arity");
        assert!(err.message.contains("expects 3"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = asm("# header\n  // also\n; and this\n nop # trailing\n");
        assert_eq!(p.words().len(), 1);
    }

    #[test]
    fn space_directive_emits_zeros() {
        let p = asm("buf: .space 3\n nop");
        assert_eq!(p.words()[..3], [0, 0, 0]);
        assert_eq!(p.words().len(), 4);
    }

    #[test]
    fn word_directive_accepts_labels() {
        let p = asm("a: nop\n tbl: .word a\n .word 0xFFFF_FFFF");
        assert_eq!(p.words()[1], 0);
        assert_eq!(p.words()[2], u32::MAX);
    }

    #[test]
    fn empty_source_yields_empty_program() {
        let p = asm("");
        assert!(p.words().is_empty());
        assert_eq!(p.entry(), 0);
    }
}
