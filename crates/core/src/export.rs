//! Trace and metrics exporters.
//!
//! Two interchange formats close the observability loop:
//!
//! * [`chrome_trace_json`] — the merged [`TraceLog`] as Chrome
//!   `trace_event` JSON (load it in Perfetto / `chrome://tracing`). Cores,
//!   links and supplies render as separate processes: scheduling blocks
//!   become duration slices, token/channel happenings become instants and
//!   rail measurements become counter tracks.
//! * [`supply_csv`] — the [`MetricsHub`](swallow_board::MetricsHub) rows
//!   as a per-supply power time series, one row per slice per monitor
//!   window. Integrating `power × span` over the file reproduces the
//!   energy ledger total (the conservation property the observability
//!   test suite pins at 1e-9 relative).
//!
//! Both writers are hand-rolled (the workspace takes no serialisation
//! dependency) and deterministic: identical logs yield identical bytes,
//! which is what lets a golden-file test pin the schema.

use std::fmt::Write as _;
use std::io;
use std::path::Path;
use swallow_board::power::RAILS;
use swallow_board::SupplyRow;
use swallow_sim::{TraceEvent, TraceLog, TraceRecord};

/// Synthetic "process" ids grouping tracks in the Chrome trace.
const PID_CORES: u32 = 0;
const PID_LINKS: u32 = 1;
const PID_SUPPLIES: u32 = 2;

fn ts_us(ps: u64) -> String {
    // Chrome trace timestamps are microseconds; six decimals keeps full
    // picosecond resolution and a stable textual form for golden files.
    format!("{:.6}", ps as f64 / 1e6)
}

fn push_args(out: &mut String, event: &TraceEvent) {
    match *event {
        TraceEvent::CoreWake { .. } | TraceEvent::CoreSleep { .. } => {
            out.push_str("{}");
        }
        TraceEvent::ThreadSchedule { thread, pc, .. } => {
            let _ = write!(out, "{{\"thread\":{thread},\"pc\":{pc}}}");
        }
        TraceEvent::BlockRetire {
            thread, instret, ..
        } => {
            let _ = write!(out, "{{\"thread\":{thread},\"instret\":{instret}}}");
        }
        TraceEvent::TokenSend {
            chanend,
            dest_node,
            dest_chanend,
            tokens,
            ctrl,
            ..
        } => {
            let _ = write!(
                out,
                "{{\"chanend\":{chanend},\"dest_node\":{dest_node},\
                 \"dest_chanend\":{dest_chanend},\"tokens\":{tokens},\"ctrl\":{ctrl}}}"
            );
        }
        TraceEvent::TokenReceive { chanend, ctrl, .. } => {
            let _ = write!(out, "{{\"chanend\":{chanend},\"ctrl\":{ctrl}}}");
        }
        TraceEvent::LinkTransit { from, to, ctrl, .. } => {
            let _ = write!(out, "{{\"from\":{from},\"to\":{to},\"ctrl\":{ctrl}}}");
        }
        TraceEvent::ChannelOpen { chanend, .. } | TraceEvent::ChannelClose { chanend, .. } => {
            let _ = write!(out, "{{\"chanend\":{chanend}}}");
        }
        TraceEvent::DvfsChange { hz, .. } => {
            let _ = write!(out, "{{\"hz\":{hz}}}");
        }
        TraceEvent::SupplySample { microwatts, .. } => {
            let _ = write!(out, "{{\"uW\":{microwatts}}}");
        }
        TraceEvent::LinkFault { up, .. } => {
            let _ = write!(out, "{{\"up\":{up}}}");
        }
        TraceEvent::LinkRetry { streak, .. } => {
            let _ = write!(out, "{{\"streak\":{streak}}}");
        }
        TraceEvent::TokenDrop { .. } => {
            out.push_str("{}");
        }
        TraceEvent::CoreFault { kind, .. } => {
            let _ = write!(out, "{{\"kind\":\"{kind}\"}}");
        }
        TraceEvent::Brownout { active, hz } => {
            let _ = write!(out, "{{\"active\":{active},\"hz\":{hz}}}");
        }
        TraceEvent::RouteRecompute { dead_links } => {
            let _ = write!(out, "{{\"dead_links\":{dead_links}}}");
        }
    }
}

fn push_event(out: &mut String, record: &TraceRecord) {
    let ts = ts_us(record.at.as_ps());
    let kind = record.event.kind();
    match record.event {
        TraceEvent::BlockRetire {
            core,
            since,
            reason,
            ..
        } => {
            let dur = ts_us(record.at.saturating_since(since).as_ps());
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":{PID_CORES},\"tid\":{core},\"ts\":{},\
                 \"dur\":{dur},\"name\":\"{reason}\",\"cat\":\"{kind}\",\"args\":",
                ts_us(since.as_ps()),
            );
        }
        TraceEvent::LinkTransit { link, busy, .. } => {
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":{PID_LINKS},\"tid\":{link},\"ts\":{ts},\
                 \"dur\":{},\"name\":\"transit\",\"cat\":\"{kind}\",\"args\":",
                ts_us(busy.as_ps()),
            );
        }
        TraceEvent::SupplySample { slice, rail, .. } => {
            let _ = write!(
                out,
                "{{\"ph\":\"C\",\"pid\":{PID_SUPPLIES},\"tid\":0,\"ts\":{ts},\
                 \"name\":\"slice{slice}.rail{rail}\",\"cat\":\"{kind}\",\"args\":",
            );
        }
        TraceEvent::CoreWake { core }
        | TraceEvent::CoreSleep { core }
        | TraceEvent::ThreadSchedule { core, .. }
        | TraceEvent::TokenSend { core, .. }
        | TraceEvent::TokenReceive { core, .. }
        | TraceEvent::ChannelOpen { core, .. }
        | TraceEvent::ChannelClose { core, .. }
        | TraceEvent::DvfsChange { core, .. }
        | TraceEvent::CoreFault { core, .. } => {
            let _ = write!(
                out,
                "{{\"ph\":\"i\",\"pid\":{PID_CORES},\"tid\":{core},\"ts\":{ts},\
                 \"s\":\"t\",\"name\":\"{kind}\",\"cat\":\"{kind}\",\"args\":",
            );
        }
        TraceEvent::LinkFault { link, .. }
        | TraceEvent::LinkRetry { link, .. }
        | TraceEvent::TokenDrop { link } => {
            let _ = write!(
                out,
                "{{\"ph\":\"i\",\"pid\":{PID_LINKS},\"tid\":{link},\"ts\":{ts},\
                 \"s\":\"t\",\"name\":\"{kind}\",\"cat\":\"{kind}\",\"args\":",
            );
        }
        TraceEvent::Brownout { .. } | TraceEvent::RouteRecompute { .. } => {
            let _ = write!(
                out,
                "{{\"ph\":\"i\",\"pid\":{PID_SUPPLIES},\"tid\":0,\"ts\":{ts},\
                 \"s\":\"p\",\"name\":\"{kind}\",\"cat\":\"{kind}\",\"args\":",
            );
        }
    }
    push_args(out, &record.event);
    out.push('}');
}

/// Renders a merged trace log as Chrome `trace_event` JSON.
///
/// Track layout: pid 0 = cores (one thread track per core node), pid 1 =
/// links (one track per link id), pid 2 = supply-rail counters. Metadata
/// records name every track, so Perfetto shows "core 3" rather than a
/// bare tid. Output is deterministic for a given log.
pub fn chrome_trace_json(log: &TraceLog) -> String {
    use std::collections::BTreeSet;
    let mut core_tids = BTreeSet::new();
    let mut link_tids = BTreeSet::new();
    for r in &log.records {
        match r.event {
            TraceEvent::LinkTransit { link, .. }
            | TraceEvent::LinkFault { link, .. }
            | TraceEvent::LinkRetry { link, .. }
            | TraceEvent::TokenDrop { link } => {
                link_tids.insert(link);
            }
            TraceEvent::SupplySample { .. }
            | TraceEvent::Brownout { .. }
            | TraceEvent::RouteRecompute { .. } => {}
            TraceEvent::CoreWake { core }
            | TraceEvent::CoreSleep { core }
            | TraceEvent::ThreadSchedule { core, .. }
            | TraceEvent::BlockRetire { core, .. }
            | TraceEvent::TokenSend { core, .. }
            | TraceEvent::TokenReceive { core, .. }
            | TraceEvent::ChannelOpen { core, .. }
            | TraceEvent::ChannelClose { core, .. }
            | TraceEvent::DvfsChange { core, .. }
            | TraceEvent::CoreFault { core, .. } => {
                core_tids.insert(core);
            }
        }
    }

    let mut out = String::with_capacity(128 + log.records.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let push_meta = |out: &mut String, first: &mut bool, pid: u32, what: &str, name: &str| {
        if !*first {
            out.push(',');
        }
        *first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{what}\",\
             \"args\":{{\"name\":\"{name}\"}}}}",
            tid = 0,
        );
    };
    push_meta(&mut out, &mut first, PID_CORES, "process_name", "cores");
    push_meta(&mut out, &mut first, PID_LINKS, "process_name", "links");
    push_meta(
        &mut out,
        &mut first,
        PID_SUPPLIES,
        "process_name",
        "supplies",
    );
    for &core in &core_tids {
        out.push(',');
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{PID_CORES},\"tid\":{core},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"core {core}\"}}}}"
        );
    }
    for &link in &link_tids {
        out.push(',');
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{PID_LINKS},\"tid\":{link},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"link {link}\"}}}}"
        );
    }
    for record in &log.records {
        out.push(',');
        push_event(&mut out, record);
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"dropped\":{}}}}}",
        log.dropped
    );
    out
}

/// Renders metrics-hub rows as a per-supply power time series in CSV.
///
/// Columns: `time_us,span_us,slice,rail0_mw..rail4_mw,loss_mw` — one row
/// per slice per monitor window, powers as mean load over the window.
/// `Σ (rail + loss powers) × span` over the file equals the cumulative
/// measured energy (the telescoping construction in
/// [`MetricsHub`](swallow_board::MetricsHub) makes this exact up to f64
/// association).
pub fn supply_csv(rows: &[SupplyRow]) -> String {
    let mut out = String::with_capacity(64 + rows.len() * 80);
    out.push_str("time_us,span_us,slice");
    for rail in 0..RAILS {
        let _ = write!(out, ",rail{rail}_mw");
    }
    out.push_str(",loss_mw\n");
    for row in rows {
        let _ = write!(
            out,
            "{},{},{}",
            ts_us(row.at.as_ps()),
            ts_us(row.span.as_ps()),
            row.slice
        );
        for rail in 0..RAILS {
            let _ = write!(
                out,
                ",{:.6}",
                row.rails[rail].over(row.span).as_milliwatts()
            );
        }
        let _ = writeln!(out, ",{:.6}", row.loss.over(row.span).as_milliwatts());
    }
    out
}

/// Writes [`chrome_trace_json`] to a file.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_chrome_trace(path: &Path, log: &TraceLog) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json(log))
}

/// Writes [`supply_csv`] to a file.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_supply_csv(path: &Path, rows: &[SupplyRow]) -> io::Result<()> {
    std::fs::write(path, supply_csv(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow_energy::Energy;
    use swallow_sim::{Time, TimeDelta};

    fn sample_log() -> TraceLog {
        TraceLog {
            records: vec![
                TraceRecord {
                    at: Time::from_ps(1_000),
                    event: TraceEvent::CoreWake { core: 2 },
                },
                TraceRecord {
                    at: Time::from_ps(9_000),
                    event: TraceEvent::BlockRetire {
                        core: 2,
                        thread: 0,
                        instret: 4,
                        since: Time::from_ps(1_000),
                        reason: "recv",
                    },
                },
                TraceRecord {
                    at: Time::from_ps(9_500),
                    event: TraceEvent::LinkTransit {
                        link: 7,
                        from: 2,
                        to: 3,
                        ctrl: false,
                        busy: TimeDelta::from_ns(4),
                    },
                },
                TraceRecord {
                    at: Time::from_ps(10_000),
                    event: TraceEvent::SupplySample {
                        slice: 0,
                        rail: 1,
                        microwatts: 12_500,
                    },
                },
            ],
            dropped: 0,
        }
    }

    #[test]
    fn chrome_trace_has_tracks_and_durations() {
        let json = chrome_trace_json(&sample_log());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"core 2\""), "{json}");
        assert!(json.contains("\"name\":\"link 7\""), "{json}");
        // The retire block spans 1 ns .. 9 ns.
        assert!(json.contains("\"ts\":0.001000,\"dur\":0.008000"), "{json}");
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"uW\":12500"), "{json}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn csv_rows_carry_mean_power() {
        let span = TimeDelta::from_us(1);
        let rows = [SupplyRow {
            at: Time::from_ps(1_000_000),
            span,
            slice: 0,
            rails: [Energy::from_nanojoules(1.0); RAILS],
            loss: Energy::from_nanojoules(0.5),
        }];
        let csv = supply_csv(&rows);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("time_us,span_us,slice,rail0_mw,rail1_mw,rail2_mw,rail3_mw,rail4_mw,loss_mw")
        );
        // 1 nJ over 1 µs = 1 mW per rail; 0.5 nJ loss = 0.5 mW.
        assert_eq!(
            lines.next(),
            Some(
                "1.000000,1.000000,0,1.000000,1.000000,1.000000,1.000000,1.000000,\
                 0.500000"
            )
        );
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn empty_exports_are_valid() {
        let json = chrome_trace_json(&TraceLog::new());
        assert!(json.contains("\"traceEvents\":["));
        let csv = supply_csv(&[]);
        assert_eq!(csv.lines().count(), 1);
    }
}
