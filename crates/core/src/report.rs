//! Energy and performance reports.
//!
//! Energy transparency (§I) means a user can always answer "where did the
//! joules go?". [`PowerReport`] renders the Fig. 2-style category
//! breakdown for a run; [`PerfReport`] the throughput side (the paper's
//! headline "up to 240 GIPS").

use std::fmt;
use swallow_board::Machine;
use swallow_energy::{Energy, EnergyLedger, NodeCategory, Power};
use swallow_sim::TimeDelta;

/// Where a run's energy went.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerReport {
    /// Per-category machine-wide energy (Fig. 2 categories).
    pub ledger: EnergyLedger,
    /// The span the report covers.
    pub elapsed: TimeDelta,
    /// Mean machine power over the span.
    pub mean_power: Power,
    /// Mean power per core (the paper's mW/core comparisons).
    pub per_core: Power,
}

impl PowerReport {
    /// Collects the report from a machine.
    pub fn collect(machine: &Machine, elapsed: TimeDelta) -> Self {
        let ledger = machine.machine_ledger();
        let mean_power = ledger.total().over(elapsed);
        let per_core = mean_power / machine.core_count().max(1) as f64;
        PowerReport {
            ledger,
            elapsed,
            mean_power,
            per_core,
        }
    }

    /// Energy in one category.
    pub fn energy(&self, category: NodeCategory) -> Energy {
        self.ledger.get(category)
    }

    /// Fraction of total energy in one category.
    pub fn fraction(&self, category: NodeCategory) -> f64 {
        self.ledger.fraction(category)
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "power report over {}:", self.elapsed)?;
        for (cat, energy) in self.ledger.iter() {
            writeln!(
                f,
                "  {:<26} {:>12}  {:>10}  ({:>5.1}%)",
                cat.label(),
                energy.to_string(),
                energy.over(self.elapsed).to_string(),
                self.fraction(cat) * 100.0,
            )?;
        }
        writeln!(
            f,
            "  {:<26} {:>12}  {:>10}",
            "Total",
            self.ledger.total().to_string(),
            self.mean_power.to_string()
        )?;
        write!(f, "  per core: {}", self.per_core)
    }
}

/// What a run computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PerfReport {
    /// Instructions retired machine-wide.
    pub instret: u64,
    /// The span the report covers.
    pub elapsed: TimeDelta,
    /// Number of cores.
    pub cores: usize,
}

impl PerfReport {
    /// Collects the report from a machine.
    pub fn collect(machine: &Machine, elapsed: TimeDelta) -> Self {
        PerfReport {
            instret: machine.total_instret(),
            elapsed,
            cores: machine.core_count(),
        }
    }

    /// Machine-wide instructions per second.
    pub fn ips(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.instret as f64 / secs
        }
    }

    /// Machine-wide throughput in GIPS (the paper's headline unit).
    pub fn gips(&self) -> f64 {
        self.ips() / 1e9
    }
}

impl fmt::Display for PerfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instructions on {} cores over {} = {:.3} GIPS",
            self.instret,
            self.cores,
            self.elapsed,
            self.gips()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemBuilder;
    use swallow_isa::Assembler;

    #[test]
    fn reports_cover_a_busy_run() {
        let mut sys = SystemBuilder::new().build().expect("builds");
        let busy = Assembler::new()
            .assemble("loop: add r1, r1, 1\n bu loop")
            .expect("assembles");
        sys.load_program_all(&busy).expect("fits");
        sys.run_for(TimeDelta::from_us(20));

        let perf = sys.perf_report();
        // 16 cores × 125 MIPS (one thread each) = 2 GIPS.
        assert!((perf.gips() - 2.0).abs() < 0.1, "gips = {}", perf.gips());

        let power = sys.power_report();
        let total_mw = power.mean_power.as_milliwatts();
        // 16 single-thread cores sit between idle (113) and loaded (193),
        // plus supply losses and support power.
        assert!(
            (2_000.0..4_000.0).contains(&total_mw),
            "machine power = {total_mw} mW"
        );
        assert!(power.per_core.as_milliwatts() > 113.0);
        let fractions: f64 = NodeCategory::ALL.iter().map(|&c| power.fraction(c)).sum();
        assert!((fractions - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_includes_all_categories() {
        let sys = SystemBuilder::new().build().expect("builds");
        let text = sys.power_report().to_string();
        for cat in NodeCategory::ALL {
            assert!(text.contains(cat.label()));
        }
        let perf_text = sys.perf_report().to_string();
        assert!(perf_text.contains("GIPS"));
    }

    #[test]
    fn empty_run_is_safe() {
        let sys = SystemBuilder::new().build().expect("builds");
        let perf = sys.perf_report();
        assert_eq!(perf.ips(), 0.0);
        let power = sys.power_report();
        assert_eq!(power.mean_power, Power::ZERO);
    }
}
