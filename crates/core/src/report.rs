//! Energy and performance reports.
//!
//! Energy transparency (§I) means a user can always answer "where did the
//! joules go?". [`PowerReport`] renders the Fig. 2-style category
//! breakdown for a run; [`PerfReport`] the throughput side (the paper's
//! headline "up to 240 GIPS").

use std::fmt;
use swallow_board::{BridgeStats, Machine};
use swallow_energy::{Energy, EnergyLedger, NodeCategory, Power};
use swallow_faults::FaultCounters;
use swallow_isa::{NodeId, ThreadId};
use swallow_noc::LinkStats;
use swallow_sim::TimeDelta;
use swallow_xcore::MAX_THREADS;

/// Where a run's energy went.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerReport {
    /// Per-category machine-wide energy (Fig. 2 categories).
    pub ledger: EnergyLedger,
    /// The span the report covers.
    pub elapsed: TimeDelta,
    /// Mean machine power over the span.
    pub mean_power: Power,
    /// Mean power per core (the paper's mW/core comparisons).
    pub per_core: Power,
}

impl PowerReport {
    /// Collects the report from a machine.
    pub fn collect(machine: &Machine, elapsed: TimeDelta) -> Self {
        let ledger = machine.machine_ledger();
        let mean_power = ledger.total().over(elapsed);
        let per_core = mean_power / machine.core_count().max(1) as f64;
        PowerReport {
            ledger,
            elapsed,
            mean_power,
            per_core,
        }
    }

    /// Energy in one category.
    pub fn energy(&self, category: NodeCategory) -> Energy {
        self.ledger.get(category)
    }

    /// Fraction of total energy in one category.
    pub fn fraction(&self, category: NodeCategory) -> f64 {
        self.ledger.fraction(category)
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "power report over {}:", self.elapsed)?;
        for (cat, energy) in self.ledger.iter() {
            writeln!(
                f,
                "  {:<26} {:>12}  {:>10}  ({:>5.1}%)",
                cat.label(),
                energy.to_string(),
                energy.over(self.elapsed).to_string(),
                self.fraction(cat) * 100.0,
            )?;
        }
        writeln!(
            f,
            "  {:<26} {:>12}  {:>10}",
            "Total",
            self.ledger.total().to_string(),
            self.mean_power.to_string()
        )?;
        write!(f, "  per core: {}", self.per_core)
    }
}

/// What a run computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PerfReport {
    /// Instructions retired machine-wide.
    pub instret: u64,
    /// The span the report covers.
    pub elapsed: TimeDelta,
    /// Number of cores.
    pub cores: usize,
}

impl PerfReport {
    /// Collects the report from a machine.
    pub fn collect(machine: &Machine, elapsed: TimeDelta) -> Self {
        PerfReport {
            instret: machine.total_instret(),
            elapsed,
            cores: machine.core_count(),
        }
    }

    /// Machine-wide instructions per second.
    pub fn ips(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.instret as f64 / secs
        }
    }

    /// Machine-wide throughput in GIPS (the paper's headline unit).
    pub fn gips(&self) -> f64 {
        self.ips() / 1e9
    }
}

impl fmt::Display for PerfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instructions on {} cores over {} = {:.3} GIPS",
            self.instret,
            self.cores,
            self.elapsed,
            self.gips()
        )
    }
}

/// Utilization and energy of one core over a run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoreMetrics {
    /// The core's node id.
    pub node: NodeId,
    /// Instructions retired.
    pub instret: u64,
    /// Core cycles elapsed (at the core's own clock).
    pub cycles: u64,
    /// Issue-slot utilization: retired instructions per elapsed cycle
    /// (the XS1-L issues at most one instruction per cycle).
    pub utilization: f64,
    /// Core-level energy (compute + static + network-interface shares).
    pub energy: Energy,
    /// Instructions retired per hardware thread.
    pub thread_instret: [u64; MAX_THREADS],
}

/// Per-component utilization/energy metrics: the numeric counterpart of
/// the event trace, collected from the same run.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsReport {
    /// The span the report covers.
    pub elapsed: TimeDelta,
    /// One entry per core, in node order.
    pub cores: Vec<CoreMetrics>,
    /// One entry per directed link, in link-id order.
    pub links: Vec<LinkStats>,
    /// Number of per-supply measurement rows recorded by the metrics hub
    /// (zero unless metrics collection was enabled).
    pub supply_rows: usize,
    /// Energy integrated over the recorded supply rows.
    pub metered_energy: Energy,
    /// The machine ledger total over the same run (the conservation
    /// reference: after a final flush, `metered_energy` matches this
    /// within f64 association when metrics are enabled).
    pub ledger_energy: Energy,
    /// Cumulative fault-injection and resilience counters (all zero on
    /// a fault-free run).
    pub faults: FaultCounters,
    /// Ethernet-bridge traffic counters (`None` when no bridge is
    /// fitted): frame flow plus the ingress backpressure evidence —
    /// rejected frames and peak transmit backlog — so a saturated
    /// bridge is visible in the report instead of silently queueing.
    pub bridge: Option<BridgeStats>,
}

impl MetricsReport {
    /// Collects the report from a machine.
    pub fn collect(machine: &Machine, elapsed: TimeDelta) -> Self {
        let cores = machine
            .nodes()
            .map(|node| {
                let core = machine.core(node);
                let cycles = core.cycles();
                let mut thread_instret = [0u64; MAX_THREADS];
                for (tid, slot) in thread_instret.iter_mut().enumerate() {
                    *slot = core.thread_instret(ThreadId(tid as u8));
                }
                CoreMetrics {
                    node,
                    instret: core.instret(),
                    cycles,
                    utilization: if cycles == 0 {
                        0.0
                    } else {
                        core.instret() as f64 / cycles as f64
                    },
                    energy: core.ledger().total(),
                    thread_instret,
                }
            })
            .collect();
        MetricsReport {
            elapsed,
            cores,
            links: machine.fabric().link_stats().collect(),
            supply_rows: machine.metrics().rows().len(),
            metered_energy: machine.metrics().total_energy(),
            ledger_energy: machine.machine_ledger().total(),
            faults: machine.fault_counters(),
            bridge: machine.bridge().map(|b| b.stats()),
        }
    }

    /// Mean issue-slot utilization across all cores.
    pub fn mean_utilization(&self) -> f64 {
        if self.cores.is_empty() {
            return 0.0;
        }
        self.cores.iter().map(|c| c.utilization).sum::<f64>() / self.cores.len() as f64
    }

    /// Links that carried at least one token.
    pub fn active_links(&self) -> usize {
        self.links
            .iter()
            .filter(|l| l.data_tokens + l.ctrl_tokens + l.header_tokens > 0)
            .count()
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "metrics over {}: {} cores at {:.1}% mean issue utilization",
            self.elapsed,
            self.cores.len(),
            self.mean_utilization() * 100.0
        )?;
        writeln!(
            f,
            "  {} of {} links active; {} supply rows metering {}",
            self.active_links(),
            self.links.len(),
            self.supply_rows,
            self.metered_energy
        )?;
        write!(f, "  ledger total {}", self.ledger_energy)?;
        if let Some(b) = &self.bridge {
            write!(
                f,
                "\n  bridge: {} frames in, {} out, {} rejected \
                 (peak backlog {} tokens)",
                b.frames_sent, b.frames_received, b.frames_rejected, b.peak_backlog
            )?;
        }
        if !self.faults.is_quiet() {
            write!(
                f,
                "\n  faults: {} link downs ({} recovered), {} retransmits, \
                 {} tokens dropped, {} core stalls, {} kills, \
                 {} quarantined, {} brownouts, {} reroutes \
                 ({:.4} delivered-token rate)",
                self.faults.link_downs,
                self.faults.link_ups,
                self.faults.retransmits,
                self.faults.dropped_tokens,
                self.faults.core_stalls,
                self.faults.core_kills,
                self.faults.quarantined_cores,
                self.faults.brownouts,
                self.faults.reroutes,
                self.faults.delivered_rate(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemBuilder;
    use swallow_isa::Assembler;

    #[test]
    fn reports_cover_a_busy_run() {
        let mut sys = SystemBuilder::new().build().expect("builds");
        let busy = Assembler::new()
            .assemble("loop: add r1, r1, 1\n bu loop")
            .expect("assembles");
        sys.load_program_all(&busy).expect("fits");
        sys.run_for(TimeDelta::from_us(20));

        let perf = sys.perf_report();
        // 16 cores × 125 MIPS (one thread each) = 2 GIPS.
        assert!((perf.gips() - 2.0).abs() < 0.1, "gips = {}", perf.gips());

        let power = sys.power_report();
        let total_mw = power.mean_power.as_milliwatts();
        // 16 single-thread cores sit between idle (113) and loaded (193),
        // plus supply losses and support power.
        assert!(
            (2_000.0..4_000.0).contains(&total_mw),
            "machine power = {total_mw} mW"
        );
        assert!(power.per_core.as_milliwatts() > 113.0);
        let fractions: f64 = NodeCategory::ALL.iter().map(|&c| power.fraction(c)).sum();
        assert!((fractions - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_includes_all_categories() {
        let sys = SystemBuilder::new().build().expect("builds");
        let text = sys.power_report().to_string();
        for cat in NodeCategory::ALL {
            assert!(text.contains(cat.label()));
        }
        let perf_text = sys.perf_report().to_string();
        assert!(perf_text.contains("GIPS"));
    }

    #[test]
    fn empty_run_is_safe() {
        let sys = SystemBuilder::new().build().expect("builds");
        let perf = sys.perf_report();
        assert_eq!(perf.ips(), 0.0);
        let power = sys.power_report();
        assert_eq!(power.mean_power, Power::ZERO);
    }
}
