//! The system facade: building and driving a Swallow machine.

use crate::report::{MetricsReport, PerfReport, PowerReport};
use std::fmt;
use swallow_board::{Machine, MachineConfig, RouterKind};
use swallow_isa::{NodeId, Program};
use swallow_sim::{Frequency, Time, TimeDelta, TraceLog, DEFAULT_TRACE_CAPACITY};
use swallow_xcore::LoadError;

/// Error from [`SystemBuilder::build`].
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// A grid dimension was zero.
    EmptyGrid,
    /// Fault rate outside `[0, 1]`.
    BadFaultRate(f64),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::EmptyGrid => write!(f, "grid must have at least one slice"),
            BuildError::BadFaultRate(r) => write!(f, "fault rate {r} outside [0, 1]"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds a [`SwallowSystem`].
///
/// ```
/// use swallow::SystemBuilder;
/// # fn main() -> Result<(), swallow::BuildError> {
/// let system = SystemBuilder::new()
///     .slices(2, 1)
///     .frequency_mhz(400)
///     .build()?;
/// assert_eq!(system.core_count(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SystemBuilder {
    config: MachineConfig,
}

impl SystemBuilder {
    /// A single 16-core slice at the stock 500 MHz.
    pub fn new() -> Self {
        SystemBuilder {
            config: MachineConfig::one_slice(),
        }
    }

    /// Machine size in slices (x × y).
    pub fn slices(mut self, x: u16, y: u16) -> Self {
        self.config.grid = swallow_board::GridSpec {
            slices_x: x,
            slices_y: y,
        };
        self
    }

    /// Core clock for every core.
    pub fn frequency(mut self, f: Frequency) -> Self {
        self.config.frequency = f;
        self
    }

    /// Core clock in megahertz (convenience).
    pub fn frequency_mhz(self, mhz: u64) -> Self {
        self.frequency(Frequency::from_mhz(mhz))
    }

    /// Routing strategy (default: the paper's vertical-first).
    pub fn router(mut self, kind: RouterKind) -> Self {
        self.config.router = kind;
        self
    }

    /// Fit an Ethernet bridge on the south edge (§V.E).
    pub fn bridge(mut self) -> Self {
        self.config.bridge = true;
        self
    }

    /// Inject inter-slice cable faults (connector yield, §IV.B).
    /// Implies nothing about routing: pair with
    /// [`RouterKind::ShortestPaths`] to route around faults.
    pub fn ffc_faults(mut self, rate: f64, seed: u64) -> Self {
        self.config.ffc_fault_rate = rate;
        self.config.fault_seed = seed;
        self
    }

    /// Power-monitor cadence (default 1 µs, the ADC all-channel rate).
    pub fn monitor_window(mut self, window: TimeDelta) -> Self {
        self.config.monitor_window = window;
        self
    }

    /// Simulation engine (default: event-driven fast-forward). The
    /// lock-step engine is the cycle-by-cycle reference used by the
    /// differential test suite.
    pub fn engine(mut self, engine: swallow_board::EngineMode) -> Self {
        self.config.engine = engine;
        self
    }

    /// Use the parallel conservative-epoch engine with `threads` host
    /// worker threads (0 = one per available host CPU). Shorthand for
    /// [`engine`](Self::engine) with [`EngineMode::Parallel`].
    ///
    /// [`EngineMode::Parallel`]: swallow_board::EngineMode::Parallel
    pub fn parallel(self, threads: usize) -> Self {
        self.engine(swallow_board::EngineMode::Parallel { threads })
    }

    /// Selects the parallel engine's epoch-synchronisation strategy:
    /// pairwise watermark negotiation (the default) or the global
    /// barrier-per-epoch escape hatch. Also settable machine-wide via
    /// `SWALLOW_EPOCH_MODE=global`.
    pub fn epoch_mode(mut self, mode: swallow_board::EpochMode) -> Self {
        self.config.epoch_mode = mode;
        self
    }

    /// Attaches typed trace rings (default capacity) to every core, the
    /// fabric and the power monitor. Off by default — and when off, the
    /// trace hooks compile down to one branch per event with no
    /// allocation, so leaving them in every hot path is free.
    pub fn tracing(self) -> Self {
        self.tracing_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Like [`tracing`](Self::tracing) with an explicit per-component
    /// ring capacity (records kept per core/fabric/monitor).
    pub fn tracing_capacity(mut self, capacity: usize) -> Self {
        self.config.trace_capacity = Some(capacity);
        self
    }

    /// Records per-supply energy time series on the power-monitor
    /// cadence (the paper's measurement daughter-board view), exported
    /// via [`SwallowSystem::metrics_report`] and the CSV exporter.
    pub fn metrics(mut self) -> Self {
        self.config.metrics = true;
        self
    }

    /// Schedules deterministic fault injections: link death/recovery,
    /// token corruption/drop windows, core stalls/kills and supply
    /// brownouts, applied at their instants by every engine identically
    /// (DESIGN.md §3.10). Empty plans cost one comparison per edge.
    pub fn faults(mut self, plan: swallow_faults::FaultPlan) -> Self {
        self.config.faults = plan;
        self
    }

    /// Enables or disables the per-core predecoded-instruction cache.
    /// Architecturally invisible either way — identical timelines,
    /// outputs, traces and energy — this is the differential-testing
    /// escape hatch (also reachable via `SWALLOW_DECODE_CACHE=off`).
    pub fn decode_cache(mut self, enabled: bool) -> Self {
        self.config.decode_cache = enabled;
        self
    }

    /// Assembles the machine.
    ///
    /// # Errors
    ///
    /// [`BuildError`] for an empty grid or out-of-range fault rate.
    pub fn build(self) -> Result<SwallowSystem, BuildError> {
        if self.config.grid.slices_x == 0 || self.config.grid.slices_y == 0 {
            return Err(BuildError::EmptyGrid);
        }
        if !(0.0..=1.0).contains(&self.config.ffc_fault_rate) {
            return Err(BuildError::BadFaultRate(self.config.ffc_fault_rate));
        }
        Ok(SwallowSystem {
            machine: Machine::new(self.config),
            started: None,
        })
    }
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder::new()
    }
}

/// A running Swallow machine.
///
/// Thin ergonomics over [`Machine`]: program loading, run control, output
/// collection and the energy/performance reports. Use
/// [`SwallowSystem::machine`] / [`machine_mut`](SwallowSystem::machine_mut)
/// for full access to cores, fabric statistics and the power monitor.
pub struct SwallowSystem {
    machine: Machine,
    started: Option<Time>,
}

impl SwallowSystem {
    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.machine.core_count()
    }

    /// All core node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        self.machine.nodes()
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.machine.now()
    }

    /// Time spent running since the first `run_*` call.
    pub fn elapsed(&self) -> TimeDelta {
        match self.started {
            Some(t0) => self.machine.now().since(t0),
            None => TimeDelta::ZERO,
        }
    }

    /// Loads a program onto one core.
    ///
    /// # Errors
    ///
    /// [`LoadError`] if the image exceeds the core's 64 KiB SRAM.
    pub fn load_program(&mut self, node: NodeId, program: &Program) -> Result<(), LoadError> {
        self.machine.load_program(node, program)
    }

    /// Loads the same program onto every core.
    ///
    /// # Errors
    ///
    /// [`LoadError`] if the image exceeds a core's SRAM.
    pub fn load_program_all(&mut self, program: &Program) -> Result<(), LoadError> {
        self.machine.load_program_all(program)
    }

    /// Runs for a fixed span of simulated time.
    pub fn run_for(&mut self, span: TimeDelta) {
        self.mark_started();
        self.machine.run_for(span);
    }

    /// Runs until the machine is quiescent or the budget expires; returns
    /// true when quiescent.
    pub fn run_until_quiescent(&mut self, budget: TimeDelta) -> bool {
        self.mark_started();
        self.machine.run_until_quiescent(budget)
    }

    fn mark_started(&mut self) {
        if self.started.is_none() {
            self.started = Some(self.machine.now());
        }
    }

    /// Text a core printed via hostcalls.
    pub fn output(&self, node: NodeId) -> &str {
        self.machine.core(node).output()
    }

    /// The first trap recorded on any core, if one occurred.
    pub fn first_trap(&self) -> Option<(NodeId, swallow_xcore::Trap)> {
        self.machine
            .nodes()
            .find_map(|n| self.machine.core(n).trap().map(|t| (n, t)))
    }

    /// Builds the energy report over the elapsed run.
    pub fn power_report(&self) -> PowerReport {
        PowerReport::collect(&self.machine, self.elapsed())
    }

    /// Builds the performance report over the elapsed run.
    pub fn perf_report(&self) -> PerfReport {
        PerfReport::collect(&self.machine, self.elapsed())
    }

    /// Builds the per-component metrics report over the elapsed run.
    pub fn metrics_report(&self) -> MetricsReport {
        MetricsReport::collect(&self.machine, self.elapsed())
    }

    /// Merges every component's trace ring into one chronological log
    /// (cores in node order, then fabric, then monitor — deterministic).
    /// Empty unless the system was built with [`SystemBuilder::tracing`].
    pub fn trace_log(&self) -> TraceLog {
        self.machine.collect_trace()
    }

    /// Closes the metrics time series at the current instant (final
    /// partial-window monitor update + residual rows). Call once at the
    /// end of a run, before exporting metrics.
    pub fn flush_metrics(&mut self) {
        self.machine.flush_metrics();
    }

    /// The underlying machine (cores, fabric, power monitor, bridge).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Serializes the complete machine state into the versioned
    /// `SWLWSNAP` binary format (see [`Machine::snapshot`] and DESIGN.md
    /// §3.13). A later [`SwallowSystem::restore`] continues the run
    /// bit-identically under every engine.
    pub fn snapshot(&self) -> Vec<u8> {
        self.machine.snapshot()
    }

    /// Rebuilds a system from a [`SwallowSystem::snapshot`] image. The
    /// restored system's [`elapsed`](SwallowSystem::elapsed) clock
    /// restarts at the first `run_*` call, so warm-start reports cover
    /// only the continued span.
    ///
    /// # Errors
    ///
    /// [`swallow_sim::CodecError`] on truncated, corrupt or
    /// version-mismatched images — strict-reject, never a panic.
    pub fn restore(bytes: &[u8]) -> Result<SwallowSystem, swallow_sim::CodecError> {
        Ok(SwallowSystem {
            machine: Machine::restore(bytes)?,
            started: None,
        })
    }
}

impl fmt::Debug for SwallowSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwallowSystem")
            .field("cores", &self.core_count())
            .field("now", &self.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow_isa::Assembler;

    #[test]
    fn builder_validates() {
        assert_eq!(
            SystemBuilder::new().slices(0, 1).build().err(),
            Some(BuildError::EmptyGrid)
        );
        assert_eq!(
            SystemBuilder::new().ffc_faults(1.5, 0).build().err(),
            Some(BuildError::BadFaultRate(1.5))
        );
        assert!(SystemBuilder::new().build().is_ok());
    }

    #[test]
    fn elapsed_starts_at_first_run() {
        let mut sys = SystemBuilder::new().build().expect("builds");
        assert_eq!(sys.elapsed(), TimeDelta::ZERO);
        sys.run_for(TimeDelta::from_us(1));
        assert!(sys.elapsed() >= TimeDelta::from_us(1));
    }

    #[test]
    fn first_trap_surfaces() {
        let mut sys = SystemBuilder::new().build().expect("builds");
        let bad = Assembler::new()
            .assemble("ldc r0, 2\n ldw r1, r0[0]\n freet")
            .expect("assembles");
        sys.load_program(NodeId(5), &bad).expect("fits");
        sys.run_until_quiescent(TimeDelta::from_us(10));
        let (node, _trap) = sys.first_trap().expect("trapped");
        assert_eq!(node, NodeId(5));
    }
}
