//! # Swallow — an energy-transparent many-core embedded real-time system
//!
//! This crate is the public face of a full-system reproduction of
//! *"Swallow: Building an Energy-Transparent Many-Core Embedded Real-Time
//! System"* (Hollis & Kerrison, DATE 2016): a token-level simulator of a
//! machine built from XS1-L-style dual-core packages — 16 cores per
//! slice, up to hundreds of cores per machine — with per-instruction
//! energy accounting, the unwoven-lattice network and the five-supply
//! measurement subsystem.
//!
//! ## Quick start
//!
//! ```
//! use swallow::{Assembler, NodeId, SystemBuilder, TimeDelta};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut system = SystemBuilder::new().slices(1, 1).build()?;
//!
//! // Every Swallow program is ordinary XS1-style assembly.
//! let program = Assembler::new().assemble(
//!     "ldc r0, 20\n ldc r1, 22\n add r2, r0, r1\n print r2\n freet",
//! )?;
//! system.load_program(NodeId(0), &program)?;
//! system.run_until_quiescent(TimeDelta::from_us(10));
//!
//! assert_eq!(system.output(NodeId(0)), "42\n");
//! // Energy transparency: the run's energy is fully attributed.
//! assert!(system.power_report().mean_power.as_watts() > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! The heavy lifting lives in the substrate crates, re-exported here:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | ISA | [`isa`] | instructions, assembler, encodings, timing |
//! | core | [`xcore`] | pipeline/threads/SRAM/resources interpreter |
//! | network | [`noc`] | links, switches, wormhole + credit fabric |
//! | energy | [`energy`] | power models, DVFS, link energy, supplies |
//! | board | [`board`] | packages, slices, grids, bridge, power tree |
//! | faults | [`faults`] | deterministic fault plans and resilience |

pub mod export;
pub mod report;
pub mod system;

pub use export::{chrome_trace_json, supply_csv, write_chrome_trace, write_supply_csv};
pub use report::{CoreMetrics, MetricsReport, PerfReport, PowerReport};
pub use system::{BuildError, SwallowSystem, SystemBuilder};

// Substrate re-exports, for users who need the full depth.
pub use swallow_board as board;
pub use swallow_energy as energy;
pub use swallow_faults as faults;
pub use swallow_isa as isa;
pub use swallow_noc as noc;
pub use swallow_sim as sim;
pub use swallow_xcore as xcore;

// The handful of names almost every user touches.
pub use swallow_board::{
    BridgeFrame, BridgeStats, EngineMode, EpochMode, GridSpec, Machine, MachineConfig, RouterKind,
    SupplyRow,
};
pub use swallow_energy::{Energy, Power};
pub use swallow_faults::{FaultCounters, FaultEvent, FaultKind, FaultPlan, RandomFaults};
pub use swallow_isa::{AsmError, Assembler, NodeId, Program, ResType, ResourceId};
pub use swallow_sim::{CodecError, Frequency, Time, TimeDelta, TraceEvent, TraceLog, TraceRecord};
