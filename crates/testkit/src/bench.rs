//! A criterion-compatible micro-benchmark harness.
//!
//! Supports the subset of the `criterion` crate API used by the
//! `[[bench]]` targets in `crates/bench`: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!`
//! macros. Each benchmark times `sample_size` runs of the routine and
//! prints a criterion-style `time: [min median max]` line.

use std::time::Instant;

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let default_sample_size = std::env::var("SWALLOW_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SAMPLE_SIZE);
        Criterion {
            default_sample_size,
        }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.default_sample_size, f);
    }
}

/// A named benchmark group sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    /// Ends the group (report lines are already printed eagerly).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` once per sample after a short warmup.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        std::hint::black_box(routine());
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples_ns.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }
}

fn run_one<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        samples_ns: Vec::with_capacity(sample_size),
    };
    f(&mut bencher);
    if bencher.samples_ns.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    bencher
        .samples_ns
        .sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let min = bencher.samples_ns[0];
    let max = *bencher.samples_ns.last().expect("non-empty");
    let median = bencher.samples_ns[bencher.samples_ns.len() / 2];
    println!(
        "{id:<40} time:   [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group entry point, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::bench::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("counting", |b| b.iter(|| runs += 1));
        g.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with('s'));
    }
}
