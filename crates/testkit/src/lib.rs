//! Zero-dependency test and bench harnesses for fully offline builds.
//!
//! The workspace must build with no registry access at all (`cargo build
//! --offline` against an empty `~/.cargo/registry`), so external dev-deps
//! are off the table. This crate supplies drop-in replacements for the
//! two we used:
//!
//! * [`proptest`] — a property-testing shim exposing the subset of the
//!   `proptest` crate API our tests use (`proptest!`, strategies built
//!   from ranges / `any` / `Just` / `prop_map` / `prop_oneof!` / tuples /
//!   `collection::vec`, `prop_assert*!`, `prop_assume!`,
//!   `ProptestConfig`). Generation is seeded and deterministic; failures
//!   report the case number, seed and `Debug`-formatted inputs. There is
//!   no shrinking — inputs here are small enough to read directly.
//! * [`bench`] (aliased as [`criterion`]) — a micro-benchmark harness
//!   exposing the `Criterion` / `benchmark_group` / `Bencher::iter`
//!   surface our `[[bench]]` targets use, printing a criterion-style
//!   `time: [min median max]` line per benchmark.
//! * [`json`] — a structural JSON parser (`BTreeMap`-backed objects), so
//!   golden-file tests compare exporter output by structure rather than
//!   byte layout (the third offline replacement: `serde_json` for tests).

pub mod proptest;

pub mod bench;

pub mod json;

/// Criterion-compatible facade so bench targets can write
/// `use swallow_testkit::criterion::{criterion_group, criterion_main, Criterion};`.
pub mod criterion {
    pub use crate::bench::{Bencher, BenchmarkGroup, Criterion};
    pub use crate::{criterion_group, criterion_main};
}
