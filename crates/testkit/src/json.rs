//! A minimal JSON parser for structural assertions in tests.
//!
//! Golden-file tests should not break on formatting (key order inside an
//! object, whitespace), only on *structure*. [`Value`] keeps objects in a
//! `BTreeMap`, so two JSON documents compare equal exactly when they are
//! structurally equal. This covers the subset of JSON our exporters emit:
//! objects, arrays, strings with `\"`/`\\`/`\n`/`\t`/`\u` escapes,
//! numbers, booleans and null.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (exact for the integers we emit).
    Number(f64),
    /// A string literal, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; `BTreeMap` makes comparison key-order-insensitive.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The text of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value of a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// [`ParseError`] with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            at: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, text: &'static str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("malformed literal"))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("\\u escape outside BMP scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // the byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'-') && matches!(self.bytes.get(self.pos - 1), Some(b'e' | b'E')) {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse().ok())
            .map(Value::Number)
            .ok_or_else(|| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":true,"d":null},"s":"x\ny"}"#).expect("parses");
        assert_eq!(
            v.get("a").and_then(|a| a.as_array()).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")),
            Some(&Value::Bool(true))
        );
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x\ny"));
    }

    #[test]
    fn comparison_ignores_key_order_and_whitespace() {
        let a = parse(r#"{"x": 1, "y": [ {"k": "v"} ]}"#).expect("parses");
        let b = parse(r#"{"y":[{"k":"v"}],"x":1.0}"#).expect("parses");
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("42 garbage").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unicode_and_escapes_round_trip() {
        let v = parse(r#""café — λ""#).expect("parses");
        assert_eq!(v.as_str(), Some("café — λ"));
    }
}
