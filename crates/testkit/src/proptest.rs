//! A deterministic, dependency-free property-testing shim.
//!
//! Mirrors the fragment of the `proptest` crate API used by this
//! workspace. A [`Strategy`] is anything that can generate a value from
//! a [`TestRng`]; the [`proptest!`] macro expands each property into a
//! plain `#[test]` that runs `cases` seeded generations and reports the
//! failing seed and inputs on the first counterexample.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Run-time configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic generator (SplitMix64). Seeded per test case so any
/// failure is reproducible from the reported seed alone.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform value in `0..bound` for spans wider than `u64`.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. The `Value` associated type matches the real
/// proptest API so `impl Strategy<Value = T>` return types port over.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a full-domain uniform generator, for [`any`].
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(PhantomData<T>);

/// Generates any value of `T` uniformly.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.below_u128((hi - lo + 1) as u128) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// One boxed alternative of a [`Union`].
type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice between boxed alternative strategies; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
}

impl<V> Union<V> {
    /// Creates an empty union (the macro adds arms).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds one alternative.
    pub fn arm<S>(mut self, strategy: S) -> Self
    where
        S: Strategy<Value = V> + 'static,
    {
        self.arms.push(Box::new(move |rng| strategy.generate(rng)));
        self
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.below(self.arms.len() as u64) as usize;
        (self.arms[idx])(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy over `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Executes `cases` seeded runs of one property, panicking with a
/// reproducible seed + input report on the first failure. Used by the
/// expansion of [`proptest!`](crate::proptest); not called directly.
pub fn run_cases<F>(cfg: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let cases = std::env::var("SWALLOW_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cfg.cases);
    let base_seed = std::env::var("SWALLOW_PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fnv1a(name.as_bytes()));
    for i in 0..cases {
        let seed = base_seed.wrapping_add((i as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let mut rng = TestRng::seed_from(seed);
        if let Err(msg) = case(&mut rng) {
            panic!("property `{name}` failed at case {i}/{cases} (seed {seed:#018x}):\n    {msg}");
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Glob-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use super::{any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    // Re-export the module itself so `proptest::collection::vec(..)`
    // paths keep working after the one-line import change, plus the
    // macros (both namespaces of the name `proptest` resolve here).
    pub use crate::proptest;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof};
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// its inputs) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Equality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n  {}",
                left, right, ::std::format!($($fmt)*)
            ));
        }
    }};
}

/// Inequality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                left
            ));
        }
    }};
}

/// Skips the current case when an assumption does not hold. (The real
/// proptest regenerates; the shim counts the case as vacuously passing,
/// which is adequate at our assumption densities.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::proptest::Union::new()$(.arm($arm))+
    };
}

/// Declares property tests. Supports the `proptest` crate's surface
/// syntax: an optional `#![proptest_config(..)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = ($crate::proptest::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::proptest::ProptestConfig = $cfg;
            $crate::proptest::run_cases(__cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::proptest::Strategy::generate(&($strat), __rng);)+
                let mut __inputs = ::std::string::String::new();
                $(__inputs.push_str(&::std::format!(
                    "{} = {:?}; ", stringify!($arg), &$arg
                ));)+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __outcome {
                    ::std::result::Result::Ok(res) => {
                        res.map_err(|e| ::std::format!("{e}\n    inputs: {__inputs}"))
                    }
                    ::std::result::Result::Err(payload) => {
                        ::std::eprintln!("proptest case panicked; inputs: {__inputs}");
                        ::std::panic::resume_unwind(payload);
                    }
                }
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(-5i16..=5), &mut rng);
            assert!((-5..=5).contains(&w));
            let f = Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn full_width_inclusive_ranges_work() {
        let mut rng = TestRng::seed_from(11);
        let mut any_negative = false;
        for _ in 0..64 {
            let v = Strategy::generate(&((i16::MIN as i32)..=(i16::MAX as i32)), &mut rng);
            assert!(v >= i16::MIN as i32 && v <= i16::MAX as i32);
            any_negative |= v < 0;
        }
        assert!(any_negative, "full-width range never went negative");
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::seed_from(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&s, &mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = super::collection::vec((any::<u32>(), 0u64..9), 1..20);
        let a: Vec<_> = {
            let mut rng = TestRng::seed_from(42);
            Strategy::generate(&strat, &mut rng)
        };
        let b: Vec<_> = {
            let mut rng = TestRng::seed_from(42);
            Strategy::generate(&strat, &mut rng)
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro itself: args bind, assume skips, asserts pass.
        #[test]
        fn macro_roundtrip(x in 0u32..100, pair in (1usize..4, any::<bool>())) {
            prop_assume!(x != 99);
            prop_assert!(x < 99);
            prop_assert_eq!(pair.0, pair.0);
            prop_assert_ne!(pair.0, 0usize);
        }
    }
}
