//! Shared assembly-generation helpers.

use std::fmt;
use swallow::xcore::LoadError;
use swallow::{AsmError, Assembler, NodeId, Program, ResType, ResourceId, SwallowSystem};

/// The resource id of channel end `idx` on `node` — the constant a remote
/// program loads to `setd` at it. Channel ends are allocated in index
/// order, so generated programs that `getr` their chanends in a fixed
/// sequence have predictable ids.
pub fn chanend_rid(node: NodeId, idx: u8) -> u32 {
    ResourceId::new(node, idx, ResType::Chanend).raw()
}

/// Error from a workload generator.
#[derive(Clone, Debug)]
pub enum GenError {
    /// The machine is too small for the requested pattern.
    TooFewCores {
        /// Cores required.
        need: usize,
        /// Cores available.
        have: usize,
    },
    /// A parameter was out of range.
    BadParameter(&'static str),
    /// Generated assembly failed to assemble (a generator bug).
    Asm(AsmError),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::TooFewCores { need, have } => {
                write!(f, "workload needs {need} cores, machine has {have}")
            }
            GenError::BadParameter(what) => write!(f, "bad parameter: {what}"),
            GenError::Asm(e) => write!(f, "generated assembly is invalid: {e}"),
        }
    }
}

impl std::error::Error for GenError {}

impl From<AsmError> for GenError {
    fn from(e: AsmError) -> Self {
        GenError::Asm(e)
    }
}

/// A set of programs mapped onto nodes.
#[derive(Clone, Debug, Default)]
pub struct Placement {
    programs: Vec<(NodeId, Program)>,
}

impl Placement {
    /// Creates an empty placement.
    pub fn new() -> Self {
        Placement::default()
    }

    /// Assembles `src` and assigns it to `node`.
    ///
    /// # Errors
    ///
    /// [`GenError::Asm`] when the source does not assemble.
    pub fn assign(&mut self, node: NodeId, src: &str) -> Result<(), GenError> {
        let program = Assembler::new().assemble(src)?;
        self.programs.push((node, program));
        Ok(())
    }

    /// The node/program pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Program)> {
        self.programs.iter().map(|(n, p)| (*n, p))
    }

    /// Number of participating cores.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// True when no programs were generated.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// The first node in the placement (by insertion order).
    ///
    /// # Panics
    ///
    /// Panics on an empty placement.
    pub fn first_node(&self) -> NodeId {
        self.programs.first().expect("non-empty placement").0
    }

    /// The last node in the placement (by insertion order) — generators
    /// put the result-collecting core last.
    ///
    /// # Panics
    ///
    /// Panics on an empty placement.
    pub fn last_node(&self) -> NodeId {
        self.programs.last().expect("non-empty placement").0
    }

    /// Loads every program onto its node.
    ///
    /// # Errors
    ///
    /// [`LoadError`] if an image exceeds a core's SRAM.
    pub fn apply(&self, system: &mut SwallowSystem) -> Result<(), LoadError> {
        for (node, program) in self.iter() {
            system.load_program(node, program)?;
        }
        Ok(())
    }
}

/// Emits a compute block of `iters` loop iterations (3 issue slots each:
/// multiply, decrement, branch) operating on `val_reg`, using `scratch`
/// registers. Used by generators to dial in a computation/communication
/// ratio.
pub fn compute_block(label: &str, val_reg: &str, counter_reg: &str, iters: u32) -> String {
    if iters == 0 {
        return String::new();
    }
    format!(
        "
            ldc   {counter_reg}, {iters}
        {label}:
            mul   {val_reg}, {val_reg}, {val_reg}
            sub   {counter_reg}, {counter_reg}, 1
            bt    {counter_reg}, {label}
        "
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chanend_rids_are_stable() {
        assert_eq!(chanend_rid(NodeId(0), 0), 0x0000_0002);
        assert_eq!(chanend_rid(NodeId(3), 1), 0x0003_0102);
    }

    #[test]
    fn placement_assigns_and_reports() {
        let mut p = Placement::new();
        assert!(p.is_empty());
        p.assign(NodeId(2), "nop\nfreet").expect("assembles");
        p.assign(NodeId(5), "freet").expect("assembles");
        assert_eq!(p.len(), 2);
        assert_eq!(p.first_node(), NodeId(2));
        assert_eq!(p.last_node(), NodeId(5));
    }

    #[test]
    fn bad_assembly_is_reported() {
        let mut p = Placement::new();
        let err = p.assign(NodeId(0), "bogus").expect_err("invalid");
        assert!(matches!(err, GenError::Asm(_)));
    }

    #[test]
    fn compute_block_assembles() {
        let src = format!(
            "ldc r0, 3\n{}\nprint r0\nfreet",
            compute_block("w0", "r0", "r1", 2)
        );
        let mut p = Placement::new();
        p.assign(NodeId(0), &src).expect("assembles");
    }
}
