//! Computation-to-communication (EC) ratio scenarios (§V.D).
//!
//! The paper defines `E` as the rate at which compute resource can produce
//! or consume data (instructions/s × 32-bit operands) and `C` as the
//! communication bandwidth available to move it. The five scenarios below
//! reproduce §V.D's ladder: EC = 1 (core-local) up to EC = 512 (a whole
//! slice hammering its vertical bisection).

use crate::codegen::{GenError, Placement};
use crate::traffic;
use swallow::{Frequency, GridSpec, NodeId};

/// Bits of data one 32-bit channel operation moves.
const WORD_BITS: f64 = 32.0;

/// The §V.D scenarios.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EcScenario {
    /// Two threads exchanging over core-local channel ends: `E = C`.
    CoreLocal,
    /// Four threads over the four aggregated package-internal links.
    ChipAggregate,
    /// Four threads over the node's external links (four links at the
    /// Table I external rate).
    ExternalAggregate,
    /// Four threads contending for a single external link.
    ExternalContended,
    /// Sixteen cores streaming across a slice's vertical bisection
    /// (eight senders over four external links).
    SliceBisection,
}

impl EcScenario {
    /// All scenarios in the paper's order.
    pub const ALL: [EcScenario; 5] = [
        EcScenario::CoreLocal,
        EcScenario::ChipAggregate,
        EcScenario::ExternalAggregate,
        EcScenario::ExternalContended,
        EcScenario::SliceBisection,
    ];

    /// A short name for tables.
    pub fn name(self) -> &'static str {
        match self {
            EcScenario::CoreLocal => "core-local",
            EcScenario::ChipAggregate => "chip aggregate (4 links)",
            EcScenario::ExternalAggregate => "external aggregate (4 links)",
            EcScenario::ExternalContended => "external, 4 threads / 1 link",
            EcScenario::SliceBisection => "slice vertical bisection",
        }
    }

    /// The ratio the paper reports for this scenario.
    pub fn paper_ratio(self) -> f64 {
        match self {
            EcScenario::CoreLocal => 1.0,
            EcScenario::ChipAggregate => 16.0,
            EcScenario::ExternalAggregate => 64.0,
            EcScenario::ExternalContended => 256.0,
            EcScenario::SliceBisection => 512.0,
        }
    }

    /// `E`: compute bandwidth in bit/s at core clock `f` — four threads
    /// per core issue `f` instructions/s of 32-bit operations (§V.D's
    /// "with four or more active threads, E = 16 Gbit/s" at 500 MHz).
    pub fn compute_bandwidth_bps(self, f: Frequency) -> f64 {
        let per_core = f.as_hz() as f64 * WORD_BITS;
        match self {
            EcScenario::SliceBisection => 8.0 * per_core, // the sending half
            _ => per_core,
        }
    }

    /// `C`: available communication bandwidth in bit/s, using the Swallow
    /// operating rates of Table I.
    pub fn comm_bandwidth_bps(self, f: Frequency) -> f64 {
        let internal = swallow::energy::WireClass::OnChip.data_rate().as_hz() as f64;
        let external = swallow::energy::WireClass::BoardVertical
            .data_rate()
            .as_hz() as f64;
        match self {
            // Core-local communication "can sustain this data rate" (§V.D).
            EcScenario::CoreLocal => self.compute_bandwidth_bps(f),
            EcScenario::ChipAggregate => 4.0 * internal,
            EcScenario::ExternalAggregate => 4.0 * external,
            EcScenario::ExternalContended => external,
            EcScenario::SliceBisection => 4.0 * external,
        }
    }

    /// The analytic EC ratio at clock `f`.
    pub fn analytic_ratio(self, f: Frequency) -> f64 {
        self.compute_bandwidth_bps(f) / self.comm_bandwidth_bps(f)
    }

    /// Generates the measurement workload for this scenario on one slice:
    /// a traffic pattern that saturates exactly the scenario's `C` path.
    ///
    /// # Errors
    ///
    /// Propagates generator errors (the parameters here are static, so
    /// errors indicate a generator bug).
    pub fn workload(self, words_per_flow: u32) -> Result<Placement, GenError> {
        let grid = GridSpec::ONE_SLICE;
        use swallow::noc::routing::Layer;
        match self {
            EcScenario::CoreLocal => {
                traffic::multi_stream(NodeId(0), NodeId(0), 4, words_per_flow, 8)
            }
            EcScenario::ChipAggregate => {
                // Node 0 and node 1 share a package: four flows over the
                // four internal links.
                traffic::multi_stream(NodeId(0), NodeId(1), 4, words_per_flow, 8)
            }
            EcScenario::ExternalAggregate => {
                // Vertical neighbours have one physical link pair in the
                // Swallow lattice; four flows approximate the paper's
                // four-external-link aggregate by also using the
                // horizontal-layer path (internal hop + E/W).
                let top = grid.node_at(1, 0, Layer::Vertical);
                let bottom = grid.node_at(1, 1, Layer::Vertical);
                traffic::multi_stream(top, bottom, 4, words_per_flow, 8)
            }
            EcScenario::ExternalContended => {
                let top = grid.node_at(2, 0, Layer::Vertical);
                let bottom = grid.node_at(2, 1, Layer::Vertical);
                traffic::multi_stream(top, bottom, 4, words_per_flow, 8)
            }
            EcScenario::SliceBisection => traffic::bisection(words_per_flow, 8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_ratios_match_the_paper() {
        let f = Frequency::from_mhz(500);
        for scenario in EcScenario::ALL {
            let ratio = scenario.analytic_ratio(f);
            let paper = scenario.paper_ratio();
            assert!(
                (ratio - paper).abs() / paper < 0.01,
                "{}: analytic {ratio} vs paper {paper}",
                scenario.name()
            );
        }
    }

    #[test]
    fn e_is_16_gbps_at_500mhz() {
        let e = EcScenario::ChipAggregate.compute_bandwidth_bps(Frequency::from_mhz(500));
        assert!((e - 16e9).abs() < 1.0);
        // And 128 Gbit/s for the bisection's sending half.
        let e = EcScenario::SliceBisection.compute_bandwidth_bps(Frequency::from_mhz(500));
        assert!((e - 128e9).abs() < 1.0);
    }

    #[test]
    fn ratios_scale_down_with_frequency() {
        let slow = EcScenario::ChipAggregate.analytic_ratio(Frequency::from_mhz(100));
        let fast = EcScenario::ChipAggregate.analytic_ratio(Frequency::from_mhz(500));
        assert!((fast / slow - 5.0).abs() < 1e-9);
    }

    #[test]
    fn workloads_generate_for_every_scenario() {
        for scenario in EcScenario::ALL {
            let placement = scenario.workload(16).expect("generates");
            assert!(!placement.is_empty(), "{}", scenario.name());
        }
    }
}
