//! Master/worker task farms ("groups of tasks", §I).
//!
//! The master dispatches numbered tasks round-robin over the workers,
//! keeping at most one task in flight per worker (channel flow control
//! does the rest), and folds the results into a sum it prints at the end.
//! Each worker performs a tunable amount of computation per task.

use crate::codegen::{chanend_rid, compute_block, GenError, Placement};
use swallow::{GridSpec, NodeId};

/// Farm shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FarmSpec {
    /// Worker cores (the master adds one more).
    pub workers: usize,
    /// Tasks to process (task values are `1..=tasks`).
    pub tasks: u32,
    /// Squaring iterations per task.
    pub work_per_task: u32,
}

/// Generates master (node 0) + workers (nodes `1..=workers`).
///
/// # Errors
///
/// [`GenError`] for zero workers/tasks or too small a machine.
pub fn generate(spec: &FarmSpec, grid: GridSpec) -> Result<Placement, GenError> {
    if spec.workers == 0 {
        return Err(GenError::BadParameter("workers must be > 0"));
    }
    if spec.tasks == 0 {
        return Err(GenError::BadParameter("tasks must be > 0"));
    }
    if spec.workers + 1 > grid.core_count() {
        return Err(GenError::TooFewCores {
            need: spec.workers + 1,
            have: grid.core_count(),
        });
    }
    let mut placement = Placement::new();
    let workers = spec.workers as u32;
    let tasks = spec.tasks;
    let master_rid = chanend_rid(NodeId(0), 0);

    // Workers first (so their chanend 0 exists before tasks arrive; the
    // fabric would retry anyway, but this keeps startup tidy).
    for i in 0..spec.workers {
        let node = NodeId((i + 1) as u16);
        // Strict round-robin dispatch: worker i serves tasks t with
        // (t-1) % workers == i.
        let quota = (0..tasks).filter(|t| t % workers == i as u32).count() as u32;
        if quota == 0 {
            placement.assign(node, "freet")?;
            continue;
        }
        let work = compute_block("work", "r4", "r5", spec.work_per_task);
        placement.assign(
            node,
            &format!(
                "
                    getr  r0, chanend
                    getr  r1, chanend
                    ldc   r2, {master_rid}
                    setd  r1, r2
                    ldc   r3, {quota}
                wl:
                    in    r4, r0
                    chkct r0, end
                    {work}
                    out   r1, r4
                    outct r1, end
                    sub   r3, r3, 1
                    bt    r3, wl
                    freet
                "
            ),
        )?;
    }

    // Master: results on chanend 0, one dispatch chanend per worker.
    // The worker-rid table doubles as the dispatch-chanend table after
    // the allocation loop rewrites it.
    let table: String = (0..spec.workers)
        .map(|i| {
            format!(
                "            .word {}\n",
                chanend_rid(NodeId((i + 1) as u16), 0)
            )
        })
        .collect();
    placement.assign(
        NodeId(0),
        &format!(
            "
                getr  r0, chanend
                ldap  r1, wtab
                ldc   r2, {workers}
                ldc   r3, 0
            al:
                getr  r4, chanend
                ldw   r5, r1[r3]
                setd  r4, r5
                stw   r4, r1[r3]
                add   r3, r3, 1
                lss   r6, r3, r2
                bt    r6, al

                ldc   r7, 1          # next task value
                ldc   r9, 0          # result sum
                ldc   r10, 0         # tasks in flight
                ldc   r3, 0          # round-robin index
            mloop:
                ldc   r6, {tasks}
                lsu   r5, r6, r7     # all dispatched?
                bt    r5, collect
                lsu   r5, r10, r2    # worker slot free?
                bf    r5, collect
                ldw   r4, r1[r3]
                out   r4, r7
                outct r4, end
                add   r7, r7, 1
                add   r10, r10, 1
                add   r3, r3, 1
                eq    r5, r3, r2
                bf    r5, mloop
                ldc   r3, 0
                bu    mloop
            collect:
                bf    r10, done
                in    r5, r0
                chkct r0, end
                add   r9, r9, r5
                sub   r10, r10, 1
                bu    mloop
            done:
                ldc   r6, {tasks}
                lsu   r5, r6, r7
                bt    r5, fin
                bu    mloop
            fin:
                print r9
                freet
            wtab:
            {table}
            "
        ),
    )?;
    Ok(placement)
}

/// The sum the master will print (mirrors the worker arithmetic).
pub fn expected_sum(spec: &FarmSpec) -> i32 {
    let mut sum = 0u32;
    for t in 1..=spec.tasks {
        let mut v = t;
        for _ in 0..spec.work_per_task {
            v = v.wrapping_mul(v);
        }
        sum = sum.wrapping_add(v);
    }
    sum as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow::{SystemBuilder, TimeDelta};

    fn run_farm(spec: FarmSpec) -> String {
        let mut system = SystemBuilder::new().build().expect("builds");
        let placement = generate(&spec, system.machine().spec()).expect("generates");
        placement.apply(&mut system).expect("loads");
        assert!(
            system.run_until_quiescent(TimeDelta::from_ms(50)),
            "farm did not finish: {:?}",
            system.first_trap()
        );
        system.output(NodeId(0)).to_owned()
    }

    #[test]
    fn one_worker_farm() {
        let spec = FarmSpec {
            workers: 1,
            tasks: 5,
            work_per_task: 0,
        };
        // Sum of 1..=5 = 15.
        assert_eq!(run_farm(spec), "15\n");
        assert_eq!(expected_sum(&spec), 15);
    }

    #[test]
    fn five_workers_share_the_load() {
        let spec = FarmSpec {
            workers: 5,
            tasks: 23,
            work_per_task: 2,
        };
        assert_eq!(run_farm(spec), format!("{}\n", expected_sum(&spec)));
    }

    #[test]
    fn more_workers_than_tasks() {
        let spec = FarmSpec {
            workers: 8,
            tasks: 3,
            work_per_task: 1,
        };
        assert_eq!(run_farm(spec), format!("{}\n", expected_sum(&spec)));
    }

    #[test]
    fn validation() {
        let grid = GridSpec::ONE_SLICE;
        assert!(generate(
            &FarmSpec {
                workers: 0,
                tasks: 1,
                work_per_task: 0
            },
            grid
        )
        .is_err());
        assert!(generate(
            &FarmSpec {
                workers: 16,
                tasks: 1,
                work_per_task: 0
            },
            grid
        )
        .is_err());
    }
}
