//! Stream pipelines.
//!
//! A classic Swallow workload shape (§I): a source generates a stream of
//! words, each intermediate stage transforms items (with a tunable amount
//! of computation per item) and forwards them, a sink accumulates a
//! checksum and prints it. Stages map one-per-core onto consecutive
//! nodes, so data hops alternate between package-internal and board
//! links — exactly the locality spectrum §V.D discusses.

use crate::codegen::{chanend_rid, compute_block, GenError, Placement};
use swallow::{GridSpec, NodeId};

/// Linear-congruential constants of the source stream (Glibc's).
const LCG_A: u32 = 1_103_515_245;
const LCG_C: u32 = 12_345;
/// First stream value.
const SEED: u32 = 0x1234_5678;

/// Pipeline shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineSpec {
    /// Total stages including source and sink (≥ 2).
    pub stages: usize,
    /// Items pushed through the pipeline.
    pub items: u32,
    /// Squaring iterations per item per intermediate stage.
    pub work_per_item: u32,
}

/// Generates the per-stage programs, mapped to nodes `0..stages`.
///
/// # Errors
///
/// [`GenError`] when the machine is too small or `stages < 2` /
/// `items == 0`.
pub fn generate(spec: &PipelineSpec, grid: GridSpec) -> Result<Placement, GenError> {
    if spec.stages < 2 {
        return Err(GenError::BadParameter("stages must be >= 2"));
    }
    if spec.items == 0 {
        return Err(GenError::BadParameter("items must be > 0"));
    }
    if spec.stages > grid.core_count() {
        return Err(GenError::TooFewCores {
            need: spec.stages,
            have: grid.core_count(),
        });
    }
    let mut placement = Placement::new();
    let items = spec.items;

    // Source: node 0, output = its chanend 0.
    let next = chanend_rid(NodeId(1), 0);
    placement.assign(
        NodeId(0),
        &format!(
            "
                getr  r1, chanend
                ldc   r2, {next}
                setd  r1, r2
                ldc   r3, {items}
                ldc   r4, {SEED}
                ldc   r6, {LCG_A}
            sl:
                out   r1, r4
                outct r1, end
                mul   r4, r4, r6
                add   r4, r4, {LCG_C}
                sub   r3, r3, 1
                bt    r3, sl
                freet
            "
        ),
    )?;

    // Intermediate stages: input chanend 0, output chanend 1.
    for stage in 1..spec.stages - 1 {
        let next = chanend_rid(NodeId((stage + 1) as u16), 0);
        let work = compute_block("work", "r4", "r5", spec.work_per_item);
        placement.assign(
            NodeId(stage as u16),
            &format!(
                "
                    getr  r0, chanend
                    getr  r1, chanend
                    ldc   r2, {next}
                    setd  r1, r2
                    ldc   r3, {items}
                ml:
                    in    r4, r0
                    chkct r0, end
                    {work}
                    out   r1, r4
                    outct r1, end
                    sub   r3, r3, 1
                    bt    r3, ml
                    freet
                "
            ),
        )?;
    }

    // Sink: last node, prints the wrapping checksum.
    placement.assign(
        NodeId((spec.stages - 1) as u16),
        &format!(
            "
                getr  r0, chanend
                ldc   r3, {items}
                ldc   r4, 0
            kl:
                in    r5, r0
                chkct r0, end
                add   r4, r4, r5
                sub   r3, r3, 1
                bt    r3, kl
                print r4
                freet
            "
        ),
    )?;
    Ok(placement)
}

/// The checksum the sink will print (mirrors the generated assembly:
/// wrapping arithmetic throughout, rendered as a signed 32-bit integer).
pub fn checksum(spec: &PipelineSpec) -> i32 {
    let mut v = SEED;
    let mut sum = 0u32;
    for _ in 0..spec.items {
        let mut item = v;
        for _ in 1..spec.stages.max(2) - 1 {
            for _ in 0..spec.work_per_item {
                item = item.wrapping_mul(item);
            }
        }
        sum = sum.wrapping_add(item);
        v = v.wrapping_mul(LCG_A).wrapping_add(LCG_C);
    }
    sum as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow::{SystemBuilder, TimeDelta};

    fn run_pipeline(spec: PipelineSpec) -> String {
        let mut system = SystemBuilder::new().build().expect("builds");
        let placement = generate(&spec, system.machine().spec()).expect("generates");
        placement.apply(&mut system).expect("loads");
        assert!(
            system.run_until_quiescent(TimeDelta::from_ms(20)),
            "pipeline did not drain: {:?}",
            system.first_trap()
        );
        system.output(placement.last_node()).to_owned()
    }

    #[test]
    fn two_stage_pipeline_is_a_copy() {
        let spec = PipelineSpec {
            stages: 2,
            items: 4,
            work_per_item: 0,
        };
        assert_eq!(run_pipeline(spec), format!("{}\n", checksum(&spec)));
    }

    #[test]
    fn four_stage_pipeline_with_work() {
        let spec = PipelineSpec {
            stages: 4,
            items: 6,
            work_per_item: 3,
        };
        assert_eq!(run_pipeline(spec), format!("{}\n", checksum(&spec)));
    }

    #[test]
    fn sixteen_stage_pipeline_uses_the_whole_slice() {
        let spec = PipelineSpec {
            stages: 16,
            items: 5,
            work_per_item: 1,
        };
        assert_eq!(run_pipeline(spec), format!("{}\n", checksum(&spec)));
    }

    #[test]
    fn parameter_validation() {
        let grid = GridSpec::ONE_SLICE;
        assert!(matches!(
            generate(
                &PipelineSpec {
                    stages: 1,
                    items: 1,
                    work_per_item: 0
                },
                grid
            ),
            Err(GenError::BadParameter(_))
        ));
        assert!(matches!(
            generate(
                &PipelineSpec {
                    stages: 17,
                    items: 1,
                    work_per_item: 0
                },
                grid
            ),
            Err(GenError::TooFewCores { need: 17, have: 16 })
        ));
    }
}
