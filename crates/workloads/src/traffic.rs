//! Raw traffic generators for link and EC-ratio measurements.
//!
//! These produce senders/receivers that push known token volumes over
//! specific paths, so the experiment harnesses can read link statistics
//! (energy per bit, utilisation, achieved bandwidth) off the fabric.

use crate::codegen::{chanend_rid, GenError, Placement};
use swallow::NodeId;

/// A one-way stream between two cores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamSpec {
    /// Sending core.
    pub src: NodeId,
    /// Receiving core.
    pub dst: NodeId,
    /// Total 32-bit words (must be a multiple of `packet_words`).
    pub words: u32,
    /// Words per packet (END token closes each packet's route).
    pub packet_words: u32,
}

/// Generates one sender and one receiver. The receiver prints the number
/// of words it consumed.
///
/// # Errors
///
/// [`GenError::BadParameter`] for zero sizes or a non-integral packet
/// count, and when `src == dst` (use two chanends on one core for local
/// streams — see [`multi_stream`]).
pub fn stream(spec: &StreamSpec) -> Result<Placement, GenError> {
    if spec.packet_words == 0 || spec.words == 0 {
        return Err(GenError::BadParameter("words and packet_words must be > 0"));
    }
    if !spec.words.is_multiple_of(spec.packet_words) {
        return Err(GenError::BadParameter("words must divide into packets"));
    }
    if spec.src == spec.dst {
        return Err(GenError::BadParameter("src == dst; use multi_stream"));
    }
    let packets = spec.words / spec.packet_words;
    let pw = spec.packet_words;
    let dst_rid = chanend_rid(spec.dst, 0);
    let mut placement = Placement::new();
    placement.assign(
        spec.dst,
        &format!(
            "
                getr  r0, chanend
                ldc   r3, {packets}
                ldc   r6, 0
            pl:
                ldc   r4, {pw}
            wl:
                in    r5, r0
                add   r6, r6, 1
                sub   r4, r4, 1
                bt    r4, wl
                chkct r0, end
                sub   r3, r3, 1
                bt    r3, pl
                print r6
                freet
            "
        ),
    )?;
    placement.assign(
        spec.src,
        &format!(
            "
                getr  r1, chanend
                ldc   r2, {dst_rid}
                setd  r1, r2
                ldc   r3, {packets}
                ldc   r5, 0
            pl:
                ldc   r4, {pw}
            wl:
                out   r1, r5
                add   r5, r5, 1
                sub   r4, r4, 1
                bt    r4, wl
                outct r1, end
                sub   r3, r3, 1
                bt    r3, pl
                freet
            "
        ),
    )?;
    Ok(placement)
}

/// `flows` parallel streams (1–4) between two cores — or within one core
/// when `src == dst` — one hardware thread per flow at each end. Flow `k`
/// goes from the sender's chanend `k` to the receiver's chanend `k`.
///
/// With `src != dst` and several flows this is the §V.D *contention*
/// workload: the flows fight for the links between the two nodes.
///
/// # Errors
///
/// [`GenError::BadParameter`] for flow counts outside 1–4 or non-integral
/// packet counts.
pub fn multi_stream(
    src: NodeId,
    dst: NodeId,
    flows: usize,
    words_per_flow: u32,
    packet_words: u32,
) -> Result<Placement, GenError> {
    if !(1..=4).contains(&flows) {
        return Err(GenError::BadParameter("flows must be 1..=4"));
    }
    if packet_words == 0 || words_per_flow == 0 || !words_per_flow.is_multiple_of(packet_words) {
        return Err(GenError::BadParameter("words must divide into packets"));
    }
    let packets = words_per_flow / packet_words;
    let pw = packet_words;
    let mut placement = Placement::new();

    // Receiver: allocate `flows` chanends, one draining thread each.
    // When src == dst both halves share one core: receiver chanends are
    // indices 0..flows and sender chanends follow at flows..2*flows.
    let rx_threads = flows - 1;
    let mut rx_setup = String::new();
    for k in 0..flows {
        let reg = format!("r{}", 4 + k);
        rx_setup.push_str(&format!("                getr  {reg}, chanend\n"));
    }
    let mut rx_spawn = String::new();
    for k in 1..flows {
        let reg = format!("r{}", 4 + k);
        rx_spawn.push_str(&format!("                tspawn r10, r9, {reg}\n"));
    }
    let receiver_src = format!(
        "
            {rx_setup}
                ldap  r9, rworker
            {rx_spawn}
                mov   r0, r4
                bu    rworker
            rworker:                 # r0 = chanend rid
                ldc   r3, {packets}
            pl:
                ldc   r2, {pw}
            wl:
                in    r5, r0
                sub   r2, r2, 1
                bt    r2, wl
                chkct r0, end
                sub   r3, r3, 1
                bt    r3, pl
                freet
        "
    );
    let _ = rx_threads;

    // Sender: allocate + aim `flows` chanends, one pumping thread each.
    let rid_base = if src == dst { flows as u8 } else { 0 };
    let mut tx_setup = String::new();
    for k in 0..flows {
        let reg = format!("r{}", 4 + k);
        let dest = chanend_rid(dst, k as u8);
        tx_setup.push_str(&format!(
            "                getr  {reg}, chanend\n                ldc   r8, {dest}\n                setd  {reg}, r8\n"
        ));
    }
    let mut tx_spawn = String::new();
    for k in 1..flows {
        let reg = format!("r{}", 4 + k);
        tx_spawn.push_str(&format!("                tspawn r10, r9, {reg}\n"));
    }
    let sender_src = format!(
        "
            {tx_setup}
                ldap  r9, tworker
            {tx_spawn}
                mov   r0, r4
                ldc   r1, 0
                bu    tworker
            tworker:                 # r0 = chanend rid, r1 = payload
                ldc   r3, {packets}
            pl:
                ldc   r2, {pw}
            wl:
                out   r0, r1
                add   r1, r1, 1
                sub   r2, r2, 1
                bt    r2, wl
                outct r0, end
                sub   r3, r3, 1
                bt    r3, pl
                freet
        "
    );

    if src == dst {
        // One program on one core: rx chanends are indices 0..flows, tx
        // chanends flows..2·flows. The main thread spawns every receiver
        // and all but one sender, then becomes the last sender itself —
        // at most 2·flows hardware threads total (8 for four flows).
        let tx_setup_local = {
            let mut s = String::new();
            for k in 0..flows {
                let reg = format!("r{}", 4 + k);
                let dest = chanend_rid(dst, k as u8);
                s.push_str(&format!(
                    "                getr  {reg}, chanend\n                ldc   r8, {dest}\n                setd  {reg}, r8\n"
                ));
            }
            s
        };
        let rx_spawn_all = {
            // Rebuild rids via ldc: registers were reused by tx setup.
            let mut s = String::new();
            for k in 0..flows {
                let rid = chanend_rid(dst, k as u8);
                s.push_str(&format!(
                    "                ldc   r11, {rid}\n                tspawn r10, r9, r11\n"
                ));
            }
            s
        };
        let tx_spawn_rest = {
            let mut s = String::new();
            for k in 1..flows {
                let rid = chanend_rid(dst, (flows + k) as u8);
                s.push_str(&format!(
                    "                ldc   r11, {rid}\n                tspawn r10, r9, r11\n"
                ));
            }
            s
        };
        let main_tx_rid = chanend_rid(dst, flows as u8);
        let combined = format!(
            "
            {rx_setup}
            {tx_setup_local}
                ldap  r9, rworker
            {rx_spawn_all}
                ldap  r9, tworker
            {tx_spawn_rest}
                ldc   r0, {main_tx_rid}
                ldc   r1, 0
                bu    tworker
            rworker:
                ldc   r3, {packets}
            rpl:
                ldc   r2, {pw}
            rwl:
                in    r5, r0
                sub   r2, r2, 1
                bt    r2, rwl
                chkct r0, end
                sub   r3, r3, 1
                bt    r3, rpl
                freet
            tworker:
                ldc   r3, {packets}
            tpl:
                ldc   r2, {pw}
            twl:
                out   r0, r1
                add   r1, r1, 1
                sub   r2, r2, 1
                bt    r2, twl
                outct r0, end
                sub   r3, r3, 1
                bt    r3, tpl
                freet
            "
        );
        let _ = rid_base;
        placement.assign(src, &combined)?;
    } else {
        placement.assign(dst, &receiver_src)?;
        placement.assign(src, &sender_src)?;
    }
    Ok(placement)
}

/// The §V.D slice-bisection workload: every core of the top package row
/// streams to its counterpart in the bottom row, saturating the four
/// vertical mid-slice links.
///
/// # Errors
///
/// [`GenError::BadParameter`] for non-integral packet counts.
pub fn bisection(words_per_pair: u32, packet_words: u32) -> Result<Placement, GenError> {
    use swallow::noc::routing::Layer;
    let grid = swallow::GridSpec::ONE_SLICE;
    let mut placement = Placement::new();
    for x in 0..4u16 {
        for layer in [Layer::Vertical, Layer::Horizontal] {
            let top = grid.node_at(x, 0, layer);
            let bottom = grid.node_at(x, 1, layer);
            let pair = stream(&StreamSpec {
                src: top,
                dst: bottom,
                words: words_per_pair,
                packet_words,
            })?;
            for (node, program) in pair.iter() {
                // Re-assign into the combined placement.
                placement.assign(node, &program.disassemble())?;
            }
        }
    }
    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow::{SystemBuilder, TimeDelta};

    #[test]
    fn stream_delivers_every_word() {
        let spec = StreamSpec {
            src: NodeId(0),
            dst: NodeId(8),
            words: 64,
            packet_words: 8,
        };
        let mut system = SystemBuilder::new().build().expect("builds");
        stream(&spec)
            .expect("generates")
            .apply(&mut system)
            .expect("loads");
        assert!(system.run_until_quiescent(TimeDelta::from_ms(10)));
        assert_eq!(system.output(NodeId(8)), "64\n");
    }

    #[test]
    fn multi_stream_contends_on_one_path() {
        let mut system = SystemBuilder::new().build().expect("builds");
        multi_stream(NodeId(0), NodeId(8), 4, 16, 4)
            .expect("generates")
            .apply(&mut system)
            .expect("loads");
        assert!(
            system.run_until_quiescent(TimeDelta::from_ms(20)),
            "trap: {:?}",
            system.first_trap()
        );
        // All four flows crossed the single South link: 4*16 data words.
        let south = system
            .machine()
            .fabric()
            .link_stats()
            .find(|s| s.from == NodeId(0) && s.to == NodeId(8))
            .expect("link exists");
        assert_eq!(south.data_tokens, 4 * 16 * 4);
    }

    #[test]
    fn core_local_multi_stream() {
        let mut system = SystemBuilder::new().build().expect("builds");
        multi_stream(NodeId(3), NodeId(3), 2, 8, 4)
            .expect("generates")
            .apply(&mut system)
            .expect("loads");
        assert!(
            system.run_until_quiescent(TimeDelta::from_ms(20)),
            "trap: {:?}",
            system.first_trap()
        );
        // Core-local: no physical link traffic at all.
        let used = system
            .machine()
            .fabric()
            .link_stats()
            .filter(|s| s.data_tokens > 0)
            .count();
        assert_eq!(used, 0);
    }

    #[test]
    fn bisection_crosses_only_vertical_mid_links() {
        let mut system = SystemBuilder::new().build().expect("builds");
        bisection(32, 8)
            .expect("generates")
            .apply(&mut system)
            .expect("loads");
        assert!(
            system.run_until_quiescent(TimeDelta::from_ms(50)),
            "trap: {:?}",
            system.first_trap()
        );
        // Every South mid-slice link (gy 0 -> 1) carried traffic.
        let grid = swallow::GridSpec::ONE_SLICE;
        use swallow::noc::routing::Layer;
        for x in 0..4u16 {
            let top = grid.node_at(x, 0, Layer::Vertical);
            let bottom = grid.node_at(x, 1, Layer::Vertical);
            let s = system
                .machine()
                .fabric()
                .link_stats()
                .find(|s| s.from == top && s.to == bottom)
                .expect("vertical link");
            assert!(s.data_tokens > 0, "column {x} unused");
        }
    }

    #[test]
    fn validation() {
        assert!(stream(&StreamSpec {
            src: NodeId(0),
            dst: NodeId(0),
            words: 8,
            packet_words: 8
        })
        .is_err());
        assert!(stream(&StreamSpec {
            src: NodeId(0),
            dst: NodeId(1),
            words: 7,
            packet_words: 2
        })
        .is_err());
        assert!(multi_stream(NodeId(0), NodeId(1), 5, 8, 8).is_err());
    }
}
