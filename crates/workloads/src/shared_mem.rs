//! Shared memory emulated over channels (§I's "data sharing methods").
//!
//! Swallow has no coherent shared memory: the idiom is a *memory server* —
//! one core dedicates part of its 64 KiB SRAM as the shared region and
//! serialises remote loads and stores arriving as request packets. The
//! server's channel end is the serialisation point, giving sequential
//! consistency for free (the §V.D "analogous to issues in memory
//! hierarchy" observation made concrete).

use crate::codegen::{chanend_rid, GenError, Placement};
use swallow::{GridSpec, NodeId};

/// Base address of the shared region inside the server's SRAM.
pub const SHARED_BASE: u32 = 0x8000;

/// Remote-memory workload shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharedMemSpec {
    /// Client cores (the server adds one more).
    pub clients: usize,
    /// Store+load pairs each client performs.
    pub ops_per_client: u32,
}

/// Generates memory server (node 0) + clients (nodes `1..=clients`).
///
/// Request packet: `[op, addr, value, reply_rid]` END, with `op` 0 = load,
/// 1 = store. Reply packet: `[value]` END.
///
/// # Errors
///
/// [`GenError`] for zero clients/ops or too small a machine.
pub fn generate(spec: &SharedMemSpec, grid: GridSpec) -> Result<Placement, GenError> {
    if spec.clients == 0 || spec.ops_per_client == 0 {
        return Err(GenError::BadParameter("clients and ops must be > 0"));
    }
    if spec.clients + 1 > grid.core_count() {
        return Err(GenError::TooFewCores {
            need: spec.clients + 1,
            have: grid.core_count(),
        });
    }
    let mut placement = Placement::new();
    let total = spec.clients as u32 * spec.ops_per_client * 2; // store + load
    let server_rid = chanend_rid(NodeId(0), 0);

    for i in 0..spec.clients {
        let node = NodeId((i + 1) as u16);
        let my_rid = chanend_rid(node, 0);
        let addr = SHARED_BASE + 4 * i as u32;
        let factor = (i + 1) as u32;
        let ops = spec.ops_per_client;
        placement.assign(
            node,
            &format!(
                "
                    getr  r0, chanend        # replies
                    getr  r1, chanend        # requests
                    ldc   r2, {server_rid}
                    setd  r1, r2
                    ldc   r3, {ops}
                    ldc   r4, 1              # j
                    ldc   r5, 0              # sum
                    ldc   r6, {addr}
                    ldc   r11, {my_rid}
                cl:
                    # store j * factor
                    ldc   r7, {factor}
                    mul   r7, r7, r4
                    ldc   r8, 1
                    out   r1, r8             # op = store
                    out   r1, r6             # addr
                    out   r1, r7             # value
                    out   r1, r11            # reply rid
                    outct r1, end
                    in    r9, r0             # ack
                    chkct r0, end
                    # load it back
                    ldc   r8, 0
                    out   r1, r8             # op = load
                    out   r1, r6
                    out   r1, r8             # value ignored
                    out   r1, r11
                    outct r1, end
                    in    r9, r0
                    chkct r0, end
                    add   r5, r5, r9
                    add   r4, r4, 1
                    lsu   r10, r3, r4        # ops < j ?
                    bf    r10, cl
                    print r5
                    freet
                "
            ),
        )?;
    }

    // Memory server.
    placement.assign(
        NodeId(0),
        &format!(
            "
                getr  r0, chanend
                getr  r1, chanend
                ldc   r3, {total}
            svl:
                in    r4, r0             # op
                in    r5, r0             # addr
                in    r6, r0             # value
                in    r7, r0             # reply rid
                chkct r0, end
                setd  r1, r7
                bt    r4, store
                ldw   r8, r5[0]
                bu    reply
            store:
                stw   r6, r5[0]
                mov   r8, r6
            reply:
                out   r1, r8
                outct r1, end
                sub   r3, r3, 1
                bt    r3, svl
                freet
            "
        ),
    )?;
    Ok(placement)
}

/// The sum client `i` (0-based) will print: `Σ_{j=1..=ops} j·(i+1)`.
pub fn expected_client_sum(spec: &SharedMemSpec, client: usize) -> i32 {
    let ops = spec.ops_per_client as u64;
    let factor = (client + 1) as u64;
    ((factor * ops * (ops + 1) / 2) as u32) as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow::{SystemBuilder, TimeDelta};

    #[test]
    fn remote_loads_return_remote_stores() {
        let spec = SharedMemSpec {
            clients: 4,
            ops_per_client: 5,
        };
        let mut system = SystemBuilder::new().build().expect("builds");
        let placement = generate(&spec, system.machine().spec()).expect("generates");
        placement.apply(&mut system).expect("loads");
        assert!(
            system.run_until_quiescent(TimeDelta::from_ms(50)),
            "did not finish: {:?}",
            system.first_trap()
        );
        for i in 0..4 {
            assert_eq!(
                system.output(NodeId((i + 1) as u16)),
                format!("{}\n", expected_client_sum(&spec, i)),
                "client {i}"
            );
        }
        // The shared region on the server holds each client's last store.
        for i in 0..4u32 {
            let value = system
                .machine()
                .core(NodeId(0))
                .sram()
                .read_u32(SHARED_BASE + 4 * i)
                .expect("aligned");
            assert_eq!(value, 5 * (i + 1));
        }
    }

    #[test]
    fn clients_use_disjoint_addresses() {
        let spec = SharedMemSpec {
            clients: 2,
            ops_per_client: 1,
        };
        let mut system = SystemBuilder::new().build().expect("builds");
        let placement = generate(&spec, system.machine().spec()).expect("generates");
        placement.apply(&mut system).expect("loads");
        assert!(system.run_until_quiescent(TimeDelta::from_ms(20)));
        assert_eq!(system.output(NodeId(1)), "1\n");
        assert_eq!(system.output(NodeId(2)), "2\n");
    }

    #[test]
    fn validation() {
        let grid = GridSpec::ONE_SLICE;
        assert!(generate(
            &SharedMemSpec {
                clients: 0,
                ops_per_client: 1
            },
            grid
        )
        .is_err());
        assert!(generate(
            &SharedMemSpec {
                clients: 20,
                ops_per_client: 1
            },
            grid
        )
        .is_err());
    }
}
