//! Bridge-fronted request/reply service — the fleet's per-machine program.
//!
//! External requests arrive through the Ethernet bridge as two-word frames
//! `[tag, value]`. A dispatcher core (node 0) owns the bridge-facing
//! ingress channel end, forwards each request round-robin to a farm of
//! worker cores, and each worker squares the value `work` times before
//! sending the `[tag, result]` reply frame straight back out through the
//! bridge. Tags travel untouched end to end, so the host can match every
//! reply to the request that caused it and timestamp the round trip.
//!
//! The request budget is fixed at generation time: the dispatcher and
//! every worker run an exact number of iterations and then `freet`, so a
//! fully-served machine quiesces — and a machine restored from a snapshot
//! of the loaded-but-unstarted state replays identically.

use crate::codegen::{chanend_rid, compute_block, GenError, Placement};
use swallow::{GridSpec, NodeId, ResType, ResourceId};

/// Service shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeSpec {
    /// Worker cores (the dispatcher on node 0 adds one more).
    pub workers: usize,
    /// Total requests the machine will serve before quiescing.
    pub max_requests: u32,
    /// Squaring iterations per request (the compute/communication dial).
    pub work: u32,
}

/// The channel end the host injects request frames at (dispatcher
/// ingress, node 0 chanend 0).
pub fn ingress_rid() -> ResourceId {
    ResourceId::new(NodeId(0), 0, ResType::Chanend)
}

/// The reply a worker produces for `value`: squared `work` times.
pub fn expected_reply(value: u32, work: u32) -> u32 {
    let mut v = value;
    for _ in 0..work {
        v = v.wrapping_mul(v);
    }
    v
}

/// Requests worker `w` (0-based) serves under round-robin dispatch.
pub fn worker_budget(spec: &ServeSpec, w: usize) -> u32 {
    let base = spec.max_requests / spec.workers as u32;
    let extra = spec.max_requests % spec.workers as u32;
    base + u32::from((w as u32) < extra)
}

/// Generates dispatcher (node 0) + workers (nodes `1..=workers`).
///
/// # Errors
///
/// [`GenError`] for zero workers/requests or too small a machine; the
/// machine must also have a bridge fitted for the service to be of any
/// use (not checked here — replies to a missing bridge are dropped by
/// routing validation at run time).
pub fn generate(spec: &ServeSpec, grid: GridSpec) -> Result<Placement, GenError> {
    if spec.workers == 0 || spec.max_requests == 0 {
        return Err(GenError::BadParameter("workers and requests must be > 0"));
    }
    if spec.workers + 1 > grid.core_count() {
        return Err(GenError::TooFewCores {
            need: spec.workers + 1,
            have: grid.core_count(),
        });
    }
    let mut placement = Placement::new();
    let bridge_rid = chanend_rid(NodeId(grid.core_count() as u16), 0);
    let worker0_rid = chanend_rid(NodeId(1), 0);
    let node_stride = chanend_rid(NodeId(2), 0) - worker0_rid;

    // Dispatcher: node 0. Ingress chanend 0 is the bridge's target;
    // chanend 1 is re-aimed per request at the chosen worker.
    let (workers, reqs) = (spec.workers, spec.max_requests);
    placement.assign(
        NodeId(0),
        &format!(
            "
                getr  r0, chanend       # ingress (bridge sends here)
                getr  r1, chanend       # egress to workers
                ldc   r2, 0             # round-robin cursor
                ldc   r6, {reqs}
                ldc   r8, {workers}
                ldc   r9, 0             # served
                ldc   r10, {node_stride}
                ldc   r11, {worker0_rid}
            dl:
                in    r3, r0            # tag
                in    r4, r0            # value
                chkct r0, end
                mul   r5, r2, r10
                add   r5, r5, r11
                setd  r1, r5
                out   r1, r3
                out   r1, r4
                outct r1, end
                add   r9, r9, 1
                add   r2, r2, 1
                sub   r5, r2, r8
                bt    r5, dk
                ldc   r2, 0
            dk:
                sub   r6, r6, 1
                bt    r6, dl
                print r9
                freet
            "
        ),
    )?;

    // Workers: nodes 1..=workers, each with an exact request budget.
    for w in 0..spec.workers {
        let node = NodeId((w + 1) as u16);
        let budget = worker_budget(spec, w);
        if budget == 0 {
            placement.assign(node, "ldc r0, 0\nprint r0\nfreet")?;
            continue;
        }
        let compute = compute_block("wk", "r4", "r5", spec.work);
        placement.assign(
            node,
            &format!(
                "
                    getr  r0, chanend   # requests in
                    getr  r1, chanend   # replies out, aimed at the bridge
                    ldc   r2, {bridge_rid}
                    setd  r1, r2
                    ldc   r6, {budget}
                    ldc   r9, 0         # served
                wl:
                    in    r3, r0        # tag
                    in    r4, r0        # value
                    chkct r0, end
                    {compute}
                    out   r1, r3
                    out   r1, r4
                    outct r1, end
                    add   r9, r9, 1
                    sub   r6, r6, 1
                    bt    r6, wl
                    print r9
                    freet
                "
            ),
        )?;
    }
    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow::{SystemBuilder, TimeDelta};

    #[test]
    fn requests_round_trip_through_the_bridge() {
        let spec = ServeSpec {
            workers: 3,
            max_requests: 5,
            work: 2,
        };
        let mut system = SystemBuilder::new().bridge().build().expect("builds");
        let placement = generate(&spec, system.machine().spec()).expect("generates");
        placement.apply(&mut system).expect("loads");

        let ingress = ingress_rid();
        for tag in 0..spec.max_requests {
            assert!(system
                .machine_mut()
                .bridge_mut()
                .expect("bridge fitted")
                .send_frame(ingress, &[tag, tag + 10]));
        }
        assert!(
            system.run_until_quiescent(TimeDelta::from_ms(50)),
            "service did not finish: {:?}",
            system.first_trap()
        );

        let stats = system.machine().bridge().expect("bridge fitted").stats();
        assert_eq!(stats.frames_sent, spec.max_requests as u64);
        assert_eq!(stats.frames_received, spec.max_requests as u64);
        let mut replies = Vec::new();
        let b = system.machine_mut().bridge_mut().expect("bridge fitted");
        while let Some(frame) = b.pop_frame() {
            assert_eq!(frame.words.len(), 2, "reply frame shape");
            replies.push((frame.words[0], frame.words[1]));
        }
        replies.sort_unstable();
        let expect: Vec<(u32, u32)> = (0..spec.max_requests)
            .map(|tag| (tag, expected_reply(tag + 10, spec.work)))
            .collect();
        assert_eq!(replies, expect);
        // Dispatcher and workers all report their exact budgets.
        assert_eq!(system.output(NodeId(0)), "5\n");
        for w in 0..spec.workers {
            assert_eq!(
                system.output(NodeId((w + 1) as u16)),
                format!("{}\n", worker_budget(&spec, w)),
                "worker {w}"
            );
        }
    }

    #[test]
    fn budgets_partition_the_request_count() {
        let spec = ServeSpec {
            workers: 4,
            max_requests: 10,
            work: 0,
        };
        let total: u32 = (0..spec.workers).map(|w| worker_budget(&spec, w)).sum();
        assert_eq!(total, spec.max_requests);
        assert_eq!(worker_budget(&spec, 0), 3);
        assert_eq!(worker_budget(&spec, 3), 2);
    }

    #[test]
    fn oracle_squares_repeatedly() {
        assert_eq!(expected_reply(3, 0), 3);
        assert_eq!(expected_reply(3, 1), 9);
        assert_eq!(expected_reply(3, 2), 81);
        assert_eq!(expected_reply(7, 3), 7u32.wrapping_pow(8));
    }

    #[test]
    fn validation() {
        let grid = GridSpec::ONE_SLICE;
        assert!(generate(
            &ServeSpec {
                workers: 0,
                max_requests: 1,
                work: 0
            },
            grid
        )
        .is_err());
        assert!(generate(
            &ServeSpec {
                workers: 16,
                max_requests: 1,
                work: 0
            },
            grid
        )
        .is_err());
    }
}
