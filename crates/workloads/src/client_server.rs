//! Client/server request–reply services (§I).
//!
//! The server owns one request channel end; every request packet carries
//! the client's reply channel id, so the server can `setd` its reply
//! channel per request — the idiomatic XS1 any-to-one service shape.
//! Per-packet wormhole ownership at the server's channel end serialises
//! concurrent clients without any software locking.

use crate::codegen::{chanend_rid, GenError, Placement};
use swallow::{GridSpec, NodeId};

/// Service shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceSpec {
    /// Client cores (the server adds one more).
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: u32,
}

/// The server's reply function, mirrored by [`expected_client_sum`]:
/// `reply = 2·value + 1`.
fn reply_of(value: u32) -> u32 {
    value.wrapping_mul(2).wrapping_add(1)
}

/// Generates server (node 0) + clients (nodes `1..=clients`).
///
/// # Errors
///
/// [`GenError`] for zero clients/requests or too small a machine.
pub fn generate(spec: &ServiceSpec, grid: GridSpec) -> Result<Placement, GenError> {
    if spec.clients == 0 || spec.requests_per_client == 0 {
        return Err(GenError::BadParameter("clients and requests must be > 0"));
    }
    if spec.clients + 1 > grid.core_count() {
        return Err(GenError::TooFewCores {
            need: spec.clients + 1,
            have: grid.core_count(),
        });
    }
    let mut placement = Placement::new();
    let total = spec.clients as u32 * spec.requests_per_client;
    let server_rid = chanend_rid(NodeId(0), 0);

    // Clients: nodes 1..=clients. Request packet = [reply_rid, value] END.
    for i in 0..spec.clients {
        let node = NodeId((i + 1) as u16);
        let my_rid = chanend_rid(node, 0);
        let value = (i + 1) as u32;
        let reqs = spec.requests_per_client;
        placement.assign(
            node,
            &format!(
                "
                    getr  r0, chanend       # replies
                    getr  r1, chanend       # requests
                    ldc   r2, {server_rid}
                    setd  r1, r2
                    ldc   r3, {reqs}
                    ldc   r4, {value}
                    ldc   r5, 0             # sum
                    ldc   r6, {my_rid}
                cl:
                    out   r1, r6
                    out   r1, r4
                    outct r1, end
                    in    r7, r0
                    chkct r0, end
                    add   r5, r5, r7
                    sub   r3, r3, 1
                    bt    r3, cl
                    print r5
                    freet
                "
            ),
        )?;
    }

    // Server: node 0. Prints the number of requests served.
    placement.assign(
        NodeId(0),
        &format!(
            "
                getr  r0, chanend       # requests in
                getr  r1, chanend       # replies out
                ldc   r3, {total}
                ldc   r9, 0             # served
            svl:
                in    r4, r0            # reply rid
                in    r5, r0            # value
                chkct r0, end
                setd  r1, r4
                add   r6, r5, r5
                add   r6, r6, 1         # 2v + 1
                out   r1, r6
                outct r1, end
                add   r9, r9, 1
                sub   r3, r3, 1
                bt    r3, svl
                print r9
                freet
            "
        ),
    )?;
    Ok(placement)
}

/// The sum client `i` (0-based) will print.
pub fn expected_client_sum(spec: &ServiceSpec, client: usize) -> i32 {
    let value = (client + 1) as u32;
    (reply_of(value).wrapping_mul(spec.requests_per_client)) as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow::{SystemBuilder, TimeDelta};

    #[test]
    fn three_clients_get_correct_replies() {
        let spec = ServiceSpec {
            clients: 3,
            requests_per_client: 7,
        };
        let mut system = SystemBuilder::new().build().expect("builds");
        let placement = generate(&spec, system.machine().spec()).expect("generates");
        placement.apply(&mut system).expect("loads");
        assert!(
            system.run_until_quiescent(TimeDelta::from_ms(50)),
            "service did not finish: {:?}",
            system.first_trap()
        );
        // Server served everything.
        assert_eq!(system.output(NodeId(0)), "21\n");
        for i in 0..3 {
            assert_eq!(
                system.output(NodeId((i + 1) as u16)),
                format!("{}\n", expected_client_sum(&spec, i)),
                "client {i}"
            );
        }
    }

    #[test]
    fn single_client_round_trips() {
        let spec = ServiceSpec {
            clients: 1,
            requests_per_client: 1,
        };
        let mut system = SystemBuilder::new().build().expect("builds");
        let placement = generate(&spec, system.machine().spec()).expect("generates");
        placement.apply(&mut system).expect("loads");
        assert!(system.run_until_quiescent(TimeDelta::from_ms(10)));
        // value 1 -> reply 3.
        assert_eq!(system.output(NodeId(1)), "3\n");
    }

    #[test]
    fn validation() {
        let grid = GridSpec::ONE_SLICE;
        assert!(generate(
            &ServiceSpec {
                clients: 0,
                requests_per_client: 1
            },
            grid
        )
        .is_err());
        assert!(generate(
            &ServiceSpec {
                clients: 16,
                requests_per_client: 1
            },
            grid
        )
        .is_err());
    }
}
