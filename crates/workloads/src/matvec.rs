//! Distributed matrix–vector multiply — a realistic numeric kernel on
//! the platform: the coordinator broadcasts the vector, worker cores hold
//! matrix rows in their private SRAM (no shared memory on Swallow!),
//! compute dot products and stream `(row, value)` results back.
//!
//! The data is baked into the generated programs as `.word` tables —
//! exactly how constant data reaches a real Swallow core (the image is
//! loaded into its SRAM).

use crate::codegen::{chanend_rid, GenError, Placement};
use swallow::{GridSpec, NodeId};

/// Problem shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatVecSpec {
    /// Matrix dimension (n×n) and vector length.
    pub n: usize,
    /// Worker cores (the coordinator adds one more).
    pub workers: usize,
    /// Seed for the deterministic matrix/vector contents.
    pub seed: u32,
}

fn lcg(state: &mut u32) -> u32 {
    *state = state.wrapping_mul(1_103_515_245).wrapping_add(12_345);
    // Small values keep printed results readable; wrapping arithmetic
    // makes any range exact anyway.
    (*state >> 16) & 0xFF
}

/// The deterministic matrix entry `A[i][j]`.
fn a_entry(spec: &MatVecSpec, i: usize, j: usize) -> u32 {
    let mut s = spec
        .seed
        .wrapping_add((i as u32) << 16)
        .wrapping_add(j as u32);
    lcg(&mut s)
}

/// The deterministic vector entry `x[j]`.
fn x_entry(spec: &MatVecSpec, j: usize) -> u32 {
    let mut s = spec.seed.wrapping_add(0xABCD_0000).wrapping_add(j as u32);
    lcg(&mut s)
}

/// The product `y = A·x` with wrapping arithmetic (the oracle for the
/// coordinator's printed output).
pub fn expected_y(spec: &MatVecSpec) -> Vec<i32> {
    (0..spec.n)
        .map(|i| {
            let mut acc = 0u32;
            for j in 0..spec.n {
                acc = acc.wrapping_add(a_entry(spec, i, j).wrapping_mul(x_entry(spec, j)));
            }
            acc as i32
        })
        .collect()
}

/// Generates the coordinator (node 0) + workers (nodes `1..=workers`).
/// Row `i` lives on worker `i % workers`.
///
/// # Errors
///
/// [`GenError`] for empty shapes or too small a machine.
pub fn generate(spec: &MatVecSpec, grid: GridSpec) -> Result<Placement, GenError> {
    if spec.n == 0 || spec.workers == 0 {
        return Err(GenError::BadParameter("n and workers must be > 0"));
    }
    if spec.workers + 1 > grid.core_count() {
        return Err(GenError::TooFewCores {
            need: spec.workers + 1,
            have: grid.core_count(),
        });
    }
    if spec.n > 256 {
        return Err(GenError::BadParameter("n > 256 exceeds SRAM budgets"));
    }
    let n = spec.n;
    let root_rid = chanend_rid(NodeId(0), 0);
    let mut placement = Placement::new();

    // Workers.
    for w in 0..spec.workers {
        let node = NodeId((w + 1) as u16);
        let rows: Vec<usize> = (0..n).filter(|i| i % spec.workers == w).collect();
        if rows.is_empty() {
            placement.assign(node, "freet")?;
            continue;
        }
        // Row table: [row_index, a_0 .. a_{n-1}] per local row.
        let mut table = String::new();
        for &i in &rows {
            table.push_str(&format!("            .word {i}\n"));
            for j in 0..n {
                table.push_str(&format!("            .word {}\n", a_entry(spec, i, j)));
            }
        }
        let local_rows = rows.len();
        placement.assign(
            node,
            &format!(
                "
                    getr  r0, chanend        # x arrives here
                    getr  r1, chanend        # results out
                    ldc   r2, {root_rid}
                    setd  r1, r2
                    ldap  r3, xbuf
                    ldc   r4, {n}
                rx:
                    in    r5, r0
                    stw   r5, r3[0]
                    add   r3, r3, 4
                    sub   r4, r4, 1
                    bt    r4, rx
                    chkct r0, end
                    ldap  r6, rows
                    ldc   r7, {local_rows}
                row_loop:
                    ldw   r8, r6[0]          # row index
                    add   r6, r6, 4
                    ldap  r3, xbuf
                    ldc   r4, {n}
                    ldc   r9, 0
                dot:
                    ldw   r10, r6[0]
                    ldw   r11, r3[0]
                    mul   r10, r10, r11
                    add   r9, r9, r10
                    add   r6, r6, 4
                    add   r3, r3, 4
                    sub   r4, r4, 1
                    bt    r4, dot
                    out   r1, r8
                    out   r1, r9
                    outct r1, end
                    sub   r7, r7, 1
                    bt    r7, row_loop
                    freet
                xbuf:
                    .space {n}
                rows:
                {table}
                "
            ),
        )?;
    }

    // Coordinator: broadcast x, gather n results, print y in order.
    let mut xdata = String::new();
    for j in 0..n {
        xdata.push_str(&format!("            .word {}\n", x_entry(spec, j)));
    }
    // One broadcast chanend, re-aimed per worker: `setd` between packets
    // is safe (each token's route is fixed when it is emitted).
    let mut broadcast = String::from(
        "                getr  r1, chanend
",
    );
    for w in 0..spec.workers {
        if (0..n).filter(|i| i % spec.workers == w).count() == 0 {
            continue;
        }
        let dest = chanend_rid(NodeId((w + 1) as u16), 0);
        broadcast.push_str(&format!(
            "
                ldc   r2, {dest}
                setd  r1, r2
                ldap  r3, xdata
                ldc   r4, {n}
            tx{w}:
                ldw   r5, r3[0]
                out   r1, r5
                add   r3, r3, 4
                sub   r4, r4, 1
                bt    r4, tx{w}
                outct r1, end
            "
        ));
    }
    placement.assign(
        NodeId(0),
        &format!(
            "
                getr  r0, chanend        # results arrive here (chanend 0)
                {broadcast}
                ldc   r6, {n}
            gather:
                in    r7, r0             # row index
                in    r8, r0             # value
                chkct r0, end
                ldap  r9, ybuf
                stw   r8, r9[r7]
                sub   r6, r6, 1
                bt    r6, gather
                ldap  r9, ybuf
                ldc   r6, {n}
            prnt:
                ldw   r7, r9[0]
                print r7
                add   r9, r9, 4
                sub   r6, r6, 1
                bt    r6, prnt
                freet
            xdata:
            {xdata}
            ybuf:
                .space {n}
            "
        ),
    )?;
    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow::{SystemBuilder, TimeDelta};

    fn run_matvec(spec: MatVecSpec) -> Vec<i32> {
        let mut system = SystemBuilder::new().build().expect("builds");
        let placement = generate(&spec, system.machine().spec()).expect("generates");
        placement.apply(&mut system).expect("loads");
        assert!(
            system.run_until_quiescent(TimeDelta::from_ms(100)),
            "did not finish: {:?}",
            system.first_trap()
        );
        system
            .output(NodeId(0))
            .lines()
            .map(|l| l.parse().expect("number"))
            .collect()
    }

    #[test]
    fn small_product_is_exact() {
        let spec = MatVecSpec {
            n: 4,
            workers: 2,
            seed: 1,
        };
        assert_eq!(run_matvec(spec), expected_y(&spec));
    }

    #[test]
    fn sixteen_by_sixteen_on_fifteen_workers() {
        let spec = MatVecSpec {
            n: 16,
            workers: 15,
            seed: 99,
        };
        assert_eq!(run_matvec(spec), expected_y(&spec));
    }

    #[test]
    fn more_workers_than_rows() {
        let spec = MatVecSpec {
            n: 3,
            workers: 8,
            seed: 7,
        };
        assert_eq!(run_matvec(spec), expected_y(&spec));
    }

    #[test]
    fn validation() {
        let grid = GridSpec::ONE_SLICE;
        assert!(generate(
            &MatVecSpec {
                n: 0,
                workers: 1,
                seed: 0
            },
            grid
        )
        .is_err());
        assert!(generate(
            &MatVecSpec {
                n: 4,
                workers: 16,
                seed: 0
            },
            grid
        )
        .is_err());
        assert!(generate(
            &MatVecSpec {
                n: 300,
                workers: 4,
                seed: 0
            },
            grid
        )
        .is_err());
    }
}
