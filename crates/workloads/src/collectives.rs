//! Message-passing collectives (§I's "message passing" application type).
//!
//! Three classic communication patterns over channels:
//!
//! * [`broadcast`] — one root fans a value out along a binary tree of
//!   cores (log-depth, contention-aware: tree edges map to the lattice),
//! * [`all_reduce`] — every core contributes a value; a reduce tree sums
//!   them and the result is broadcast back down; every core prints it,
//! * [`stencil_exchange`] — each core exchanges a boundary word with its
//!   ring neighbours for `rounds` iterations (the halo-exchange skeleton
//!   of grid computations), then prints an invariant-preserving checksum.

use crate::codegen::{chanend_rid, GenError, Placement};
use swallow::{GridSpec, NodeId};

/// Generates a binary-tree broadcast of `value` from node 0 over the
/// first `nodes` cores; every core prints the received value.
///
/// # Errors
///
/// [`GenError`] when fewer than 2 nodes are requested or the machine is
/// too small.
pub fn broadcast(nodes: usize, value: u32, grid: GridSpec) -> Result<Placement, GenError> {
    if nodes < 2 {
        return Err(GenError::BadParameter("broadcast needs >= 2 nodes"));
    }
    if nodes > grid.core_count() {
        return Err(GenError::TooFewCores {
            need: nodes,
            have: grid.core_count(),
        });
    }
    let mut placement = Placement::new();
    for i in 0..nodes {
        let children: Vec<usize> = [2 * i + 1, 2 * i + 2]
            .into_iter()
            .filter(|&c| c < nodes)
            .collect();
        // Receive (except the root), then forward to children, then print.
        let recv = if i == 0 {
            format!("                ldc   r4, {value}\n")
        } else {
            "
                in    r4, r0
                chkct r0, end
            "
            .to_owned()
        };
        let mut forward = String::new();
        for (k, child) in children.iter().enumerate() {
            let dest = chanend_rid(NodeId(*child as u16), 0);
            let reg = format!("r{}", 5 + k);
            forward.push_str(&format!(
                "
                getr  {reg}, chanend
                ldc   r8, {dest}
                setd  {reg}, r8
                out   {reg}, r4
                outct {reg}, end
                "
            ));
        }
        placement.assign(
            NodeId(i as u16),
            &format!(
                "
                getr  r0, chanend
                {recv}
                {forward}
                print r4
                freet
                "
            ),
        )?;
    }
    Ok(placement)
}

/// Generates an all-reduce (sum) over the first `nodes` cores: core `i`
/// contributes `i + 1`; every core prints the total `n(n+1)/2`.
///
/// # Errors
///
/// [`GenError`] for fewer than 2 nodes or too small a machine.
pub fn all_reduce(nodes: usize, grid: GridSpec) -> Result<Placement, GenError> {
    if nodes < 2 {
        return Err(GenError::BadParameter("all_reduce needs >= 2 nodes"));
    }
    if nodes > grid.core_count() {
        return Err(GenError::TooFewCores {
            need: nodes,
            have: grid.core_count(),
        });
    }
    let mut placement = Placement::new();
    for i in 0..nodes {
        let children: Vec<usize> = [2 * i + 1, 2 * i + 2]
            .into_iter()
            .filter(|&c| c < nodes)
            .collect();
        let parent = if i == 0 { None } else { Some((i - 1) / 2) };
        let contribution = (i + 1) as u32;

        // Phase 1 (reduce): receive partial sums from children on
        // chanend 0, add own contribution, send up to the parent.
        // Phase 2 (broadcast): receive total from parent on chanend 0,
        // forward to children.
        let mut gather = format!("                ldc   r4, {contribution}\n");
        for _ in &children {
            gather.push_str(
                "
                in    r5, r0
                chkct r0, end
                add   r4, r4, r5
                ",
            );
        }
        let up_down = match parent {
            Some(p) => {
                let parent_rid = chanend_rid(NodeId(p as u16), 0);
                format!(
                    "
                getr  r1, chanend
                ldc   r8, {parent_rid}
                setd  r1, r8
                out   r1, r4
                outct r1, end
                in    r4, r0          # the total comes back down
                chkct r0, end
                    "
                )
            }
            None => String::new(), // root: r4 already holds the total
        };
        let mut scatter = String::new();
        for (k, child) in children.iter().enumerate() {
            let dest = chanend_rid(NodeId(*child as u16), 0);
            let reg = format!("r{}", 6 + k);
            scatter.push_str(&format!(
                "
                getr  {reg}, chanend
                ldc   r8, {dest}
                setd  {reg}, r8
                out   {reg}, r4
                outct {reg}, end
                "
            ));
        }
        placement.assign(
            NodeId(i as u16),
            &format!(
                "
                getr  r0, chanend
                {gather}
                {up_down}
                {scatter}
                print r4
                freet
                "
            ),
        )?;
    }
    Ok(placement)
}

/// The total an [`all_reduce`] over `nodes` cores prints on every core.
pub fn all_reduce_total(nodes: usize) -> u32 {
    (nodes as u32 * (nodes as u32 + 1)) / 2
}

/// Generates a ring halo exchange: each of `nodes` cores holds one word
/// (initially its node id), and for `rounds` rounds sends its word right
/// and receives from the left, replacing its word. After `rounds` the
/// values have rotated; each core prints its final word.
///
/// # Errors
///
/// [`GenError`] for fewer than 2 nodes, zero rounds, or too small a
/// machine.
pub fn stencil_exchange(nodes: usize, rounds: u32, grid: GridSpec) -> Result<Placement, GenError> {
    if nodes < 2 {
        return Err(GenError::BadParameter("stencil needs >= 2 nodes"));
    }
    if rounds == 0 {
        return Err(GenError::BadParameter("stencil needs >= 1 round"));
    }
    if nodes > grid.core_count() {
        return Err(GenError::TooFewCores {
            need: nodes,
            have: grid.core_count(),
        });
    }
    let mut placement = Placement::new();
    for i in 0..nodes {
        let right = (i + 1) % nodes;
        let dest = chanend_rid(NodeId(right as u16), 0);
        placement.assign(
            NodeId(i as u16),
            &format!(
                "
                getr  r0, chanend        # from the left neighbour
                getr  r1, chanend        # to the right neighbour
                ldc   r2, {dest}
                setd  r1, r2
                ldc   r4, {i}            # my word
                ldc   r3, {rounds}
            round:
                out   r1, r4
                outct r1, end
                in    r4, r0
                chkct r0, end
                sub   r3, r3, 1
                bt    r3, round
                print r4
                freet
                "
            ),
        )?;
    }
    Ok(placement)
}

/// The word node `i` holds after a [`stencil_exchange`] of `rounds`
/// rounds (values rotate right by one per round).
pub fn stencil_final(nodes: usize, rounds: u32, node: usize) -> u32 {
    let shift = rounds as usize % nodes;
    ((node + nodes - shift) % nodes) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow::{SystemBuilder, TimeDelta};

    fn run(placement: &Placement) -> swallow::SwallowSystem {
        let mut system = SystemBuilder::new().build().expect("builds");
        placement.apply(&mut system).expect("loads");
        assert!(
            system.run_until_quiescent(TimeDelta::from_ms(50)),
            "did not drain: {:?}",
            system.first_trap()
        );
        system
    }

    #[test]
    fn broadcast_reaches_every_node() {
        for nodes in [2usize, 5, 16] {
            let placement = broadcast(nodes, 0xABCD, GridSpec::ONE_SLICE).expect("generates");
            let system = run(&placement);
            for i in 0..nodes {
                assert_eq!(
                    system.output(NodeId(i as u16)),
                    format!("{}\n", 0xABCD),
                    "node {i} of {nodes}"
                );
            }
        }
    }

    #[test]
    fn all_reduce_sums_everywhere() {
        for nodes in [2usize, 7, 16] {
            let placement = all_reduce(nodes, GridSpec::ONE_SLICE).expect("generates");
            let system = run(&placement);
            let total = all_reduce_total(nodes);
            for i in 0..nodes {
                assert_eq!(
                    system.output(NodeId(i as u16)),
                    format!("{total}\n"),
                    "node {i} of {nodes}"
                );
            }
        }
    }

    #[test]
    fn stencil_rotates_values() {
        for (nodes, rounds) in [(4usize, 1u32), (6, 3), (16, 20)] {
            let placement =
                stencil_exchange(nodes, rounds, GridSpec::ONE_SLICE).expect("generates");
            let system = run(&placement);
            for i in 0..nodes {
                assert_eq!(
                    system.output(NodeId(i as u16)),
                    format!("{}\n", stencil_final(nodes, rounds, i)),
                    "node {i}, {nodes} nodes, {rounds} rounds"
                );
            }
        }
    }

    #[test]
    fn validation() {
        let grid = GridSpec::ONE_SLICE;
        assert!(broadcast(1, 0, grid).is_err());
        assert!(broadcast(17, 0, grid).is_err());
        assert!(all_reduce(1, grid).is_err());
        assert!(stencil_exchange(4, 0, grid).is_err());
    }
}
