//! Parallel program patterns and traffic generators for Swallow.
//!
//! The paper's stated aim is to "support a variety of parallel application
//! types and data sharing methods, including groups of tasks, pipelines,
//! client/server, message passing and shared memory" (§I). This crate
//! provides each of those as a *program generator*: given a machine shape
//! and parameters, it emits XS1-style assembly for every participating
//! core and a [`Placement`] mapping programs to nodes.
//!
//! * [`pipeline`] — N-stage stream pipelines with tunable compute per item,
//! * [`farm`] — master/worker task farms with flow-controlled dispatch,
//! * [`client_server`] — request/reply services with reply routing,
//! * [`collectives`] — broadcast trees, all-reduce and halo exchange,
//! * [`matvec`] — distributed matrix–vector multiply with SRAM-resident rows,
//! * [`shared_mem`] — shared memory emulated over channels (a memory-server
//!   core serialising remote loads/stores),
//! * [`serve`] — bridge-fronted request/reply farms (the fleet layer's
//!   per-machine service program),
//! * [`traffic`] — raw stream generators for link/EC measurements,
//! * [`ec`] — the §V.D computation-to-communication (EC) scenarios,
//! * [`nos`] — a nano-OS service layer (name server + RPC kernels) in the
//!   spirit of the paper's companion distributed OS (its ref. 3).
//!
//! ```
//! use swallow::{SystemBuilder, TimeDelta};
//! use swallow_workloads::pipeline::{self, PipelineSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut system = SystemBuilder::new().build()?;
//! let spec = PipelineSpec { stages: 4, items: 8, work_per_item: 10 };
//! let placement = pipeline::generate(&spec, system.machine().spec())?;
//! placement.apply(&mut system)?;
//! assert!(system.run_until_quiescent(TimeDelta::from_ms(5)));
//! let checksum = pipeline::checksum(&spec);
//! assert_eq!(system.output(placement.last_node()), format!("{checksum}\n"));
//! # Ok(())
//! # }
//! ```

pub mod client_server;
pub mod codegen;
pub mod collectives;
pub mod ec;
pub mod farm;
pub mod matvec;
pub mod nos;
pub mod pipeline;
pub mod serve;
pub mod shared_mem;
pub mod traffic;

pub use codegen::{GenError, Placement};
