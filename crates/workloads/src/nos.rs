//! A nano-OS service layer in the spirit of nOS (the paper's ref. 3:
//! "nOS: a nano-sized distributed operating system for resource
//! optimisation on many-core systems", which was developed *for*
//! Swallow).
//!
//! Three resident programs cooperate purely over channels:
//!
//! * a **name server** (one core) mapping small integer names to
//!   channel-end resource ids; services register, clients look up,
//!   polling until the service appears, so boot order is irrelevant;
//! * **service kernels** (any number of cores) that register themselves
//!   and then serve a tiny RPC protocol (square / add / peek / poke /
//!   exit) against their own core — peek/poke expose each core's SRAM,
//!   the OS-level remote-memory primitive;
//! * **clients** generated with a call script.
//!
//! Every message is the uniform frame `[op, a, b, reply_rid] END`,
//! answered by `[value] END`.

use crate::codegen::{chanend_rid, GenError, Placement};
use swallow::{GridSpec, NodeId};

/// RPC opcodes understood by a service kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NosOp {
    /// reply = a².
    Square,
    /// reply = a + b.
    Add,
    /// reply = word at SRAM address `a` of the service's core.
    Peek,
    /// `mem[a] = b`; reply = b.
    Poke,
    /// Terminate the service kernel (reply = 0).
    Exit,
}

impl NosOp {
    fn code(self) -> u32 {
        match self {
            NosOp::Square => 0,
            NosOp::Add => 1,
            NosOp::Peek => 2,
            NosOp::Poke => 3,
            NosOp::Exit => 4,
        }
    }

    /// What the service will reply for `(a, b)` (the simulator-side
    /// mirror, for test oracles). `Peek` depends on machine state and has
    /// no static mirror.
    pub fn expected_reply(self, a: u32, b: u32) -> Option<u32> {
        match self {
            NosOp::Square => Some(a.wrapping_mul(a)),
            NosOp::Add => Some(a.wrapping_add(b)),
            NosOp::Poke => Some(b),
            NosOp::Exit => Some(0),
            NosOp::Peek => None,
        }
    }
}

/// One scripted client call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NosCall {
    /// Which registered service (name id) to call.
    pub service: u32,
    /// Operation.
    pub op: NosOp,
    /// First operand.
    pub a: u32,
    /// Second operand.
    pub b: u32,
}

/// Maximum registered names the name server holds.
pub const NAME_TABLE_SLOTS: u32 = 16;

/// Name-server opcodes (internal to the generated programs).
const NS_LOOKUP: u32 = 0;
const NS_REGISTER: u32 = 1;

/// The name-server program (runs on `node`).
///
/// Serves forever; `expected_messages` bounds its lifetime so the
/// machine can reach quiescence (count every register + every lookup,
/// including client retries — generous bounds are fine, the server also
/// exits on an `Exit`-style shutdown when the count is reached).
fn name_server(total_messages: u32) -> String {
    format!(
        "
            getr  r0, chanend        # requests (chanend 0)
            getr  r1, chanend        # replies
            ldc   r3, {total_messages}
        svl:
            in    r4, r0             # op
            in    r5, r0             # name
            in    r6, r0             # rid (for register)
            in    r7, r0             # reply chanend
            chkct r0, end
            setd  r1, r7
            ldc   r8, table
            eq    r9, r4, {NS_REGISTER}
            bf    r9, lookup
            stw   r6, r8[r5]
            mov   r10, r5
            bu    reply
        lookup:
            ldw   r10, r8[r5]
        reply:
            out   r1, r10
            outct r1, end
            sub   r3, r3, 1
            bt    r3, svl
            freet
        table:
            .space {NAME_TABLE_SLOTS}
        "
    )
}

/// A service kernel on `node`, registering itself as `name` and serving
/// `requests` RPCs (its own `Exit` also counts as one).
fn service_kernel(name: u32, name_server_rid: u32, my_node: NodeId, requests: u32) -> String {
    let my_rid = chanend_rid(my_node, 0);
    format!(
        "
            getr  r0, chanend        # RPC requests (chanend 0)
            getr  r1, chanend        # outbound (register, replies)
            # Register with the name server.
            ldc   r2, {name_server_rid}
            setd  r1, r2
            ldc   r4, {NS_REGISTER}
            out   r1, r4
            ldc   r4, {name}
            out   r1, r4
            ldc   r4, {my_rid}
            out   r1, r4
            out   r1, r4             # reply to our own chanend 0
            outct r1, end
            in    r4, r0             # registration ack
            chkct r0, end

            ldc   r3, {requests}
        svl:
            in    r4, r0             # op
            in    r5, r0             # a
            in    r6, r0             # b
            in    r7, r0             # reply rid
            chkct r0, end
            setd  r1, r7
            eq    r9, r4, 0
            bt    r9, do_square
            eq    r9, r4, 1
            bt    r9, do_add
            eq    r9, r4, 2
            bt    r9, do_peek
            eq    r9, r4, 3
            bt    r9, do_poke
            ldc   r10, 0             # exit: reply 0 and stop
            out   r1, r10
            outct r1, end
            freet
        do_square:
            mul   r10, r5, r5
            bu    reply
        do_add:
            add   r10, r5, r6
            bu    reply
        do_peek:
            ldw   r10, r5[0]
            bu    reply
        do_poke:
            stw   r6, r5[0]
            mov   r10, r6
        reply:
            out   r1, r10
            outct r1, end
            sub   r3, r3, 1
            bt    r3, svl
            freet
        "
    )
}

/// A client executing `calls` in order, printing each reply.
fn client(my_node: NodeId, name_server_rid: u32, calls: &[NosCall]) -> String {
    let my_rid = chanend_rid(my_node, 0);
    let mut body = String::new();
    for (i, call) in calls.iter().enumerate() {
        let (service, op, a, b) = (call.service, call.op.code(), call.a, call.b);
        // Look up the service (poll until registered).
        body.push_str(&format!(
            "
            lk{i}:
                ldc   r4, {NS_LOOKUP}
                out   r1, r4
                ldc   r4, {service}
                out   r1, r4
                ldc   r4, 0
                out   r1, r4
                ldc   r4, {my_rid}
                out   r1, r4
                outct r1, end
                in    r5, r0          # service rid (0 = not yet)
                chkct r0, end
                bf    r5, lk{i}
                # Call it.
                getr  r6, chanend     # dedicated request chanend
                setd  r6, r5
                ldc   r4, {op}
                out   r6, r4
                ldc   r4, {a}
                out   r6, r4
                ldc   r4, {b}
                out   r6, r4
                ldc   r4, {my_rid}
                out   r6, r4
                outct r6, end
                in    r7, r0
                chkct r0, end
                print r7
                freer r6
            "
        ));
    }
    format!(
        "
            getr  r0, chanend        # replies (chanend 0)
            getr  r1, chanend        # to the name server
            ldc   r2, {name_server_rid}
            setd  r1, r2
            {body}
            freet
        "
    )
}

/// A whole nOS deployment: name server on node 0, one service kernel, one
/// or more scripted clients.
#[derive(Clone, Debug)]
pub struct NosSpec {
    /// Integer name the service registers under.
    pub service_name: u32,
    /// Node hosting the service kernel.
    pub service_node: NodeId,
    /// Scripts, one per client; client `i` runs on node `2 + i` (skipping
    /// the service node if it collides).
    pub clients: Vec<Vec<NosCall>>,
}

/// Generates the deployment.
///
/// # Errors
///
/// [`GenError`] for empty scripts, bad names, or too small a machine.
pub fn generate(spec: &NosSpec, grid: GridSpec) -> Result<Placement, GenError> {
    if spec.service_name >= NAME_TABLE_SLOTS {
        return Err(GenError::BadParameter("service_name exceeds name table"));
    }
    if spec.clients.is_empty() || spec.clients.iter().any(Vec::is_empty) {
        return Err(GenError::BadParameter(
            "each client needs at least one call",
        ));
    }
    let ns_node = NodeId(0);
    if spec.service_node == ns_node {
        return Err(GenError::BadParameter(
            "service cannot share the name server's node",
        ));
    }
    // Allocate client nodes.
    let mut client_nodes = Vec::new();
    let mut next = 1u16;
    while client_nodes.len() < spec.clients.len() {
        let node = NodeId(next);
        next += 1;
        if node != spec.service_node {
            client_nodes.push(node);
        }
        if next as usize > grid.core_count() {
            return Err(GenError::TooFewCores {
                need: spec.clients.len() + 2,
                have: grid.core_count(),
            });
        }
    }

    let ns_rid = chanend_rid(ns_node, 0);
    // Service request count: every client call addressed to this service,
    // plus nothing else (clients send Exit explicitly if scripted).
    let service_requests: u32 = spec
        .clients
        .iter()
        .flatten()
        .filter(|c| c.service == spec.service_name)
        .count() as u32;
    // Name-server message budget: one register + one lookup per call
    // (retries only happen before registration; give headroom).
    let ns_messages = 1 + 4 * spec.clients.iter().map(|c| c.len() as u32).sum::<u32>();

    let mut placement = Placement::new();
    placement.assign(
        spec.service_node,
        &service_kernel(
            spec.service_name,
            ns_rid,
            spec.service_node,
            service_requests,
        ),
    )?;
    for (script, node) in spec.clients.iter().zip(&client_nodes) {
        placement.assign(*node, &client(*node, ns_rid, script))?;
    }
    placement.assign(ns_node, &name_server(ns_messages))?;
    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow::{SystemBuilder, TimeDelta};

    #[test]
    fn client_discovers_and_calls_a_service() {
        let spec = NosSpec {
            service_name: 7,
            service_node: NodeId(5),
            clients: vec![vec![
                NosCall {
                    service: 7,
                    op: NosOp::Square,
                    a: 12,
                    b: 0,
                },
                NosCall {
                    service: 7,
                    op: NosOp::Add,
                    a: 30,
                    b: 12,
                },
                NosCall {
                    service: 7,
                    op: NosOp::Exit,
                    a: 0,
                    b: 0,
                },
            ]],
        };
        let mut system = SystemBuilder::new().build().expect("builds");
        let placement = generate(&spec, system.machine().spec()).expect("generates");
        placement.apply(&mut system).expect("loads");
        system.run_until_quiescent(TimeDelta::from_ms(20));
        assert!(system.first_trap().is_none(), "{:?}", system.first_trap());
        // Client on node 1 (first free node).
        assert_eq!(system.output(NodeId(1)), "144\n42\n0\n");
    }

    #[test]
    fn remote_peek_poke_through_the_service() {
        let spec = NosSpec {
            service_name: 3,
            service_node: NodeId(2),
            clients: vec![vec![
                NosCall {
                    service: 3,
                    op: NosOp::Poke,
                    a: 0x6000,
                    b: 777,
                },
                NosCall {
                    service: 3,
                    op: NosOp::Peek,
                    a: 0x6000,
                    b: 0,
                },
                NosCall {
                    service: 3,
                    op: NosOp::Exit,
                    a: 0,
                    b: 0,
                },
            ]],
        };
        let mut system = SystemBuilder::new().build().expect("builds");
        let placement = generate(&spec, system.machine().spec()).expect("generates");
        placement.apply(&mut system).expect("loads");
        system.run_until_quiescent(TimeDelta::from_ms(20));
        assert_eq!(system.output(NodeId(1)), "777\n777\n0\n");
        // The write really landed in the service core's SRAM.
        assert_eq!(
            system.machine().core(NodeId(2)).sram().read_u32(0x6000),
            Ok(777)
        );
    }

    #[test]
    fn two_clients_share_one_service() {
        let spec = NosSpec {
            service_name: 1,
            service_node: NodeId(8),
            clients: vec![
                vec![
                    NosCall {
                        service: 1,
                        op: NosOp::Square,
                        a: 9,
                        b: 0,
                    },
                    NosCall {
                        service: 1,
                        op: NosOp::Add,
                        a: 1,
                        b: 2,
                    },
                ],
                vec![
                    NosCall {
                        service: 1,
                        op: NosOp::Square,
                        a: 11,
                        b: 0,
                    },
                    NosCall {
                        service: 1,
                        op: NosOp::Add,
                        a: 2,
                        b: 2,
                    },
                ],
            ],
        };
        // No Exit needed: the kernel serves its budgeted request count
        // (four calls) and terminates; an early Exit could race ahead of
        // the other client's outstanding calls.
        let mut system = SystemBuilder::new().build().expect("builds");
        let placement = generate(&spec, system.machine().spec()).expect("generates");
        placement.apply(&mut system).expect("loads");
        system.run_until_quiescent(TimeDelta::from_ms(50));
        assert!(system.first_trap().is_none(), "{:?}", system.first_trap());
        assert_eq!(system.output(NodeId(1)), "81\n3\n");
        assert_eq!(system.output(NodeId(2)), "121\n4\n");
    }

    #[test]
    fn validation() {
        let grid = GridSpec::ONE_SLICE;
        let bad_name = NosSpec {
            service_name: 99,
            service_node: NodeId(1),
            clients: vec![vec![NosCall {
                service: 99,
                op: NosOp::Exit,
                a: 0,
                b: 0,
            }]],
        };
        assert!(generate(&bad_name, grid).is_err());
        let empty = NosSpec {
            service_name: 1,
            service_node: NodeId(1),
            clients: vec![],
        };
        assert!(generate(&empty, grid).is_err());
    }
}
