//! Property tests over the workload generators: arbitrary valid shapes
//! always produce programs that assemble, run to quiescence and match
//! their Rust-side oracles.

use swallow::{NodeId, SystemBuilder, TimeDelta};
use swallow_testkit::proptest::prelude::*;
use swallow_workloads::{collectives, matvec, nos, shared_mem};

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Broadcast reaches every participant for any fan-out.
    #[test]
    fn broadcast_any_shape(nodes in 2usize..16, value in any::<u32>()) {
        let mut system = SystemBuilder::new().build().expect("builds");
        let placement = collectives::broadcast(nodes, value, system.machine().spec())
            .expect("generates");
        placement.apply(&mut system).expect("loads");
        prop_assert!(system.run_until_quiescent(TimeDelta::from_ms(20)));
        for i in 0..nodes {
            prop_assert_eq!(
                system.output(NodeId(i as u16)).trim(),
                (value as i32).to_string()
            );
        }
    }

    /// All-reduce totals are correct for any participant count.
    #[test]
    fn all_reduce_any_shape(nodes in 2usize..16) {
        let mut system = SystemBuilder::new().build().expect("builds");
        collectives::all_reduce(nodes, system.machine().spec())
            .expect("generates")
            .apply(&mut system)
            .expect("loads");
        prop_assert!(system.run_until_quiescent(TimeDelta::from_ms(30)));
        let total = collectives::all_reduce_total(nodes).to_string();
        for i in 0..nodes {
            prop_assert_eq!(system.output(NodeId(i as u16)).trim(), total.as_str());
        }
    }

    /// Halo exchange rotates by exactly `rounds` for any ring.
    #[test]
    fn stencil_any_shape(nodes in 2usize..16, rounds in 1u32..24) {
        let mut system = SystemBuilder::new().build().expect("builds");
        collectives::stencil_exchange(nodes, rounds, system.machine().spec())
            .expect("generates")
            .apply(&mut system)
            .expect("loads");
        prop_assert!(system.run_until_quiescent(TimeDelta::from_ms(60)));
        for i in 0..nodes {
            prop_assert_eq!(
                system.output(NodeId(i as u16)).trim(),
                collectives::stencil_final(nodes, rounds, i).to_string()
            );
        }
    }

    /// Matrix–vector products match the oracle for any shape/seed.
    #[test]
    fn matvec_any_shape(n in 1usize..12, workers in 1usize..10, seed in any::<u32>()) {
        let spec = matvec::MatVecSpec { n, workers, seed };
        let mut system = SystemBuilder::new().build().expect("builds");
        matvec::generate(&spec, system.machine().spec())
            .expect("generates")
            .apply(&mut system)
            .expect("loads");
        prop_assert!(
            system.run_until_quiescent(TimeDelta::from_ms(100)),
            "trap: {:?}", system.first_trap()
        );
        let y: Vec<i32> = system
            .output(NodeId(0))
            .lines()
            .map(|l| l.parse().expect("number"))
            .collect();
        prop_assert_eq!(y, matvec::expected_y(&spec));
    }

    /// Remote memory ops through a server always serialise correctly.
    #[test]
    fn shared_mem_any_shape(clients in 1usize..10, ops in 1u32..8) {
        let spec = shared_mem::SharedMemSpec { clients, ops_per_client: ops };
        let mut system = SystemBuilder::new().build().expect("builds");
        shared_mem::generate(&spec, system.machine().spec())
            .expect("generates")
            .apply(&mut system)
            .expect("loads");
        prop_assert!(system.run_until_quiescent(TimeDelta::from_ms(100)));
        for i in 0..clients {
            prop_assert_eq!(
                system.output(NodeId((i + 1) as u16)).trim(),
                shared_mem::expected_client_sum(&spec, i).to_string()
            );
        }
    }

    /// nOS square calls return a² for arbitrary operands.
    #[test]
    fn nos_square_any_operand(a in any::<u32>()) {
        let spec = nos::NosSpec {
            service_name: 2,
            service_node: NodeId(3),
            clients: vec![vec![nos::NosCall {
                service: 2,
                op: nos::NosOp::Square,
                a,
                b: 0,
            }]],
        };
        let mut system = SystemBuilder::new().build().expect("builds");
        nos::generate(&spec, system.machine().spec())
            .expect("generates")
            .apply(&mut system)
            .expect("loads");
        system.run_until_quiescent(TimeDelta::from_ms(20));
        let expected = nos::NosOp::Square.expected_reply(a, 0).expect("static") as i32;
        prop_assert_eq!(system.output(NodeId(1)).trim(), expected.to_string());
    }
}
