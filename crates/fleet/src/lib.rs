//! A many-machine serving layer for the Swallow platform simulator.
//!
//! The paper pitches Swallow as a building block for scale-out embedded
//! serving: many independent machines behind a network front-end. This
//! crate models that deployment — a *fleet* of `N` complete [`Machine`]
//! grids, each running the bridge-fronted request/reply service from
//! `swallow_workloads::serve`, driven by a deterministic open-loop
//! traffic generator ([`arrivals`]) and measured end to end: per-request
//! latency (from *scheduled* arrival, so queueing delay counts) and
//! attributed energy.
//!
//! Determinism is the design center. Each machine is serially
//! deterministic, its schedule is drawn up front from a seeded RNG, and
//! the per-machine result streams are merged in machine order with
//! `swallow_sim::kway_merge_by` — so spreading machines across host
//! threads ([`FleetSpec::threads`]) changes wall-clock time and nothing
//! else: `BENCH_fleet.json` rows are bit-identical for any thread count.
//!
//! Machines can also be *warm-started*: the loaded-but-unstarted template
//! is snapshotted once (`SWLWSNAP`, DESIGN.md §3.13) and every fleet
//! member revives from those bytes; [`Fingerprint`]s prove the warm fleet
//! takes exactly the cold fleet's trajectory. The same snapshot path
//! supports mid-run handoff ([`Driver`]) and queue rebalancing
//! ([`rebalance`]) when a machine is drained out of the fleet.
//!
//! ```
//! use swallow_fleet::{ArrivalKind, FleetSpec};
//!
//! let mut spec = FleetSpec::default();
//! spec.machines = 2;
//! spec.requests = 4;
//! spec.arrivals = ArrivalKind::Poisson;
//! let result = swallow_fleet::run(&spec).expect("runs");
//! assert_eq!(result.completed, 8);
//! assert_eq!(result.wrong, 0);
//! ```
//!
//! [`Machine`]: swallow::Machine

pub mod arrivals;
pub mod driver;

pub use arrivals::{generate_arrivals, ArrivalKind, Request};
pub use driver::{drive, Completion, DriveOutcome, Driver, Fingerprint};

use std::fmt;
use swallow::xcore::LoadError;
use swallow::{BuildError, EngineMode, GridSpec, SwallowSystem, SystemBuilder, Time, TimeDelta};
use swallow_sim::{kway_merge_by, CodecError, DetRng, LatencySketch};
use swallow_workloads::serve::{self, ServeSpec};
use swallow_workloads::{GenError, Placement};

/// The whole fleet, declaratively.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSpec {
    /// Independent machines in the fleet.
    pub machines: usize,
    /// Per-machine grid in slices (x × y); 16 cores per slice.
    pub slices: (u16, u16),
    /// Worker cores per machine (the dispatcher adds one).
    pub workers: usize,
    /// Requests scheduled per machine.
    pub requests: u32,
    /// Request budget compiled into each machine's service program;
    /// defaults to `requests`. Provision extra headroom when schedules
    /// will be [`rebalance`]d onto surviving machines.
    pub provision: Option<u32>,
    /// Squaring iterations per request (compute/communication dial).
    pub work: u32,
    /// Arrival-process shape.
    pub arrivals: ArrivalKind,
    /// Mean offered load per machine, requests per second.
    pub rate_rps: f64,
    /// Fleet seed; machine `m` draws from stream `seed ⊕ m`.
    pub seed: u64,
    /// Host threads to spread machines over (clamped to `[1, machines]`).
    /// Affects wall-clock time only — results are thread-count-invariant.
    pub threads: usize,
    /// Bridge ingress cap in tx-queue tokens; arrivals beyond it are
    /// rejected and counted (backpressure) instead of queueing unboundedly.
    pub ingress_capacity: Option<u64>,
    /// How long each machine runs past its last scheduled arrival.
    pub drain: TimeDelta,
    /// Revive every machine from one template `SWLWSNAP` snapshot instead
    /// of building each cold.
    pub warm_start: bool,
    /// Per-machine simulation engine.
    pub engine: EngineMode,
    /// Record per-supply energy series on every machine so the fleet's
    /// conservation gate (metered vs ledger) can run per machine.
    pub metrics: bool,
}

impl Default for FleetSpec {
    /// A small smoke-sized fleet: two one-slice machines, four workers,
    /// four Poisson requests each at 100 krps.
    fn default() -> Self {
        FleetSpec {
            machines: 2,
            slices: (1, 1),
            workers: 4,
            requests: 4,
            provision: None,
            work: 4,
            arrivals: ArrivalKind::Poisson,
            rate_rps: 100_000.0,
            seed: 42,
            threads: 1,
            ingress_capacity: None,
            drain: TimeDelta::from_us(300),
            warm_start: false,
            engine: EngineMode::FastForward,
            metrics: false,
        }
    }
}

impl FleetSpec {
    /// The per-machine grid.
    pub fn grid(&self) -> GridSpec {
        GridSpec {
            slices_x: self.slices.0,
            slices_y: self.slices.1,
        }
    }

    /// The request budget compiled into each service program.
    pub fn provisioned(&self) -> u32 {
        self.provision.unwrap_or(self.requests)
    }

    /// Draws every machine's arrival schedule. Machine `m` uses its own
    /// RNG stream and the fleet-unique tag range `m·requests ..`.
    pub fn schedules(&self) -> Vec<Vec<Request>> {
        (0..self.machines)
            .map(|m| {
                let stream = self
                    .seed
                    .wrapping_add((m as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                generate_arrivals(
                    self.arrivals,
                    self.rate_rps,
                    self.requests,
                    m as u32 * self.requests,
                    &mut DetRng::seed_from(stream),
                )
            })
            .collect()
    }
}

/// Error from [`run`].
#[derive(Debug)]
pub enum FleetError {
    /// A spec parameter was out of range.
    BadParameter(&'static str),
    /// The per-machine grid failed to build.
    Build(BuildError),
    /// The service program failed to generate.
    Gen(GenError),
    /// A service image did not fit a core's SRAM.
    Load(LoadError),
    /// The warm-start template snapshot failed to restore.
    Snapshot(CodecError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::BadParameter(what) => write!(f, "bad fleet parameter: {what}"),
            FleetError::Build(e) => write!(f, "machine build failed: {e}"),
            FleetError::Gen(e) => write!(f, "service generation failed: {e}"),
            FleetError::Load(e) => write!(f, "service load failed: {e}"),
            FleetError::Snapshot(e) => write!(f, "warm-start restore failed: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<BuildError> for FleetError {
    fn from(e: BuildError) -> Self {
        FleetError::Build(e)
    }
}

impl From<GenError> for FleetError {
    fn from(e: GenError) -> Self {
        FleetError::Gen(e)
    }
}

impl From<LoadError> for FleetError {
    fn from(e: LoadError) -> Self {
        FleetError::Load(e)
    }
}

impl From<CodecError> for FleetError {
    fn from(e: CodecError) -> Self {
        FleetError::Snapshot(e)
    }
}

/// One row of the merged fleet completion log.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetCompletion {
    /// Which machine served the request.
    pub machine: usize,
    /// The served request.
    pub completion: Completion,
}

/// Everything a fleet run produced.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetResult {
    /// Per-machine outcomes, in machine order.
    pub machines: Vec<DriveOutcome>,
    /// All completions merged by `(completed_at, machine)` — the
    /// deterministic fleet-wide request log.
    pub completions: Vec<FleetCompletion>,
    /// Mergeable latency distribution over every completion, in
    /// picoseconds.
    pub sketch: LatencySketch,
    /// Requests scheduled fleet-wide.
    pub offered: u64,
    /// Requests the bridges accepted.
    pub injected: u64,
    /// Requests rejected by ingress backpressure.
    pub rejected: u64,
    /// Requests served within the horizon.
    pub completed: u64,
    /// Oracle-failing or malformed replies.
    pub wrong: u64,
    /// Fleet-wide energy not attributable to any request.
    pub idle_energy_j: f64,
    /// Fleet-wide ledger total.
    pub total_energy_j: f64,
    /// The longest per-machine run span.
    pub span: TimeDelta,
}

impl FleetResult {
    /// Served requests per second of simulated time.
    pub fn goodput_rps(&self) -> f64 {
        let secs = self.span.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// Whole-fleet energy per served request (the serving-efficiency
    /// figure of merit: idle burn is charged to the requests too).
    pub fn joules_per_request(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_energy_j / self.completed as f64
        }
    }

    /// A latency quantile in picoseconds (sketch lower bound, ≤ 1/32
    /// relative error), or `None` with no completions.
    pub fn latency_ps(&self, q: f64) -> Option<u64> {
        self.sketch.quantile(q)
    }
}

fn build_machine(spec: &FleetSpec, placement: &Placement) -> Result<SwallowSystem, FleetError> {
    let mut builder = SystemBuilder::new()
        .slices(spec.slices.0, spec.slices.1)
        .engine(spec.engine)
        .bridge();
    if spec.metrics {
        builder = builder.metrics();
    }
    let mut system = builder.build()?;
    placement.apply(&mut system)?;
    Ok(system)
}

/// Runs the fleet over the spec's own schedules.
///
/// # Errors
///
/// [`FleetError`] on an invalid spec or a failed build/generate/restore.
pub fn run(spec: &FleetSpec) -> Result<FleetResult, FleetError> {
    let schedules = spec.schedules();
    run_with_schedules(spec, &schedules)
}

/// Runs the fleet over explicit per-machine schedules (the entry point
/// for [`rebalance`]d runs). `schedules[m]` must be sorted by arrival.
///
/// # Errors
///
/// [`FleetError`] on an invalid spec or a failed build/generate/restore.
pub fn run_with_schedules(
    spec: &FleetSpec,
    schedules: &[Vec<Request>],
) -> Result<FleetResult, FleetError> {
    if spec.machines == 0 {
        return Err(FleetError::BadParameter("fleet needs at least one machine"));
    }
    if schedules.len() != spec.machines {
        return Err(FleetError::BadParameter("one schedule per machine"));
    }
    if !spec.rate_rps.is_finite() || spec.rate_rps <= 0.0 {
        return Err(FleetError::BadParameter("rate must be positive"));
    }
    let service = ServeSpec {
        workers: spec.workers,
        max_requests: spec.provisioned(),
        work: spec.work,
    };
    let placement = serve::generate(&service, spec.grid())?;
    let template: Option<Vec<u8>> = if spec.warm_start {
        Some(build_machine(spec, &placement)?.snapshot())
    } else {
        None
    };

    let threads = spec.threads.clamp(1, spec.machines);
    let mut outcomes: Vec<Option<DriveOutcome>> = (0..spec.machines).map(|_| None).collect();
    std::thread::scope(|scope| -> Result<(), FleetError> {
        let mut handles = Vec::new();
        for t in 0..threads {
            let (placement, template) = (&placement, &template);
            handles.push(
                scope.spawn(move || -> Result<Vec<(usize, DriveOutcome)>, FleetError> {
                    let mut done = Vec::new();
                    let mut m = t;
                    while m < spec.machines {
                        let mut system = match template {
                            Some(bytes) => SwallowSystem::restore(bytes)?,
                            None => build_machine(spec, placement)?,
                        };
                        let bridge = system
                            .machine_mut()
                            .bridge_mut()
                            .expect("fleet machines carry a bridge");
                        bridge.set_tag(m as u32);
                        if let Some(cap) = spec.ingress_capacity {
                            bridge.set_ingress_capacity(cap);
                        }
                        done.push((m, drive(&mut system, &schedules[m], spec.work, spec.drain)));
                        m += threads;
                    }
                    Ok(done)
                }),
            );
        }
        for handle in handles {
            for (m, outcome) in handle.join().expect("fleet worker panicked")? {
                outcomes[m] = Some(outcome);
            }
        }
        Ok(())
    })?;

    let machines: Vec<DriveOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every machine was driven"))
        .collect();
    let streams: Vec<Vec<FleetCompletion>> = machines
        .iter()
        .enumerate()
        .map(|(m, outcome)| {
            outcome
                .completions
                .iter()
                .map(|&completion| FleetCompletion {
                    machine: m,
                    completion,
                })
                .collect()
        })
        .collect();
    let completions = kway_merge_by(streams, |c| c.completion.completed_at);
    let mut sketch = LatencySketch::new();
    for c in &completions {
        sketch.record(c.completion.latency.as_ps());
    }
    Ok(FleetResult {
        offered: schedules.iter().map(|s| s.len() as u64).sum(),
        injected: machines.iter().map(|o| o.injected as u64).sum(),
        rejected: machines.iter().map(|o| o.rejected as u64).sum(),
        completed: completions.len() as u64,
        wrong: machines.iter().map(|o| o.wrong as u64).sum(),
        idle_energy_j: machines.iter().map(|o| o.idle_energy_j).sum(),
        total_energy_j: machines.iter().map(|o| o.total_energy_j).sum(),
        span: TimeDelta::from_ps(
            machines
                .iter()
                .map(|o| o.fingerprint.now_ps)
                .max()
                .unwrap_or(0),
        ),
        machines,
        completions,
        sketch,
    })
}

/// Drains machine `from` out of the fleet: every request scheduled after
/// `after` moves to machine `to`'s queue (schedule stays sorted; tags —
/// fleet-unique — travel with the requests). Returns how many moved.
/// Provision the surviving machine for the extra load via
/// [`FleetSpec::provision`].
///
/// # Panics
///
/// Panics if `from == to` or either index is out of range.
pub fn rebalance(schedules: &mut [Vec<Request>], from: usize, after: Time, to: usize) -> usize {
    assert!(from != to, "cannot rebalance a machine onto itself");
    let (kept, moved): (Vec<Request>, Vec<Request>) =
        schedules[from].drain(..).partition(|r| r.at <= after);
    schedules[from] = kept;
    let n = moved.len();
    schedules[to].extend(moved);
    schedules[to].sort_by_key(|r| (r.at, r.tag));
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fleet_serves_everything() {
        let spec = FleetSpec {
            machines: 3,
            requests: 5,
            rate_rps: 250_000.0,
            ..FleetSpec::default()
        };
        let result = run(&spec).expect("runs");
        assert_eq!(result.offered, 15);
        assert_eq!(result.injected, 15);
        assert_eq!(result.completed, 15);
        assert_eq!(result.wrong, 0);
        assert_eq!(result.sketch.count(), 15);
        assert!(result.goodput_rps() > 0.0);
        assert!(result.joules_per_request() > 0.0);
        // Merged log is ordered by (completed_at, machine).
        assert!(result.completions.windows(2).all(|w| {
            let (a, b) = (&w[0], &w[1]);
            (a.completion.completed_at, a.machine) <= (b.completion.completed_at, b.machine)
        }));
        // Tags are fleet-unique: machine m owns m·requests..(m+1)·requests.
        for c in &result.completions {
            assert_eq!(c.completion.tag / spec.requests, c.machine as u32);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let base = FleetSpec {
            machines: 3,
            requests: 4,
            rate_rps: 300_000.0,
            ..FleetSpec::default()
        };
        let one = run(&base).expect("runs");
        for threads in [2, 3, 8] {
            let spec = FleetSpec {
                threads,
                ..base.clone()
            };
            assert_eq!(run(&spec).expect("runs"), one, "{threads} threads");
        }
    }

    #[test]
    fn warm_start_matches_cold_start() {
        let cold = FleetSpec {
            machines: 2,
            requests: 4,
            ..FleetSpec::default()
        };
        let warm = FleetSpec {
            warm_start: true,
            ..cold.clone()
        };
        let a = run(&cold).expect("cold runs");
        let b = run(&warm).expect("warm runs");
        assert_eq!(a, b);
        for (x, y) in a.machines.iter().zip(&b.machines) {
            assert_eq!(x.fingerprint, y.fingerprint);
        }
    }

    #[test]
    fn rebalance_moves_the_tail() {
        let spec = FleetSpec {
            machines: 2,
            requests: 6,
            provision: Some(12),
            ..FleetSpec::default()
        };
        let mut schedules = spec.schedules();
        let cut = schedules[0][2].at;
        let moved = rebalance(&mut schedules, 0, cut, 1);
        assert_eq!(moved, 3);
        assert_eq!(schedules[0].len(), 3);
        assert_eq!(schedules[1].len(), 9);
        assert!(schedules[1].windows(2).all(|w| w[0].at <= w[1].at));
        let result = run_with_schedules(&spec, &schedules).expect("runs");
        assert_eq!(result.completed, 12);
        assert_eq!(result.wrong, 0);
        // Machine 1 served its own six plus the three moved requests.
        assert_eq!(result.machines[1].completions.len(), 9);
    }

    #[test]
    fn spec_validation() {
        let spec = FleetSpec {
            machines: 0,
            ..FleetSpec::default()
        };
        assert!(matches!(run(&spec), Err(FleetError::BadParameter(_))));
        let spec = FleetSpec {
            workers: 99,
            ..FleetSpec::default()
        };
        assert!(matches!(run(&spec), Err(FleetError::Gen(_))));
    }
}
