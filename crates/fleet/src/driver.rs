//! The per-machine request driver.
//!
//! [`drive`] pushes one machine through its arrival schedule: inject due
//! request frames at the bridge, advance simulated time in bounded
//! chunks, drain reply frames, and attribute the machine's energy to the
//! requests that were in flight while it was spent. The whole loop is a
//! pure function of the machine state and the schedule — no host clocks,
//! no thread timing — which is what lets the fleet layer scatter
//! machines across threads and still merge bit-identical results.

use crate::arrivals::Request;
use std::collections::BTreeMap;
use swallow::{SwallowSystem, Time, TimeDelta};
use swallow_workloads::serve::{expected_reply, ingress_rid};

/// Energy-attribution granularity: the ledger delta is split over the
/// in-flight set at least this often, even with no arrival to stop at.
const MAX_CHUNK: TimeDelta = TimeDelta::from_us(20);

/// Smallest forward step — keeps the loop making progress when the next
/// arrival is closer than the engine's scheduling grain.
const MIN_STEP: TimeDelta = TimeDelta::from_ns(100);

/// One served request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Completion {
    /// The request's fleet-unique tag.
    pub tag: u32,
    /// The reply payload the worker computed.
    pub reply: u32,
    /// When the reply frame finished arriving at the bridge.
    pub completed_at: Time,
    /// Round trip measured from the *scheduled* arrival, so queueing
    /// delay on a saturated machine is included (no coordinated
    /// omission).
    pub latency: TimeDelta,
    /// Energy attributed to this request (equal split of every ledger
    /// delta over the concurrently in-flight set).
    pub energy_j: f64,
}

/// The end-of-run identity of a machine: if two runs agree on this, they
/// took the same trajectory (used to prove warm-started fleets equal
/// cold-started ones).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// Final simulated instant, in picoseconds.
    pub now_ps: u64,
    /// Machine-wide instructions retired.
    pub instret: u64,
    /// Exact bits of the ledger-total joules.
    pub energy_bits: u64,
    /// Frames the bridge sent into the machine.
    pub frames_in: u64,
    /// Frames the machine sent out through the bridge.
    pub frames_out: u64,
    /// Frames rejected at ingress by the backpressure cap.
    pub rejected: u64,
}

/// What one machine did over its schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct DriveOutcome {
    /// Served requests in completion order.
    pub completions: Vec<Completion>,
    /// Requests injected (accepted by the bridge).
    pub injected: u32,
    /// Requests rejected by ingress backpressure.
    pub rejected: u32,
    /// Replies that failed the [`expected_reply`] oracle or arrived
    /// malformed.
    pub wrong: u32,
    /// Energy spent while nothing was in flight.
    pub idle_energy_j: f64,
    /// Whole-run ledger total.
    pub total_energy_j: f64,
    /// Supply-integrated energy total (`None` with the metrics hub off);
    /// the per-machine conservation gate compares this to
    /// `total_energy_j`.
    pub metered_energy_j: Option<f64>,
    /// The machine's end-of-run identity.
    pub fingerprint: Fingerprint,
}

struct Open {
    scheduled: Time,
    value: u32,
    energy_j: f64,
}

/// The resumable driver loop. [`drive`] wraps it; the fleet's mid-run
/// snapshot handoff uses it directly — host-side request bookkeeping
/// stays in the driver while the machine is serialized and revived.
pub struct Driver<'a> {
    arrivals: &'a [Request],
    work: u32,
    horizon: Time,
    next: usize,
    open: BTreeMap<u32, Open>,
    completions: Vec<Completion>,
    injected: u32,
    rejected: u32,
    wrong: u32,
    idle_energy_j: f64,
    last_energy_j: f64,
}

impl<'a> Driver<'a> {
    /// Starts a driver over `arrivals` against a service generated with
    /// `work` squaring iterations, running `drain` past the last arrival.
    pub fn new(arrivals: &'a [Request], work: u32, drain: TimeDelta) -> Self {
        let last = arrivals.last().map_or(Time::ZERO, |r| r.at);
        Driver {
            arrivals,
            work,
            horizon: last + drain,
            next: 0,
            open: BTreeMap::new(),
            completions: Vec::new(),
            injected: 0,
            rejected: 0,
            wrong: 0,
            idle_energy_j: 0.0,
            last_energy_j: 0.0,
        }
    }

    /// True once the machine has reached the run horizon.
    pub fn done(&self, system: &SwallowSystem) -> bool {
        system.now() >= self.horizon
    }

    /// Completions drained so far.
    pub fn completed(&self) -> usize {
        self.completions.len()
    }

    /// Injects due arrivals, advances to the next arrival (or chunk
    /// boundary), attributes the energy spent, drains replies.
    pub fn step(&mut self, system: &mut SwallowSystem) {
        let now = system.now();
        while self.next < self.arrivals.len() && self.arrivals[self.next].at <= now {
            let req = self.arrivals[self.next];
            self.next += 1;
            let bridge = system
                .machine_mut()
                .bridge_mut()
                .expect("fleet machines carry a bridge");
            if bridge.send_frame(ingress_rid(), &[req.tag, req.value]) {
                self.injected += 1;
                self.open.insert(
                    req.tag,
                    Open {
                        scheduled: req.at,
                        value: req.value,
                        energy_j: 0.0,
                    },
                );
            } else {
                self.rejected += 1;
            }
        }
        let target = match self.arrivals.get(self.next) {
            Some(req) => req.at.min(self.horizon),
            None => self.horizon,
        };
        let step = target.saturating_since(now).min(MAX_CHUNK).max(MIN_STEP);
        system.run_for(step);
        self.attribute_energy(system);
        self.drain(system);
    }

    fn attribute_energy(&mut self, system: &SwallowSystem) {
        let total = system.machine().machine_ledger().total().as_joules();
        let delta = total - self.last_energy_j;
        self.last_energy_j = total;
        if self.open.is_empty() {
            self.idle_energy_j += delta;
        } else {
            let share = delta / self.open.len() as f64;
            for open in self.open.values_mut() {
                open.energy_j += share;
            }
        }
    }

    fn drain(&mut self, system: &mut SwallowSystem) {
        let bridge = system
            .machine_mut()
            .bridge_mut()
            .expect("fleet machines carry a bridge");
        while let Some(frame) = bridge.pop_frame() {
            let (Some(&tag), Some(&reply)) = (frame.words.first(), frame.words.get(1)) else {
                self.wrong += 1;
                continue;
            };
            let Some(open) = self.open.remove(&tag) else {
                self.wrong += 1;
                continue;
            };
            if reply != expected_reply(open.value, self.work) {
                self.wrong += 1;
            }
            self.completions.push(Completion {
                tag,
                reply,
                completed_at: frame.completed_at,
                latency: frame.completed_at.saturating_since(open.scheduled),
                energy_j: open.energy_j,
            });
        }
    }

    /// Seals the run: final metrics flush and energy split, fingerprint,
    /// outcome.
    pub fn finish(mut self, system: &mut SwallowSystem) -> DriveOutcome {
        system.flush_metrics();
        self.attribute_energy(system);
        // Energy accumulated by requests still open at the horizon has no
        // completion to land on; it is idle from the fleet's viewpoint.
        self.idle_energy_j += self.open.values().map(|o| o.energy_j).sum::<f64>();
        let machine = system.machine();
        let stats = machine
            .bridge()
            .expect("fleet machines carry a bridge")
            .stats();
        DriveOutcome {
            completions: self.completions,
            injected: self.injected,
            rejected: self.rejected,
            wrong: self.wrong,
            idle_energy_j: self.idle_energy_j,
            total_energy_j: self.last_energy_j,
            metered_energy_j: machine
                .metrics()
                .is_enabled()
                .then(|| machine.metrics().total_energy().as_joules()),
            fingerprint: Fingerprint {
                now_ps: system.now().as_ps(),
                instret: machine.total_instret(),
                energy_bits: self.last_energy_j.to_bits(),
                frames_in: stats.frames_sent,
                frames_out: stats.frames_received,
                rejected: stats.frames_rejected,
            },
        }
    }
}

/// Runs one machine through its whole schedule.
pub fn drive(
    system: &mut SwallowSystem,
    arrivals: &[Request],
    work: u32,
    drain: TimeDelta,
) -> DriveOutcome {
    let mut driver = Driver::new(arrivals, work, drain);
    while !driver.done(system) {
        driver.step(system);
    }
    driver.finish(system)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{generate_arrivals, ArrivalKind};
    use swallow::{NodeId, SystemBuilder};
    use swallow_sim::DetRng;
    use swallow_workloads::serve::{self, ServeSpec};

    fn service_system(spec: &ServeSpec) -> SwallowSystem {
        let mut system = SystemBuilder::new().bridge().build().expect("builds");
        let placement = serve::generate(spec, system.machine().spec()).expect("generates");
        placement.apply(&mut system).expect("loads");
        system
    }

    #[test]
    fn drives_a_schedule_to_completion() {
        let spec = ServeSpec {
            workers: 4,
            max_requests: 12,
            work: 3,
        };
        let mut system = service_system(&spec);
        let arrivals = generate_arrivals(
            ArrivalKind::Poisson,
            200_000.0,
            12,
            0,
            &mut DetRng::seed_from(11),
        );
        let outcome = drive(&mut system, &arrivals, spec.work, TimeDelta::from_us(300));
        assert_eq!(outcome.injected, 12);
        assert_eq!(outcome.rejected, 0);
        assert_eq!(outcome.wrong, 0, "every reply matches the oracle");
        assert_eq!(outcome.completions.len(), 12);
        // Completion order is bridge-arrival order: monotone timestamps.
        assert!(outcome
            .completions
            .windows(2)
            .all(|w| w[0].completed_at <= w[1].completed_at));
        for c in &outcome.completions {
            assert!(c.latency > TimeDelta::ZERO);
            assert!(c.energy_j > 0.0, "tag {} got no energy", c.tag);
        }
        // Request + idle energy account for the whole ledger.
        let request_j: f64 = outcome.completions.iter().map(|c| c.energy_j).sum();
        let gap = (request_j + outcome.idle_energy_j - outcome.total_energy_j).abs();
        assert!(
            gap <= outcome.total_energy_j * 1e-9,
            "energy attribution leaked {gap} J"
        );
        // The serve program quiesced: dispatcher printed its budget.
        assert_eq!(system.output(NodeId(0)), "12\n");
    }

    #[test]
    fn same_schedule_same_outcome() {
        let spec = ServeSpec {
            workers: 3,
            max_requests: 8,
            work: 2,
        };
        let arrivals = generate_arrivals(
            ArrivalKind::Bursty { burst: 4 },
            300_000.0,
            8,
            100,
            &mut DetRng::seed_from(5),
        );
        let run = |spec: &ServeSpec| {
            let mut system = service_system(spec);
            drive(&mut system, &arrivals, spec.work, TimeDelta::from_us(200))
        };
        assert_eq!(run(&spec), run(&spec));
    }

    #[test]
    fn empty_schedule_is_just_idle_burn() {
        let spec = ServeSpec {
            workers: 2,
            max_requests: 1,
            work: 0,
        };
        let mut system = service_system(&spec);
        let outcome = drive(&mut system, &[], spec.work, TimeDelta::from_us(50));
        assert_eq!(outcome.injected, 0);
        assert!(outcome.completions.is_empty());
        assert!(outcome.idle_energy_j > 0.0);
        assert_eq!(outcome.idle_energy_j, outcome.total_energy_j);
    }
}
