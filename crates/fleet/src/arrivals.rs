//! Deterministic open-loop arrival processes.
//!
//! The fleet front-end is *open loop*: request arrival instants are drawn
//! before the run starts, from a seeded [`DetRng`], and do not react to
//! how fast the machines serve. Latency is therefore measured from the
//! *scheduled* arrival — a saturated machine shows queueing delay instead
//! of silently throttling the offered load (the coordinated-omission
//! trap closed-loop harnesses fall into).

use swallow_sim::{DetRng, Time};

/// The shape of the arrival process (the rate is a separate knob so a
/// load sweep can vary it without changing the shape).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Memoryless arrivals: independent exponential gaps.
    Poisson,
    /// Bursts of `burst` simultaneous requests, with exponential gaps
    /// between bursts sized so the long-run rate still matches.
    Bursty {
        /// Requests per burst (minimum 1).
        burst: u32,
    },
}

impl ArrivalKind {
    /// Parses the `reproduce fleet --arrivals` grammar: `poisson` or
    /// `bursty` / `bursty:N` (burst size N, default 8).
    pub fn parse(text: &str) -> Option<ArrivalKind> {
        match text {
            "poisson" => Some(ArrivalKind::Poisson),
            "bursty" => Some(ArrivalKind::Bursty { burst: 8 }),
            _ => {
                let n = text.strip_prefix("bursty:")?.parse().ok()?;
                (n >= 1).then_some(ArrivalKind::Bursty { burst: n })
            }
        }
    }
}

/// One scheduled request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Scheduled arrival instant (latency is measured from here).
    pub at: Time,
    /// Fleet-unique tag, echoed end to end by the service program.
    pub tag: u32,
    /// Payload the workers square.
    pub value: u32,
}

/// An exponential inter-arrival gap at `rate_rps`, in picoseconds.
fn exp_gap_ps(rate_rps: f64, rng: &mut DetRng) -> u64 {
    // u ∈ [0,1) so 1-u ∈ (0,1] and the gap is finite and ≥ 0.
    let gap_secs = -(1.0 - rng.f64()).ln() / rate_rps;
    (gap_secs * 1e12) as u64
}

/// Draws `count` arrivals at mean `rate_rps`, tagged `base_tag..`.
///
/// The same `(kind, rate, count, base_tag, rng state)` always yields the
/// same schedule — the fleet's determinism starts here.
///
/// # Panics
///
/// Panics on a non-positive rate.
pub fn generate_arrivals(
    kind: ArrivalKind,
    rate_rps: f64,
    count: u32,
    base_tag: u32,
    rng: &mut DetRng,
) -> Vec<Request> {
    assert!(rate_rps > 0.0, "arrival rate must be positive");
    let mut out = Vec::with_capacity(count as usize);
    let mut t_ps = 0u64;
    match kind {
        ArrivalKind::Poisson => {
            for i in 0..count {
                t_ps += exp_gap_ps(rate_rps, rng);
                out.push(Request {
                    at: Time::from_ps(t_ps),
                    tag: base_tag + i,
                    value: rng.next_u32(),
                });
            }
        }
        ArrivalKind::Bursty { burst } => {
            let burst = burst.max(1);
            let burst_rate = rate_rps / burst as f64;
            let mut i = 0;
            while i < count {
                t_ps += exp_gap_ps(burst_rate, rng);
                for _ in 0..burst {
                    if i >= count {
                        break;
                    }
                    out.push(Request {
                        at: Time::from_ps(t_ps),
                        tag: base_tag + i,
                        value: rng.next_u32(),
                    });
                    i += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        for kind in [ArrivalKind::Poisson, ArrivalKind::Bursty { burst: 4 }] {
            let a = generate_arrivals(kind, 1e5, 100, 0, &mut DetRng::seed_from(9));
            let b = generate_arrivals(kind, 1e5, 100, 0, &mut DetRng::seed_from(9));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn poisson_hits_the_mean_rate() {
        let n = 20_000u32;
        let rate = 250_000.0;
        let reqs = generate_arrivals(ArrivalKind::Poisson, rate, n, 0, &mut DetRng::seed_from(1));
        assert_eq!(reqs.len(), n as usize);
        assert!(reqs.windows(2).all(|w| w[0].at <= w[1].at), "sorted");
        let span_s = reqs.last().expect("non-empty").at.as_secs_f64();
        let measured = n as f64 / span_s;
        assert!(
            (measured - rate).abs() < rate * 0.05,
            "measured rate {measured} vs {rate}"
        );
    }

    #[test]
    fn bursts_share_instants_and_keep_the_rate() {
        let n = 9_000u32;
        let rate = 400_000.0;
        let kind = ArrivalKind::Bursty { burst: 6 };
        let reqs = generate_arrivals(kind, rate, n, 0, &mut DetRng::seed_from(2));
        // Full bursts share a timestamp.
        assert_eq!(reqs[0].at, reqs[5].at);
        assert_ne!(reqs[0].at, reqs[6].at);
        let span_s = reqs.last().expect("non-empty").at.as_secs_f64();
        let measured = n as f64 / span_s;
        assert!(
            (measured - rate).abs() < rate * 0.10,
            "measured rate {measured} vs {rate}"
        );
    }

    #[test]
    fn tags_are_sequential_from_base() {
        let reqs = generate_arrivals(ArrivalKind::Poisson, 1e6, 5, 70, &mut DetRng::seed_from(3));
        let tags: Vec<u32> = reqs.iter().map(|r| r.tag).collect();
        assert_eq!(tags, [70, 71, 72, 73, 74]);
    }

    #[test]
    fn kind_parses() {
        assert_eq!(ArrivalKind::parse("poisson"), Some(ArrivalKind::Poisson));
        assert_eq!(
            ArrivalKind::parse("bursty"),
            Some(ArrivalKind::Bursty { burst: 8 })
        );
        assert_eq!(
            ArrivalKind::parse("bursty:3"),
            Some(ArrivalKind::Bursty { burst: 3 })
        );
        assert_eq!(ArrivalKind::parse("bursty:0"), None);
        assert_eq!(ArrivalKind::parse("uniform"), None);
    }
}
