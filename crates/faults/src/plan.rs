//! The fault schedule: kinds, events and the plan builder.

use swallow_isa::NodeId;
use swallow_noc::LinkId;
use swallow_sim::{DetRng, Time, TimeDelta};

/// One kind of injected misbehaviour.
///
/// Window-shaped kinds carry their own `until` instant so a single
/// scheduled event both opens and (implicitly) closes the window — the
/// component checks `now < until` and no closing event needs to be
/// replayed, which keeps the timeline identical under every engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Hot-unplug: the directed link stops accepting tokens. In-flight
    /// tokens drain normally (the cable is cut between packets, not
    /// mid-symbol) and wormhole routes bound to it rebind elsewhere.
    LinkDown(LinkId),
    /// Re-plug a previously downed link.
    LinkUp(LinkId),
    /// Until `until`, every launch on the link is detected as corrupt
    /// and retried: the wire energy is spent, the payload is not.
    LinkCorrupt {
        /// The afflicted directed link.
        link: LinkId,
        /// End of the corruption window (exclusive).
        until: Time,
    },
    /// Until `until`, data tokens launched on the link are lost after
    /// transmission (control tokens are retried instead so routes still
    /// close — a lost END would wedge the wormhole forever).
    LinkDrop {
        /// The afflicted directed link.
        link: LinkId,
        /// End of the drop window (exclusive).
        until: Time,
    },
    /// The core issues no instructions until `until` (clock gated by a
    /// glitch); static and clock-tree power still burn.
    CoreStall {
        /// The stalled core.
        core: NodeId,
        /// End of the stall window (exclusive).
        until: Time,
    },
    /// The core halts permanently (package failure / slice removed).
    CoreKill(NodeId),
    /// Supply brownout: every core is derated to `milli`/1000 of its
    /// nominal frequency (with the matching DVFS voltage) until `until`.
    Brownout {
        /// Frequency scale in thousandths (500 = half speed).
        milli: u32,
        /// End of the brownout (exclusive); nominal operating points
        /// are restored at this instant.
        until: Time,
    },
}

/// A [`FaultKind`] pinned to the simulated instant it takes effect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault applies (snapped up to the next grid instant by
    /// the machine, like every other machine-level event).
    pub at: Time,
    /// What happens.
    pub kind: FaultKind,
}

/// A time-sorted schedule of [`FaultEvent`]s.
///
/// The plan is plain data: cloning it, printing it or replaying it under
/// a different execution engine yields the same timeline. Events are
/// kept stably sorted by `at`, so two events at the same instant apply
/// in insertion order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan — a machine built with it is bit-identical to one
    /// built with no plan at all.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The schedule, stably sorted by instant.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Schedules an arbitrary event (builder methods below are sugar
    /// over this). Keeps the schedule stably sorted.
    pub fn push(&mut self, at: Time, kind: FaultKind) -> &mut Self {
        self.events.push(FaultEvent { at, kind });
        // Stable sort: same-instant events keep insertion order.
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Hot-unplug `link` at `at`.
    pub fn link_down(mut self, at: Time, link: LinkId) -> Self {
        self.push(at, FaultKind::LinkDown(link));
        self
    }

    /// Re-plug `link` at `at`.
    pub fn link_up(mut self, at: Time, link: LinkId) -> Self {
        self.push(at, FaultKind::LinkUp(link));
        self
    }

    /// Corrupt every token launched on `link` in `[at, at + dur)`.
    pub fn corrupt_window(mut self, at: Time, link: LinkId, dur: TimeDelta) -> Self {
        self.push(
            at,
            FaultKind::LinkCorrupt {
                link,
                until: at + dur,
            },
        );
        self
    }

    /// Drop data tokens launched on `link` in `[at, at + dur)`.
    pub fn drop_window(mut self, at: Time, link: LinkId, dur: TimeDelta) -> Self {
        self.push(
            at,
            FaultKind::LinkDrop {
                link,
                until: at + dur,
            },
        );
        self
    }

    /// Stall `core` (no instruction issue) in `[at, at + dur)`.
    pub fn stall_core(mut self, at: Time, core: NodeId, dur: TimeDelta) -> Self {
        self.push(
            at,
            FaultKind::CoreStall {
                core,
                until: at + dur,
            },
        );
        self
    }

    /// Halt `core` permanently at `at`.
    pub fn kill_core(mut self, at: Time, core: NodeId) -> Self {
        self.push(at, FaultKind::CoreKill(core));
        self
    }

    /// Derate every core to `milli`/1000 of nominal in `[at, at + dur)`.
    pub fn brownout(mut self, at: Time, milli: u32, dur: TimeDelta) -> Self {
        assert!((1..=1000).contains(&milli), "brownout scale is 1..=1000");
        self.push(
            at,
            FaultKind::Brownout {
                milli,
                until: at + dur,
            },
        );
        self
    }

    /// A seeded random plan over a machine with `links` directed links
    /// and `cores` cores. Driven by [`DetRng`], so the same seed and
    /// shape always yield the same plan.
    pub fn random(seed: u64, cfg: &RandomFaults, links: u32, cores: u16) -> FaultPlan {
        assert!(links > 0 && cores > 0, "machine must have links and cores");
        let mut rng = DetRng::seed_from(seed);
        let mut plan = FaultPlan::new();
        let span = cfg.span.as_ps().max(1);
        let window = cfg.window.as_ps().max(1);
        for _ in 0..cfg.events {
            let at = Time::from_ps(rng.below(span));
            let dur = TimeDelta::from_ps(rng.range(window / 2, window).max(1));
            let link = LinkId::from_raw(rng.below(u64::from(links)) as u32);
            let core = NodeId(rng.below(u64::from(cores)) as u16);
            let mut roll = rng.below(100);
            if !cfg.allow_link_down && roll < 10 {
                roll = 10; // remap to a corrupt window
            }
            if !cfg.allow_core_faults && (75..90).contains(&roll) {
                roll = 40; // remap to a corrupt window
            }
            if !cfg.allow_brownout && roll >= 90 {
                roll = 60; // remap to a drop window
            }
            match roll {
                // Transient hot-unplug: down now, back up after the
                // window (the re-plug may land past `span`; fine).
                0..=9 => {
                    plan = plan.link_down(at, link).link_up(at + dur, link);
                }
                10..=54 => plan = plan.corrupt_window(at, link, dur),
                55..=74 => plan = plan.drop_window(at, link, dur),
                75..=89 => plan = plan.stall_core(at, core, dur),
                _ => {
                    let milli = rng.range(300, 800) as u32;
                    plan = plan.brownout(at, milli, dur);
                }
            }
        }
        plan
    }
}

/// Shape of a [`FaultPlan::random`] schedule.
#[derive(Clone, Copy, Debug)]
pub struct RandomFaults {
    /// Number of fault events to schedule.
    pub events: u32,
    /// Window the fault instants fall in, from t = 0.
    pub span: TimeDelta,
    /// Maximum duration of corrupt/drop/stall/brownout windows (actual
    /// durations are drawn from `[window/2, window)`).
    pub window: TimeDelta,
    /// Permit transient link hot-unplugs.
    pub allow_link_down: bool,
    /// Permit core stalls (kills are never generated randomly).
    pub allow_core_faults: bool,
    /// Permit supply brownouts.
    pub allow_brownout: bool,
}

impl Default for RandomFaults {
    fn default() -> Self {
        RandomFaults {
            events: 8,
            span: TimeDelta::from_us(40),
            window: TimeDelta::from_us(2),
            allow_link_down: true,
            allow_core_faults: true,
            allow_brownout: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_keeps_events_sorted_and_stable() {
        let plan = FaultPlan::new()
            .kill_core(Time::from_ps(300), NodeId(2))
            .link_down(Time::from_ps(100), LinkId::from_raw(0))
            .link_up(Time::from_ps(100), LinkId::from_raw(0));
        let at: Vec<u64> = plan.events().iter().map(|e| e.at.as_ps()).collect();
        assert_eq!(at, [100, 100, 300]);
        // Same-instant events keep insertion order.
        assert_eq!(
            plan.events()[0].kind,
            FaultKind::LinkDown(LinkId::from_raw(0))
        );
        assert_eq!(
            plan.events()[1].kind,
            FaultKind::LinkUp(LinkId::from_raw(0))
        );
    }

    #[test]
    fn random_is_reproducible_and_seed_sensitive() {
        let cfg = RandomFaults::default();
        let a = FaultPlan::random(7, &cfg, 40, 16);
        let b = FaultPlan::random(7, &cfg, 40, 16);
        let c = FaultPlan::random(8, &cfg, 40, 16);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.len() >= cfg.events as usize);
    }

    #[test]
    fn random_respects_kind_gates() {
        let cfg = RandomFaults {
            events: 64,
            allow_link_down: false,
            allow_core_faults: false,
            allow_brownout: false,
            ..RandomFaults::default()
        };
        let plan = FaultPlan::random(11, &cfg, 40, 16);
        for ev in plan.events() {
            assert!(
                matches!(
                    ev.kind,
                    FaultKind::LinkCorrupt { .. } | FaultKind::LinkDrop { .. }
                ),
                "gated kind generated: {:?}",
                ev.kind
            );
        }
    }

    #[test]
    fn windows_carry_their_close_instant() {
        let plan = FaultPlan::new().corrupt_window(
            Time::from_ps(1_000),
            LinkId::from_raw(3),
            TimeDelta::from_ps(500),
        );
        assert_eq!(plan.len(), 1);
        match plan.events()[0].kind {
            FaultKind::LinkCorrupt { link, until } => {
                assert_eq!(link.raw(), 3);
                assert_eq!(until.as_ps(), 1_500);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }
}
