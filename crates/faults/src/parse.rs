//! The `--faults` command-line grammar.
//!
//! A spec is a comma- (or semicolon-) separated list of terms:
//!
//! ```text
//! kill-link:<link>@<t>          hot-unplug a directed link
//! up-link:<link>@<t>            re-plug it
//! corrupt:<link>@<t>+<dur>      corrupt-and-retry window
//! drop:<link>@<t>+<dur>         data-token drop window
//! stall:<core>@<t>+<dur>        core issues nothing for <dur>
//! kill-core:<core>@<t>          permanent core halt
//! brownout:<milli>@<t>+<dur>    derate all cores to milli/1000
//! ```
//!
//! Times and durations take an `ns`, `us` or `ms` suffix, e.g.
//! `corrupt:4@2us+500ns,kill-link:9@5us`.

use swallow_isa::NodeId;
use swallow_noc::LinkId;
use swallow_sim::{Time, TimeDelta};

use crate::plan::FaultPlan;

fn parse_delta(s: &str) -> Result<TimeDelta, String> {
    let (digits, mul) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1_000u64)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000_000)
    } else {
        return Err(format!("`{s}`: time needs an ns/us/ms suffix"));
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("`{s}`: bad time value"))?;
    Ok(TimeDelta::from_ps(n.saturating_mul(mul)))
}

fn parse_time(s: &str) -> Result<Time, String> {
    Ok(Time::ZERO + parse_delta(s)?)
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("`{s}`: bad {what}"))
}

/// `<when>` or `<when>+<dur>` depending on `windowed`.
fn parse_when(s: &str, windowed: bool) -> Result<(Time, TimeDelta), String> {
    if windowed {
        let (at, dur) = s
            .split_once('+')
            .ok_or_else(|| format!("`{s}`: expected <time>+<duration>"))?;
        Ok((parse_time(at)?, parse_delta(dur)?))
    } else if s.contains('+') {
        Err(format!("`{s}`: this fault kind takes a bare time"))
    } else {
        Ok((parse_time(s)?, TimeDelta::ZERO))
    }
}

impl FaultPlan {
    /// Parses a `--faults` spec (grammar in the [module docs](self)).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending term.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for term in spec
            .split([',', ';'])
            .map(str::trim)
            .filter(|t| !t.is_empty())
        {
            let (kind, rest) = term
                .split_once(':')
                .ok_or_else(|| format!("`{term}`: expected <kind>:<target>@<when>"))?;
            let (target, when) = rest
                .split_once('@')
                .ok_or_else(|| format!("`{term}`: expected <target>@<when>"))?;
            plan = match kind {
                "kill-link" => {
                    let link = LinkId::from_raw(parse_num(target, "link id")?);
                    let (at, _) = parse_when(when, false)?;
                    plan.link_down(at, link)
                }
                "up-link" => {
                    let link = LinkId::from_raw(parse_num(target, "link id")?);
                    let (at, _) = parse_when(when, false)?;
                    plan.link_up(at, link)
                }
                "corrupt" => {
                    let link = LinkId::from_raw(parse_num(target, "link id")?);
                    let (at, dur) = parse_when(when, true)?;
                    plan.corrupt_window(at, link, dur)
                }
                "drop" => {
                    let link = LinkId::from_raw(parse_num(target, "link id")?);
                    let (at, dur) = parse_when(when, true)?;
                    plan.drop_window(at, link, dur)
                }
                "stall" => {
                    let core = NodeId(parse_num(target, "core id")?);
                    let (at, dur) = parse_when(when, true)?;
                    plan.stall_core(at, core, dur)
                }
                "kill-core" => {
                    let core = NodeId(parse_num(target, "core id")?);
                    let (at, _) = parse_when(when, false)?;
                    plan.kill_core(at, core)
                }
                "brownout" => {
                    let milli: u32 = parse_num(target, "milli scale")?;
                    if !(1..=1000).contains(&milli) {
                        return Err(format!("`{term}`: brownout scale is 1..=1000"));
                    }
                    let (at, dur) = parse_when(when, true)?;
                    plan.brownout(at, milli, dur)
                }
                other => {
                    return Err(format!(
                        "`{other}`: unknown fault kind; known: kill-link up-link \
                         corrupt drop stall kill-core brownout"
                    ))
                }
            };
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultKind;

    #[test]
    fn full_grammar_round_trips() {
        let plan = FaultPlan::parse(
            "corrupt:4@2us+500ns, kill-link:9@5us; up-link:9@6us,\
             drop:2@1us+1us, stall:3@10ns+20ns, kill-core:7@1ms, brownout:500@3us+2us",
        )
        .expect("parses");
        assert_eq!(plan.len(), 7);
        let kinds: Vec<&FaultKind> = plan.events().iter().map(|e| &e.kind).collect();
        assert!(kinds
            .iter()
            .any(|k| matches!(k, FaultKind::LinkCorrupt { link, until }
                if link.raw() == 4 && until.as_ps() == 2_500_000)));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, FaultKind::Brownout { milli: 500, .. })));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, FaultKind::CoreKill(NodeId(7)))));
    }

    #[test]
    fn errors_name_the_offending_term() {
        for (spec, needle) in [
            ("nonsense", "expected <kind>"),
            ("warp:1@2us", "unknown fault kind"),
            ("kill-link:x@2us", "bad link id"),
            ("kill-link:1@2", "suffix"),
            ("corrupt:1@2us", "expected <time>+<duration>"),
            ("kill-link:1@2us+3us", "bare time"),
            ("brownout:0@1us+1us", "1..=1000"),
        ] {
            let err = FaultPlan::parse(spec).expect_err(spec);
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn empty_spec_is_the_empty_plan() {
        assert!(FaultPlan::parse("").expect("ok").is_empty());
        assert!(FaultPlan::parse(" , ;").expect("ok").is_empty());
    }
}
