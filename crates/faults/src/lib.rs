//! Deterministic fault injection for the Swallow platform model.
//!
//! Swallow is a physical machine: slices are hot-pluggable, inter-board
//! links are ordinary FFC cables, and the lattice is expected to keep
//! operating while boards are attached, detached and misbehave. This
//! crate describes that misbehaviour as data — a [`FaultPlan`] is a
//! time-sorted schedule of link, core and supply events that the board
//! layer replays at exact simulated instants, so a faulty run is just as
//! reproducible (bit-for-bit, engine-for-engine) as a perfect one.
//!
//! The plan only *describes* faults; the resilience mechanisms that
//! respond to them (link retry, route recomputation, quarantine,
//! brownout derating) live with the components they protect in
//! `swallow-noc` and `swallow-board`. [`FaultCounters`] is the shared
//! scoreboard those layers fill in.
//!
//! Plans come from three places: the builder methods
//! ([`FaultPlan::link_down`] and friends), the `--faults` command-line
//! grammar ([`FaultPlan::parse`]), and the seeded generator
//! ([`FaultPlan::random`]) driven by `swallow_sim::DetRng`.

mod parse;
mod plan;

pub use plan::{FaultEvent, FaultKind, FaultPlan, RandomFaults};

/// Re-exported for compatibility: the deterministic generator began life
/// in this crate and moved down to `swallow-sim` so substrate layers can
/// use it without depending on fault machinery.
pub use swallow_sim::DetRng;

/// Cumulative counts of injected faults and the recovery work they
/// triggered. Filled in by the fabric (retries, drops, deliveries) and
/// the machine's fault engine (everything else); exposed through
/// `Machine::fault_counters` and sampled into the metrics hub.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Links taken down (scheduled hot-unplugs plus retry escalations).
    pub link_downs: u64,
    /// Links brought back up.
    pub link_ups: u64,
    /// Tokens retransmitted after a detected corruption (each charged
    /// one token energy to the link's ledger).
    pub retransmits: u64,
    /// Data tokens lost in a drop window (energy spent, payload gone).
    pub dropped_tokens: u64,
    /// Tokens delivered to a destination chanend or the bridge.
    pub delivered_tokens: u64,
    /// Core stall windows applied.
    pub core_stalls: u64,
    /// Cores killed by the plan (permanent halt).
    pub core_kills: u64,
    /// Cores quarantined because rerouting left them unreachable.
    pub quarantined_cores: u64,
    /// Brownout windows applied (frequency derating via the DVFS model).
    pub brownouts: u64,
    /// Routing-table recomputations around dead links.
    pub reroutes: u64,
}

impl FaultCounters {
    /// True when nothing fault-related has happened (the zero value,
    /// minus the delivered-token count which also runs on fault-free
    /// machines).
    pub fn is_quiet(&self) -> bool {
        let FaultCounters {
            link_downs,
            link_ups,
            retransmits,
            dropped_tokens,
            delivered_tokens: _,
            core_stalls,
            core_kills,
            quarantined_cores,
            brownouts,
            reroutes,
        } = *self;
        link_downs == 0
            && link_ups == 0
            && retransmits == 0
            && dropped_tokens == 0
            && core_stalls == 0
            && core_kills == 0
            && quarantined_cores == 0
            && brownouts == 0
            && reroutes == 0
    }

    /// Fraction of launched data payload that arrived: delivered over
    /// delivered + dropped. A fault-free run reports 1.
    pub fn delivered_rate(&self) -> f64 {
        let total = self.delivered_tokens + self.dropped_tokens;
        if total == 0 {
            1.0
        } else {
            self.delivered_tokens as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_ignores_deliveries() {
        let mut c = FaultCounters::default();
        assert!(c.is_quiet());
        c.delivered_tokens = 10;
        assert!(c.is_quiet());
        assert_eq!(c.delivered_rate(), 1.0);
        c.dropped_tokens = 10;
        assert!(!c.is_quiet());
        assert_eq!(c.delivered_rate(), 0.5);
    }
}
