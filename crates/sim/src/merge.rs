//! Deterministic k-way merge of pre-sorted event streams.
//!
//! The fleet layer runs many independent machines, each producing its own
//! time-ordered stream of completions. To make a fleet-wide log that is
//! bit-identical regardless of how machines were spread across host
//! threads, per-machine streams are collected separately and then merged
//! here: strictly by key, ties broken by stream index. Nothing about
//! host scheduling can perturb the output.

/// Merges pre-sorted streams into one sorted vector.
///
/// Each stream must already be sorted (non-decreasing) under `key`; the
/// result interleaves all items ordered by `(key, stream index)`, so
/// equal-key items from an earlier stream come first. Order within a
/// stream is preserved.
///
/// ```
/// use swallow_sim::merge::kway_merge_by;
/// let merged = kway_merge_by(vec![vec![1u64, 4, 6], vec![2, 4, 5]], |&v| v);
/// assert_eq!(merged, [1, 2, 4, 4, 5, 6]);
/// ```
pub fn kway_merge_by<T, K, F>(streams: Vec<Vec<T>>, key: F) -> Vec<T>
where
    K: Ord,
    F: Fn(&T) -> K,
{
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut streams: Vec<std::vec::IntoIter<T>> = streams.into_iter().map(Vec::into_iter).collect();
    // `peeked` holds the head of each stream; index order breaks ties.
    let mut peeked: Vec<Option<T>> = streams.iter_mut().map(Iterator::next).collect();
    loop {
        let mut best: Option<usize> = None;
        for (i, slot) in peeked.iter().enumerate() {
            let Some(item) = slot else { continue };
            match best {
                Some(b) if key(peeked[b].as_ref().expect("best is live")) <= key(item) => {}
                _ => best = Some(i),
            }
        }
        let Some(i) = best else { break };
        let item = peeked[i].take().expect("best is live");
        peeked[i] = streams[i].next();
        out.push(item);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_disjoint_streams() {
        let merged = kway_merge_by(vec![vec![10u64, 30], vec![20, 40], vec![]], |&v| v);
        assert_eq!(merged, [10, 20, 30, 40]);
    }

    #[test]
    fn ties_break_by_stream_index() {
        let a = vec![(5u64, "a0"), (7, "a1")];
        let b = vec![(5u64, "b0"), (5, "b1")];
        let merged = kway_merge_by(vec![a, b], |&(t, _)| t);
        let labels: Vec<&str> = merged.iter().map(|&(_, l)| l).collect();
        assert_eq!(labels, ["a0", "b0", "b1", "a1"]);
    }

    #[test]
    fn single_stream_passes_through() {
        let merged = kway_merge_by(vec![vec![1u64, 1, 2, 3]], |&v| v);
        assert_eq!(merged, [1, 1, 2, 3]);
    }

    #[test]
    fn empty_input_is_empty() {
        let merged: Vec<u64> = kway_merge_by(Vec::<Vec<u64>>::new(), |&v| v);
        assert!(merged.is_empty());
    }

    #[test]
    fn matches_sort_of_concatenation() {
        // Stability vs a stable sort tagged with stream index.
        let streams = vec![vec![3u64, 3, 9], vec![1, 3, 8, 8], vec![2, 3]];
        let mut tagged: Vec<(u64, usize)> = Vec::new();
        for (i, s) in streams.iter().enumerate() {
            tagged.extend(s.iter().map(|&v| (v, i)));
        }
        tagged.sort_by_key(|&(v, i)| (v, i));
        let merged = kway_merge_by(streams, |&v| v);
        let expect: Vec<u64> = tagged.into_iter().map(|(v, _)| v).collect();
        assert_eq!(merged, expect);
    }
}
