//! Hand-rolled binary serialization primitives for machine snapshots.
//!
//! The snapshot format (DESIGN.md §3.13) is deliberately dependency-free:
//! a [`ByteWriter`] emits little-endian scalars into a growable buffer and
//! a [`ByteReader`] decodes them with every read bounds-checked, so a
//! truncated or corrupted snapshot is *rejected* with a [`CodecError`] —
//! never a panic, never a half-restored machine.
//!
//! Sections group related state behind a four-byte tag, a length and an
//! FNV-1a 64 checksum of the payload, written by [`ByteWriter::begin_section`]
//! / [`ByteWriter::end_section`] and verified by [`ByteReader::section`].
//! A single flipped payload byte always changes the FNV-1a digest (each
//! step `h = (h ^ b) · p` is a bijection of `h` for fixed `b` and maps
//! distinct bytes to distinct states for fixed `h`), so corrupt-one-byte
//! inputs are always caught by the checksum, the tag check, or a bounds
//! failure.

use std::fmt;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 digest of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A decoding failure. Every variant is a *rejection*: the decoder never
/// panics on hostile input and never yields partially-decoded state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes remained than the read required.
    Truncated,
    /// The stream does not start with the expected magic.
    BadMagic,
    /// The format version is not one this build can decode.
    BadVersion {
        /// The version found in the header.
        found: u32,
    },
    /// A section arrived with an unexpected tag.
    BadSection {
        /// The tag expected next.
        expected: [u8; 4],
        /// The tag found.
        found: [u8; 4],
    },
    /// A section payload failed its checksum.
    BadChecksum {
        /// The tag of the failing section.
        section: [u8; 4],
    },
    /// A decoded value was structurally invalid (out-of-range tag,
    /// zero frequency, mismatched element count, ...).
    Invalid(&'static str),
    /// Bytes remained after the last expected field.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "snapshot truncated"),
            CodecError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            CodecError::BadVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            CodecError::BadSection { expected, found } => write!(
                f,
                "expected section {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            CodecError::BadChecksum { section } => write!(
                f,
                "checksum mismatch in section {:?}",
                String::from_utf8_lossy(section)
            ),
            CodecError::Invalid(what) => write!(f, "invalid snapshot field: {what}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after snapshot"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Little-endian binary writer over a growable buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
    /// Open section stack: `(header_pos, payload_start)`.
    sections: Vec<(usize, usize)>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The bytes written so far.
    ///
    /// # Panics
    ///
    /// Panics if a section is still open — that is a serializer bug, not
    /// an input condition.
    pub fn finish(self) -> Vec<u8> {
        assert!(self.sections.is_empty(), "unclosed snapshot section");
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes an `f64` by exact bit pattern (restores bit-identically).
    pub fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes raw bytes (length is *not* prefixed; pair with
    /// [`ByteWriter::bytes_prefixed`] when the reader cannot know it).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a u64 length prefix followed by the bytes.
    pub fn bytes_prefixed(&mut self, bytes: &[u8]) {
        self.u64(bytes.len() as u64);
        self.raw(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str_prefixed(&mut self, s: &str) {
        self.bytes_prefixed(s.as_bytes());
    }

    /// Opens a section: writes the tag and reserves the length and
    /// checksum slots, to be patched by [`ByteWriter::end_section`].
    pub fn begin_section(&mut self, tag: [u8; 4]) {
        self.raw(&tag);
        let header_pos = self.buf.len();
        self.u64(0); // length, patched on close
        let payload_start = self.buf.len();
        self.sections.push((header_pos, payload_start));
    }

    /// Closes the innermost open section: patches its length and appends
    /// the FNV-1a 64 checksum of the payload.
    ///
    /// # Panics
    ///
    /// Panics if no section is open (a serializer bug).
    pub fn end_section(&mut self) {
        let (header_pos, payload_start) = self.sections.pop().expect("open snapshot section");
        let len = (self.buf.len() - payload_start) as u64;
        self.buf[header_pos..header_pos + 8].copy_from_slice(&len.to_le_bytes());
        let digest = fnv1a64(&self.buf[payload_start..]);
        self.u64(digest);
    }
}

/// Bounds-checked little-endian reader over a byte slice.
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Fails with [`CodecError::TrailingBytes`] unless fully consumed.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("length checked"),
        ))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("length checked"),
        ))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("length checked"),
        ))
    }

    /// Reads a strict bool (exactly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool out of range")),
        }
    }

    /// Reads an `f64` by exact bit pattern.
    pub fn f64_bits(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a u64 length that must describe at most the remaining bytes
    /// (guards `Vec` preallocation against hostile lengths). `width` is
    /// the minimum encoded size of one element.
    pub fn len_prefixed(&mut self, width: usize) -> Result<usize, CodecError> {
        let len = self.u64()?;
        let width = width.max(1) as u64;
        if len > self.remaining() as u64 / width {
            return Err(CodecError::Truncated);
        }
        Ok(len as usize)
    }

    /// Reads a u64-length-prefixed byte run.
    pub fn bytes_prefixed(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.len_prefixed(1)?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str_prefixed(&mut self) -> Result<String, CodecError> {
        let bytes = self.bytes_prefixed()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("non-UTF-8 string"))
    }

    /// Reads one section: verifies the tag, takes the declared payload,
    /// verifies its checksum and returns a reader over the payload alone.
    /// Callers should finish with [`ByteReader::expect_end`] on the
    /// returned reader so overlong sections are rejected too.
    pub fn section(&mut self, expected: [u8; 4]) -> Result<ByteReader<'a>, CodecError> {
        let found: [u8; 4] = self.take(4)?.try_into().expect("length checked");
        if found != expected {
            return Err(CodecError::BadSection { expected, found });
        }
        let len = self.u64()?;
        if len > self.remaining() as u64 {
            return Err(CodecError::Truncated);
        }
        let payload = self.take(len as usize)?;
        let digest = self.u64()?;
        if fnv1a64(payload) != digest {
            return Err(CodecError::BadChecksum { section: expected });
        }
        Ok(ByteReader::new(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.bool(true);
        w.f64_bits(-0.0);
        w.str_prefixed("swallow");
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8(), Ok(7));
        assert_eq!(r.u16(), Ok(0xBEEF));
        assert_eq!(r.u32(), Ok(0xDEAD_BEEF));
        assert_eq!(r.u64(), Ok(u64::MAX - 1));
        assert_eq!(r.bool(), Ok(true));
        assert_eq!(r.f64_bits().map(f64::to_bits), Ok((-0.0f64).to_bits()));
        assert_eq!(r.str_prefixed().as_deref(), Ok("swallow"));
        assert_eq!(r.expect_end(), Ok(()));
    }

    #[test]
    fn truncation_is_rejected_not_panicked() {
        let mut w = ByteWriter::new();
        w.u64(42);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes[..5]);
        assert_eq!(r.u64(), Err(CodecError::Truncated));
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX); // claims far more elements than bytes remain
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.len_prefixed(4), Err(CodecError::Truncated));
    }

    #[test]
    fn sections_frame_and_checksum() {
        let mut w = ByteWriter::new();
        w.begin_section(*b"TEST");
        w.u32(99);
        w.end_section();
        let bytes = w.finish();

        let mut r = ByteReader::new(&bytes);
        let mut body = r.section(*b"TEST").expect("valid section");
        assert_eq!(body.u32(), Ok(99));
        assert_eq!(body.expect_end(), Ok(()));
        assert_eq!(r.expect_end(), Ok(()));

        // Any single corrupted byte is rejected with an error.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let mut r = ByteReader::new(&bad);
            let outcome = r.section(*b"TEST").and_then(|mut b| {
                b.u32()?;
                b.expect_end()?;
                r.expect_end()
            });
            assert!(outcome.is_err(), "corrupt byte {i} slipped through");
        }
    }

    #[test]
    fn wrong_tag_is_rejected() {
        let mut w = ByteWriter::new();
        w.begin_section(*b"AAAA");
        w.end_section();
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.section(*b"BBBB"),
            Err(CodecError::BadSection { .. })
        ));
    }

    #[test]
    fn fnv_distinguishes_single_byte_changes() {
        let a = fnv1a64(b"swallow snapshot");
        let b = fnv1a64(b"swallow snapshos");
        assert_ne!(a, b);
        assert_eq!(fnv1a64(b""), FNV_OFFSET);
    }
}
