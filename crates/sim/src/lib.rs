//! Deterministic discrete-event simulation kernel for the Swallow platform model.
//!
//! This crate is the lowest substrate of the Swallow reproduction. It knows
//! nothing about processors or networks; it provides the vocabulary every
//! other crate speaks:
//!
//! * [`Time`], [`TimeDelta`] — picosecond-resolution simulated time,
//! * [`Frequency`] — clock rates and cycle/time conversion,
//! * [`EventQueue`] — a deterministic time-ordered event queue,
//! * [`DetRng`] — a seedable, reproducible random number generator,
//! * [`codec`] — bounds-checked binary readers/writers ([`ByteWriter`],
//!   [`ByteReader`], [`CodecError`]) underpinning machine snapshots,
//! * [`stats`] — counters, running statistics, histograms and least-squares
//!   fits used by the experiment harnesses,
//! * [`trace`] — typed, zero-cost-when-off trace events ([`TraceEvent`],
//!   [`TraceSink`], [`TraceRing`]) feeding the observability exporters.
//!
//! Determinism is a design requirement, not an accident: the platform being
//! modelled (Swallow, DATE 2016) is a *time-deterministic* real-time system,
//! and the reproduction must be able to assert exact cycle counts in tests.
//! Events scheduled for the same instant are delivered in insertion order.
//!
//! ```
//! use swallow_sim::{EventQueue, Time, TimeDelta};
//!
//! let mut queue = EventQueue::new();
//! queue.push_at(Time::ZERO + TimeDelta::from_ns(5), "later");
//! queue.push_at(Time::ZERO, "now");
//! assert_eq!(queue.pop(), Some((Time::ZERO, "now")));
//! ```

pub mod codec;
pub mod merge;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use codec::{ByteReader, ByteWriter, CodecError};
pub use merge::kway_merge_by;
pub use queue::EventQueue;
pub use rng::DetRng;
pub use stats::LatencySketch;
pub use time::{Frequency, Time, TimeDelta};
pub use trace::{
    NullSink, TraceEvent, TraceLog, TraceRecord, TraceRing, TraceSink, Tracer,
    DEFAULT_TRACE_CAPACITY,
};
