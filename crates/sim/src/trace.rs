//! A lightweight, optional trace facility.
//!
//! Simulation components call [`Tracer::record`] with a category and a lazy
//! message; the default [`Tracer::Off`] discards everything with no
//! allocation, while [`Tracer::Buffer`] keeps the most recent entries for
//! post-mortem inspection in tests and examples.

use crate::time::Time;
use std::fmt;

/// Default capacity for [`TraceBuffer`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// A single trace entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Simulated time at which the event occurred.
    pub at: Time,
    /// Component category, e.g. `"core"`, `"switch"`, `"link"`.
    pub category: &'static str,
    /// Rendered message.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.category, self.message)
    }
}

/// A bounded ring of recent trace entries.
#[derive(Clone, Debug, Default)]
pub struct TraceBuffer {
    entries: Vec<TraceEntry>,
    capacity: usize,
    dropped: u64,
    head: usize,
}

impl TraceBuffer {
    /// Creates a buffer with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Creates a buffer keeping at most `capacity` recent entries.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer {
            entries: Vec::new(),
            capacity: capacity.max(1),
            dropped: 0,
            head: 0,
        }
    }

    fn push(&mut self, entry: TraceEntry) {
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else {
            self.entries[self.head] = entry;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Entries in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        let (wrapped, recent) = self.entries.split_at(self.head);
        recent.iter().chain(wrapped.iter())
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries evicted to honour the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Trace destination selector.
///
/// ```
/// use swallow_sim::{Time, Tracer};
/// let mut tracer = Tracer::buffered();
/// tracer.record(Time::ZERO, "core", || "thread 0 started".into());
/// assert_eq!(tracer.buffer().expect("buffered").len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub enum Tracer {
    /// Discard all trace events (the default; zero cost).
    #[default]
    Off,
    /// Retain recent events in a ring buffer.
    Buffer(TraceBuffer),
}

impl Tracer {
    /// A tracer that retains recent events with the default capacity.
    pub fn buffered() -> Self {
        Tracer::Buffer(TraceBuffer::new())
    }

    /// True when events are being retained.
    pub fn is_enabled(&self) -> bool {
        matches!(self, Tracer::Buffer(_))
    }

    /// Records an event; `message` is only evaluated when tracing is on.
    pub fn record(&mut self, at: Time, category: &'static str, message: impl FnOnce() -> String) {
        if let Tracer::Buffer(buf) = self {
            buf.push(TraceEntry {
                at,
                category,
                message: message(),
            });
        }
    }

    /// Access to the underlying buffer when enabled.
    pub fn buffer(&self) -> Option<&TraceBuffer> {
        match self {
            Tracer::Off => None,
            Tracer::Buffer(buf) => Some(buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_skips_message_construction() {
        let mut tracer = Tracer::Off;
        let mut evaluated = false;
        tracer.record(Time::ZERO, "core", || {
            evaluated = true;
            String::new()
        });
        assert!(!evaluated);
        assert!(tracer.buffer().is_none());
    }

    #[test]
    fn buffer_keeps_chronological_order() {
        let mut tracer = Tracer::buffered();
        for i in 0..5u64 {
            tracer.record(Time::from_ps(i), "t", || format!("e{i}"));
        }
        let msgs: Vec<_> = tracer
            .buffer()
            .expect("buffered")
            .iter()
            .map(|e| e.message.clone())
            .collect();
        assert_eq!(msgs, ["e0", "e1", "e2", "e3", "e4"]);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut buf = TraceBuffer::with_capacity(3);
        for i in 0..5u64 {
            buf.push(TraceEntry {
                at: Time::from_ps(i),
                category: "t",
                message: format!("e{i}"),
            });
        }
        let msgs: Vec<_> = buf.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, ["e2", "e3", "e4"]);
        assert_eq!(buf.dropped(), 2);
    }

    #[test]
    fn entry_display_is_informative() {
        let entry = TraceEntry {
            at: Time::from_ps(2_000),
            category: "link",
            message: "token sent".into(),
        };
        assert_eq!(entry.to_string(), "[2ns] link: token sent");
    }
}
