//! Typed, zero-cost-when-off trace events.
//!
//! The observability substrate of the whole stack: simulation components
//! emit [`TraceEvent`]s — compact, `Copy` descriptions of scheduler,
//! network and power happenings — through a [`TraceSink`]. The default
//! sink ([`Tracer::Off`] / [`NullSink`]) discards events with no
//! allocation and no side effect beyond one branch, so tracing can stay
//! compiled into every hot path; [`Tracer::Ring`] retains the most recent
//! records in a pre-allocated ring buffer for post-mortem export
//! (Chrome `trace_event` JSON, CSV — see the `swallow` crate).
//!
//! Determinism contract: emitting events never changes simulation state,
//! and a ring preserves *insertion* order, so merging the per-component
//! rings of a run in a fixed component order (then stable-sorting by
//! time) yields the same [`TraceLog`] run after run — including under the
//! parallel engine, where each core's ring travels with the core onto its
//! shard thread and per-core insertion order is itself deterministic.

use crate::time::{Time, TimeDelta};
use std::fmt;

/// Default capacity for [`TraceRing`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// One structured trace event. Everything is a small `Copy` payload —
/// no strings, no heap — so recording is a couple of register moves and
/// ring rotation never clones.
///
/// Source identity is carried *in* the event (core/link/slice ids), so a
/// record is self-describing after per-component rings are merged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// A core left the all-idle state: its first thread became ready.
    CoreWake {
        /// Node id of the core.
        core: u16,
    },
    /// A core's last ready thread left the rotation.
    CoreSleep {
        /// Node id of the core.
        core: u16,
    },
    /// A thread entered the issue rotation (became ready).
    ThreadSchedule {
        /// Node id of the core.
        core: u16,
        /// Hardware thread id.
        thread: u8,
        /// Program counter at schedule time.
        pc: u32,
    },
    /// A thread left the issue rotation, retiring the block of
    /// instructions it issued since it was scheduled.
    BlockRetire {
        /// Node id of the core.
        core: u16,
        /// Hardware thread id.
        thread: u8,
        /// Instructions retired in this scheduling block.
        instret: u32,
        /// When the block started (the matching `ThreadSchedule`).
        since: Time,
        /// Why the thread left the rotation (a stable static label:
        /// `"recv"`, `"send"`, `"timer"`, `"done"`, …).
        reason: &'static str,
    },
    /// A core enqueued tokens for the network on a channel end.
    TokenSend {
        /// Node id of the sending core.
        core: u16,
        /// Local channel-end index.
        chanend: u8,
        /// Destination node.
        dest_node: u16,
        /// Destination channel-end index.
        dest_chanend: u8,
        /// Tokens enqueued by the instruction (4 for `out`, 1 for
        /// `outt`/`outct`).
        tokens: u8,
        /// True for a control token.
        ctrl: bool,
    },
    /// A token landed in a core's channel-end input buffer.
    TokenReceive {
        /// Node id of the receiving core.
        core: u16,
        /// Local channel-end index.
        chanend: u8,
        /// True for a control token.
        ctrl: bool,
    },
    /// A token started crossing a network link.
    LinkTransit {
        /// Link id within the fabric.
        link: u32,
        /// Transmitting node.
        from: u16,
        /// Receiving node.
        to: u16,
        /// True for a control token.
        ctrl: bool,
        /// Wire occupancy of the token (the link's token time).
        busy: TimeDelta,
    },
    /// A channel end was allocated (`getr`).
    ChannelOpen {
        /// Node id of the core.
        core: u16,
        /// Local channel-end index.
        chanend: u8,
    },
    /// A channel end was freed (`freer`).
    ChannelClose {
        /// Node id of the core.
        core: u16,
        /// Local channel-end index.
        chanend: u8,
    },
    /// A core's clock changed (per-core DFS/DVFS).
    DvfsChange {
        /// Node id of the core.
        core: u16,
        /// New clock in hertz.
        hz: u64,
    },
    /// The power monitor refreshed one supply-rail measurement.
    SupplySample {
        /// Slice index.
        slice: u16,
        /// Rail index within the slice (0–3 core rails, 4 = I/O).
        rail: u8,
        /// Measured rail load, rounded to microwatts.
        microwatts: u64,
    },
    /// A link changed availability: scheduled hot-unplug/re-plug, or a
    /// retry-streak escalation taking the link down.
    LinkFault {
        /// Raw link index.
        link: u32,
        /// True when the link came (back) up, false when it went down.
        up: bool,
    },
    /// A token launch was detected as corrupt and will be retried; the
    /// wire energy was spent anyway.
    LinkRetry {
        /// Raw link index.
        link: u32,
        /// Consecutive failed attempts on this link (escalates to a
        /// fault when it exceeds the retry bound).
        streak: u32,
    },
    /// A data token was lost on the wire inside a drop window.
    TokenDrop {
        /// Raw link index.
        link: u32,
    },
    /// A core-level fault applied: stall window, kill, or quarantine.
    CoreFault {
        /// Node id of the core.
        core: u16,
        /// What happened: "stall", "kill" or "quarantine".
        kind: &'static str,
    },
    /// A supply brownout started (cores derated through the DVFS model)
    /// or ended (nominal operating points restored).
    Brownout {
        /// True while the brownout holds.
        active: bool,
        /// Derated (or restored) core clock in hertz, core 0's value.
        hz: u64,
    },
    /// The routing tables were recomputed around dead links.
    RouteRecompute {
        /// Directed links excluded from the new tables.
        dead_links: u32,
    },
}

impl TraceEvent {
    /// A short, stable label for the event kind (used by exporters).
    pub const fn kind(self) -> &'static str {
        match self {
            TraceEvent::CoreWake { .. } => "core_wake",
            TraceEvent::CoreSleep { .. } => "core_sleep",
            TraceEvent::ThreadSchedule { .. } => "thread_schedule",
            TraceEvent::BlockRetire { .. } => "block_retire",
            TraceEvent::TokenSend { .. } => "token_send",
            TraceEvent::TokenReceive { .. } => "token_receive",
            TraceEvent::LinkTransit { .. } => "link_transit",
            TraceEvent::ChannelOpen { .. } => "channel_open",
            TraceEvent::ChannelClose { .. } => "channel_close",
            TraceEvent::DvfsChange { .. } => "dvfs_change",
            TraceEvent::SupplySample { .. } => "supply_sample",
            TraceEvent::LinkFault { .. } => "link_fault",
            TraceEvent::LinkRetry { .. } => "link_retry",
            TraceEvent::TokenDrop { .. } => "token_drop",
            TraceEvent::CoreFault { .. } => "core_fault",
            TraceEvent::Brownout { .. } => "brownout",
            TraceEvent::RouteRecompute { .. } => "route_recompute",
        }
    }
}

/// A timestamped [`TraceEvent`]. `Copy`, 32 bytes — ring rotation is a
/// plain overwrite, never a clone of heap data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Simulated time of the event (the emitting component's clock).
    pub at: Time,
    /// What happened.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {:?}", self.at, self.event.kind(), self.event)
    }
}

/// Where trace events go. The contract every implementation must honour:
/// emitting is observationally free — it may not touch simulation state —
/// and when [`TraceSink::is_enabled`] is false, [`TraceSink::emit`] must
/// be a no-op with no allocation.
pub trait TraceSink {
    /// True when emitted events are retained somewhere.
    fn is_enabled(&self) -> bool;
    /// Accepts one event at simulated time `at`.
    fn emit(&mut self, at: Time, event: TraceEvent);
}

/// The always-off sink: discards everything, allocates nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn is_enabled(&self) -> bool {
        false
    }

    #[inline]
    fn emit(&mut self, _at: Time, _event: TraceEvent) {}
}

/// A bounded ring of recent trace records.
///
/// The backing storage is allocated once at construction
/// (`Vec::with_capacity`), so emitting — including eviction once the ring
/// is full — performs no heap allocation.
#[derive(Clone, Debug)]
pub struct TraceRing {
    records: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
    head: usize,
}

impl Default for TraceRing {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRing {
    /// Creates a ring with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Creates a ring keeping at most `capacity` recent records
    /// (minimum 1). All storage is allocated up front.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            records: Vec::with_capacity(capacity),
            capacity,
            dropped: 0,
            head: 0,
        }
    }

    /// Appends a record, evicting the oldest when full.
    #[inline]
    pub fn push(&mut self, record: TraceRecord) {
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.records[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Retained records in insertion order (chronological as long as the
    /// emitter's clock is monotone, which every component's is).
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        let (wrapped, recent) = self.records.split_at(self.head);
        recent.iter().chain(wrapped.iter())
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of records evicted to honour the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Empties the ring, keeping its storage and dropped count.
    pub fn clear(&mut self) {
        self.records.clear();
        self.head = 0;
    }
}

impl TraceSink for TraceRing {
    fn is_enabled(&self) -> bool {
        true
    }

    #[inline]
    fn emit(&mut self, at: Time, event: TraceEvent) {
        self.push(TraceRecord { at, event });
    }
}

/// Trace destination selector owned by each traced component.
///
/// ```
/// use swallow_sim::{Time, TraceEvent, TraceSink, Tracer};
/// let mut tracer = Tracer::buffered();
/// tracer.emit(Time::ZERO, TraceEvent::CoreWake { core: 3 });
/// assert_eq!(tracer.ring().expect("ring").len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub enum Tracer {
    /// Discard all trace events (the default; zero cost).
    #[default]
    Off,
    /// Retain recent events in a pre-allocated ring buffer.
    Ring(TraceRing),
}

impl Tracer {
    /// A tracer retaining recent events with the default capacity.
    pub fn buffered() -> Self {
        Tracer::Ring(TraceRing::new())
    }

    /// A tracer retaining at most `capacity` recent events.
    pub fn ring_with_capacity(capacity: usize) -> Self {
        Tracer::Ring(TraceRing::with_capacity(capacity))
    }

    /// Access to the underlying ring when enabled.
    pub fn ring(&self) -> Option<&TraceRing> {
        match self {
            Tracer::Off => None,
            Tracer::Ring(ring) => Some(ring),
        }
    }
}

impl TraceSink for Tracer {
    #[inline]
    fn is_enabled(&self) -> bool {
        matches!(self, Tracer::Ring(_))
    }

    /// Records an event. With [`Tracer::Off`] this is one branch — no
    /// allocation, no write (the zero-cost-when-off guarantee, pinned by
    /// the `trace_alloc` regression test).
    #[inline]
    fn emit(&mut self, at: Time, event: TraceEvent) {
        if let Tracer::Ring(ring) = self {
            ring.push(TraceRecord { at, event });
        }
    }
}

/// A whole run's merged trace: records from every component ring, merged
/// in a fixed component order and stable-sorted by time (so simultaneous
/// events keep the deterministic component order).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceLog {
    /// All records, ascending by [`TraceRecord::at`].
    pub records: Vec<TraceRecord>,
    /// Total records evicted from component rings before the merge.
    pub dropped: u64,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Appends one component ring (call in a fixed component order).
    pub fn absorb(&mut self, ring: &TraceRing) {
        self.records.extend(ring.iter().copied());
        self.dropped += ring.dropped();
    }

    /// Stable-sorts the merged records by time. Call once after every
    /// component has been absorbed; stability keeps the fixed component
    /// order for simultaneous records, so the result is deterministic.
    pub fn finish(&mut self) {
        self.records.sort_by_key(|r| r.at);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records were captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_retains_nothing() {
        let mut tracer = Tracer::Off;
        tracer.emit(Time::ZERO, TraceEvent::CoreWake { core: 0 });
        assert!(!tracer.is_enabled());
        assert!(tracer.ring().is_none());
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut sink = NullSink;
        assert!(!sink.is_enabled());
        sink.emit(Time::ZERO, TraceEvent::CoreSleep { core: 1 });
    }

    #[test]
    fn ring_keeps_insertion_order() {
        let mut tracer = Tracer::buffered();
        for i in 0..5u64 {
            tracer.emit(
                Time::from_ps(i),
                TraceEvent::ThreadSchedule {
                    core: 0,
                    thread: i as u8,
                    pc: 0,
                },
            );
        }
        let at: Vec<u64> = tracer
            .ring()
            .expect("ring")
            .iter()
            .map(|r| r.at.as_ps())
            .collect();
        assert_eq!(at, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut ring = TraceRing::with_capacity(3);
        for i in 0..5u64 {
            ring.emit(Time::from_ps(i), TraceEvent::CoreWake { core: i as u16 });
        }
        let at: Vec<u64> = ring.iter().map(|r| r.at.as_ps()).collect();
        assert_eq!(at, [2, 3, 4]);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn ring_storage_is_preallocated() {
        let ring = TraceRing::with_capacity(100);
        assert!(ring.records.capacity() >= 100);
        assert!(ring.is_empty());
    }

    #[test]
    fn record_display_is_informative() {
        let record = TraceRecord {
            at: Time::from_ps(2_000),
            event: TraceEvent::TokenReceive {
                core: 4,
                chanend: 2,
                ctrl: false,
            },
        };
        let text = record.to_string();
        assert!(text.contains("2ns"), "{text}");
        assert!(text.contains("token_receive"), "{text}");
    }

    #[test]
    fn log_merges_stably_by_time() {
        let mut a = TraceRing::new();
        a.emit(Time::from_ps(10), TraceEvent::CoreWake { core: 0 });
        a.emit(Time::from_ps(30), TraceEvent::CoreSleep { core: 0 });
        let mut b = TraceRing::new();
        b.emit(Time::from_ps(10), TraceEvent::CoreWake { core: 1 });
        b.emit(Time::from_ps(20), TraceEvent::CoreSleep { core: 1 });
        let mut log = TraceLog::new();
        log.absorb(&a);
        log.absorb(&b);
        log.finish();
        let seq: Vec<(u64, &str)> = log
            .records
            .iter()
            .map(|r| (r.at.as_ps(), r.event.kind()))
            .collect();
        // Simultaneous records keep absorb order: core 0 before core 1.
        assert_eq!(
            seq,
            [
                (10, "core_wake"),
                (10, "core_wake"),
                (20, "core_sleep"),
                (30, "core_sleep"),
            ]
        );
        assert_eq!(log.records[0].event, TraceEvent::CoreWake { core: 0 });
        assert_eq!(log.len(), 4);
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn every_event_kind_has_a_label() {
        let events = [
            TraceEvent::CoreWake { core: 0 },
            TraceEvent::CoreSleep { core: 0 },
            TraceEvent::ThreadSchedule {
                core: 0,
                thread: 0,
                pc: 0,
            },
            TraceEvent::BlockRetire {
                core: 0,
                thread: 0,
                instret: 0,
                since: Time::ZERO,
                reason: "recv",
            },
            TraceEvent::TokenSend {
                core: 0,
                chanend: 0,
                dest_node: 1,
                dest_chanend: 0,
                tokens: 4,
                ctrl: false,
            },
            TraceEvent::TokenReceive {
                core: 0,
                chanend: 0,
                ctrl: false,
            },
            TraceEvent::LinkTransit {
                link: 0,
                from: 0,
                to: 1,
                ctrl: false,
                busy: TimeDelta::from_ns(32),
            },
            TraceEvent::ChannelOpen {
                core: 0,
                chanend: 0,
            },
            TraceEvent::ChannelClose {
                core: 0,
                chanend: 0,
            },
            TraceEvent::DvfsChange { core: 0, hz: 500 },
            TraceEvent::SupplySample {
                slice: 0,
                rail: 0,
                microwatts: 0,
            },
            TraceEvent::LinkFault { link: 0, up: false },
            TraceEvent::LinkRetry { link: 0, streak: 1 },
            TraceEvent::TokenDrop { link: 0 },
            TraceEvent::CoreFault {
                core: 0,
                kind: "stall",
            },
            TraceEvent::Brownout {
                active: true,
                hz: 250_000_000,
            },
            TraceEvent::RouteRecompute { dead_links: 1 },
        ];
        let mut labels: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), events.len(), "kind labels must be distinct");
    }
}
