//! Counters, running statistics, histograms and least-squares fits.
//!
//! The experiment harnesses (crate `swallow-bench`) lean on these: Fig. 3 of
//! the paper reports a *linear fit* of power against frequency
//! (`Pc = 46 + 0.30 f` mW), which [`LinearFit`] recovers from simulated
//! sweep points; latency distributions use [`Histogram`].

use std::fmt;

/// A saturating event counter.
///
/// ```
/// use swallow_sim::stats::Counter;
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Current count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Welford's online mean/variance accumulator.
///
/// ```
/// use swallow_sim::stats::MeanVar;
/// let mut m = MeanVar::new();
/// for x in [2.0, 4.0, 6.0] { m.push(x); }
/// assert_eq!(m.mean(), 4.0);
/// assert_eq!(m.sample_variance(), 4.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MeanVar {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl MeanVar {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        MeanVar {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (zero when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (zero for fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// A power-of-two bucketed histogram for latency-style distributions.
///
/// Bucket `i` counts values in `[2^i, 2^(i+1))`, with bucket 0 also
/// holding zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records a value.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Lower bound of the smallest value `>=` the requested quantile
    /// (`q` in `[0, 1]`), or `None` when empty.
    pub fn quantile_lower_bound(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = ((self.total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if i == 0 { 0 } else { 1u64 << i });
            }
        }
        Some(1u64 << (self.buckets.len() - 1))
    }

    /// Iterates `(bucket_lower_bound, count)` for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }
}

/// Ordinary least-squares fit of `y = intercept + slope * x`.
///
/// The paper's Eq. 1 (`Pc = 46 + 0.30 f` mW) is exactly such a fit over the
/// Fig. 3 frequency sweep.
///
/// ```
/// use swallow_sim::stats::LinearFit;
/// let mut fit = LinearFit::new();
/// for x in 0..10 {
///     fit.push(x as f64, 46.0 + 0.30 * x as f64);
/// }
/// let (a, b) = fit.solve().expect("enough points");
/// assert!((a - 46.0).abs() < 1e-9);
/// assert!((b - 0.30).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinearFit {
    n: f64,
    sx: f64,
    sy: f64,
    sxx: f64,
    sxy: f64,
    syy: f64,
}

impl LinearFit {
    /// Creates an empty fit.
    pub fn new() -> Self {
        LinearFit::default()
    }

    /// Adds a sample point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1.0;
        self.sx += x;
        self.sy += y;
        self.sxx += x * x;
        self.sxy += x * y;
        self.syy += y * y;
    }

    /// Solves for `(intercept, slope)`.
    ///
    /// Returns `None` with fewer than two points or degenerate x values.
    pub fn solve(&self) -> Option<(f64, f64)> {
        if self.n < 2.0 {
            return None;
        }
        let denom = self.n * self.sxx - self.sx * self.sx;
        if denom.abs() < f64::EPSILON * self.sxx.abs().max(1.0) {
            return None;
        }
        let slope = (self.n * self.sxy - self.sx * self.sy) / denom;
        let intercept = (self.sy - slope * self.sx) / self.n;
        Some((intercept, slope))
    }

    /// Coefficient of determination R², or `None` when unsolvable.
    pub fn r_squared(&self) -> Option<f64> {
        let (intercept, slope) = self.solve()?;
        let ss_tot = self.syy - self.sy * self.sy / self.n;
        if ss_tot.abs() < f64::EPSILON {
            return Some(1.0);
        }
        // SS_res = Σ(y - a - b x)² expanded in terms of accumulated moments.
        let ss_res = self.syy - 2.0 * intercept * self.sy - 2.0 * slope * self.sxy
            + self.n * intercept * intercept
            + 2.0 * intercept * slope * self.sx
            + slope * slope * self.sxx;
        Some(1.0 - ss_res / ss_tot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        assert_eq!(c.take(), u64::MAX);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn meanvar_tracks_extremes() {
        let mut m = MeanVar::new();
        for x in [5.0, -3.0, 7.5] {
            m.push(x);
        }
        assert_eq!(m.min(), -3.0);
        assert_eq!(m.max(), 7.5);
        assert_eq!(m.count(), 3);
        assert!((m.mean() - 3.1666666).abs() < 1e-6);
    }

    #[test]
    fn meanvar_empty_is_safe() {
        let m = MeanVar::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.sample_variance(), 0.0);
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets, vec![(0, 2), (2, 2), (1024, 1)]);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile_lower_bound(0.0), Some(0));
        let p99 = h.quantile_lower_bound(0.99).expect("non-empty");
        assert!(p99 >= 64);
        assert_eq!(Histogram::new().quantile_lower_bound(0.5), None);
    }

    #[test]
    fn linear_fit_recovers_eq1() {
        let mut fit = LinearFit::new();
        for mhz in [71.0, 100.0, 200.0, 300.0, 400.0, 500.0] {
            fit.push(mhz, 46.0 + 0.30 * mhz);
        }
        let (a, b) = fit.solve().expect("solvable");
        assert!((a - 46.0).abs() < 1e-9);
        assert!((b - 0.30).abs() < 1e-9);
        assert!((fit.r_squared().expect("solvable") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_cases() {
        let mut fit = LinearFit::new();
        assert_eq!(fit.solve(), None);
        fit.push(1.0, 1.0);
        assert_eq!(fit.solve(), None);
        fit.push(1.0, 2.0); // same x twice: vertical line
        assert_eq!(fit.solve(), None);
    }

    #[test]
    fn linear_fit_r_squared_for_noisy_data() {
        let mut fit = LinearFit::new();
        for i in 0..50 {
            let x = i as f64;
            let noise = if i % 2 == 0 { 0.5 } else { -0.5 };
            fit.push(x, 10.0 + 2.0 * x + noise);
        }
        let r2 = fit.r_squared().expect("solvable");
        assert!(r2 > 0.99 && r2 <= 1.0);
    }
}
