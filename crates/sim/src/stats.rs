//! Counters, running statistics, histograms and least-squares fits.
//!
//! The experiment harnesses (crate `swallow-bench`) lean on these: Fig. 3 of
//! the paper reports a *linear fit* of power against frequency
//! (`Pc = 46 + 0.30 f` mW), which [`LinearFit`] recovers from simulated
//! sweep points; latency distributions use [`Histogram`].

use std::fmt;

/// A saturating event counter.
///
/// ```
/// use swallow_sim::stats::Counter;
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Current count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Welford's online mean/variance accumulator.
///
/// ```
/// use swallow_sim::stats::MeanVar;
/// let mut m = MeanVar::new();
/// for x in [2.0, 4.0, 6.0] { m.push(x); }
/// assert_eq!(m.mean(), 4.0);
/// assert_eq!(m.sample_variance(), 4.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MeanVar {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl MeanVar {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        MeanVar {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (zero when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (zero for fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// A power-of-two bucketed histogram for latency-style distributions.
///
/// Bucket `i` counts values in `[2^i, 2^(i+1))`, with bucket 0 also
/// holding zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records a value.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Lower bound of the smallest value `>=` the requested quantile
    /// (`q` in `[0, 1]`), or `None` when empty.
    pub fn quantile_lower_bound(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = ((self.total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if i == 0 { 0 } else { 1u64 << i });
            }
        }
        Some(1u64 << (self.buckets.len() - 1))
    }

    /// Iterates `(bucket_lower_bound, count)` for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }
}

/// A streaming quantile accumulator for latency-style `u64` values
/// (sub-bucketed base-2 histogram, ≤ 1/32 relative error).
///
/// [`Histogram`]'s power-of-two buckets are too coarse for tail-latency
/// reporting (p99 would snap to the nearest octave). This sketch keeps
/// 32 linear sub-buckets per octave — values below 64 are exact — so any
/// quantile is recovered within 3.2 % from O(1) memory per recorded
/// magnitude, deterministically: the same inserts produce bit-identical
/// state and quantiles regardless of order, and two sketches merge into
/// exactly the sketch of the concatenated stream. The fleet layer leans
/// on both properties for reproducible `BENCH_fleet.json` rows.
///
/// ```
/// use swallow_sim::stats::LatencySketch;
/// let mut s = LatencySketch::new();
/// for v in 1..=1000u64 { s.record(v); }
/// let p50 = s.quantile(0.50).expect("non-empty");
/// assert!(p50 <= 500 && 500 - p50 <= 500 / 32);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencySketch {
    buckets: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

/// Sub-bucket resolution: 2^5 linear steps per octave.
const SKETCH_SUB_BITS: u32 = 5;
/// Values below this are bucketed exactly (one bucket per value).
const SKETCH_EXACT: u64 = 1 << (SKETCH_SUB_BITS + 1);

impl LatencySketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        LatencySketch {
            buckets: Vec::new(),
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value < SKETCH_EXACT {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros() as u64;
        let sub = (value >> (octave - SKETCH_SUB_BITS as u64)) & ((1 << SKETCH_SUB_BITS) - 1);
        (SKETCH_EXACT + (octave - SKETCH_SUB_BITS as u64 - 1) * (1 << SKETCH_SUB_BITS) + sub)
            as usize
    }

    fn lower_bound_of(bucket: usize) -> u64 {
        if bucket < SKETCH_EXACT as usize {
            return bucket as u64;
        }
        let rel = bucket as u64 - SKETCH_EXACT;
        let octave = rel / (1 << SKETCH_SUB_BITS) + SKETCH_SUB_BITS as u64 + 1;
        let sub = rel % (1 << SKETCH_SUB_BITS);
        (1 << octave) + sub * (1 << (octave - SKETCH_SUB_BITS as u64))
    }

    /// Records a value.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_of(value);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Arithmetic mean (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The quantile's bucket lower bound (`q` in `[0, 1]`), or `None`
    /// when empty: at most 1/32 below the exact order statistic, never
    /// above it.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = ((self.total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::lower_bound_of(i));
            }
        }
        Some(Self::lower_bound_of(self.buckets.len() - 1))
    }

    /// Folds another sketch in; the result equals the sketch of both
    /// input streams concatenated.
    pub fn merge(&mut self, other: &LatencySketch) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, &src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }
}

/// Ordinary least-squares fit of `y = intercept + slope * x`.
///
/// The paper's Eq. 1 (`Pc = 46 + 0.30 f` mW) is exactly such a fit over the
/// Fig. 3 frequency sweep.
///
/// ```
/// use swallow_sim::stats::LinearFit;
/// let mut fit = LinearFit::new();
/// for x in 0..10 {
///     fit.push(x as f64, 46.0 + 0.30 * x as f64);
/// }
/// let (a, b) = fit.solve().expect("enough points");
/// assert!((a - 46.0).abs() < 1e-9);
/// assert!((b - 0.30).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinearFit {
    n: f64,
    sx: f64,
    sy: f64,
    sxx: f64,
    sxy: f64,
    syy: f64,
}

impl LinearFit {
    /// Creates an empty fit.
    pub fn new() -> Self {
        LinearFit::default()
    }

    /// Adds a sample point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1.0;
        self.sx += x;
        self.sy += y;
        self.sxx += x * x;
        self.sxy += x * y;
        self.syy += y * y;
    }

    /// Solves for `(intercept, slope)`.
    ///
    /// Returns `None` with fewer than two points or degenerate x values.
    pub fn solve(&self) -> Option<(f64, f64)> {
        if self.n < 2.0 {
            return None;
        }
        let denom = self.n * self.sxx - self.sx * self.sx;
        if denom.abs() < f64::EPSILON * self.sxx.abs().max(1.0) {
            return None;
        }
        let slope = (self.n * self.sxy - self.sx * self.sy) / denom;
        let intercept = (self.sy - slope * self.sx) / self.n;
        Some((intercept, slope))
    }

    /// Coefficient of determination R², or `None` when unsolvable.
    pub fn r_squared(&self) -> Option<f64> {
        let (intercept, slope) = self.solve()?;
        let ss_tot = self.syy - self.sy * self.sy / self.n;
        if ss_tot.abs() < f64::EPSILON {
            return Some(1.0);
        }
        // SS_res = Σ(y - a - b x)² expanded in terms of accumulated moments.
        let ss_res = self.syy - 2.0 * intercept * self.sy - 2.0 * slope * self.sxy
            + self.n * intercept * intercept
            + 2.0 * intercept * slope * self.sx
            + slope * slope * self.sxx;
        Some(1.0 - ss_res / ss_tot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        assert_eq!(c.take(), u64::MAX);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn meanvar_tracks_extremes() {
        let mut m = MeanVar::new();
        for x in [5.0, -3.0, 7.5] {
            m.push(x);
        }
        assert_eq!(m.min(), -3.0);
        assert_eq!(m.max(), 7.5);
        assert_eq!(m.count(), 3);
        assert!((m.mean() - 3.1666666).abs() < 1e-6);
    }

    #[test]
    fn meanvar_empty_is_safe() {
        let m = MeanVar::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.sample_variance(), 0.0);
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets, vec![(0, 2), (2, 2), (1024, 1)]);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile_lower_bound(0.0), Some(0));
        let p99 = h.quantile_lower_bound(0.99).expect("non-empty");
        assert!(p99 >= 64);
        assert_eq!(Histogram::new().quantile_lower_bound(0.5), None);
    }

    #[test]
    fn sketch_is_exact_below_64() {
        let mut s = LatencySketch::new();
        for v in 0..64u64 {
            s.record(v);
        }
        assert_eq!(s.count(), 64);
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.max(), Some(63));
        for v in 0..64u64 {
            let q = (v + 1) as f64 / 64.0;
            assert_eq!(s.quantile(q), Some(v));
        }
    }

    #[test]
    fn sketch_bounds_relative_error() {
        let mut s = LatencySketch::new();
        let mut values: Vec<u64> = (0..2000u64).map(|i| i * i * 31 + 7).collect();
        for &v in &values {
            s.record(v);
        }
        values.sort_unstable();
        for q in [0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0] {
            let rank = ((values.len() as f64 * q).ceil().max(1.0) as usize).min(values.len());
            let exact = values[rank - 1];
            let est = s.quantile(q).expect("non-empty");
            assert!(est <= exact, "q={q}: est {est} > exact {exact}");
            assert!(
                exact - est <= est / 32,
                "q={q}: exact {exact} vs est {est} off by more than 1/32"
            );
        }
    }

    #[test]
    fn sketch_merge_equals_concatenation() {
        let (mut a, mut b, mut both) = (
            LatencySketch::new(),
            LatencySketch::new(),
            LatencySketch::new(),
        );
        for i in 0..500u64 {
            let v = i.wrapping_mul(0x9e37_79b9) >> 12;
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.mean(), both.mean());
    }

    #[test]
    fn sketch_empty_is_safe() {
        let s = LatencySketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn sketch_handles_huge_values() {
        let mut s = LatencySketch::new();
        s.record(u64::MAX);
        s.record(1 << 62);
        let est = s.quantile(1.0).expect("non-empty");
        assert!(u64::MAX - est <= est / 32);
    }

    #[test]
    fn linear_fit_recovers_eq1() {
        let mut fit = LinearFit::new();
        for mhz in [71.0, 100.0, 200.0, 300.0, 400.0, 500.0] {
            fit.push(mhz, 46.0 + 0.30 * mhz);
        }
        let (a, b) = fit.solve().expect("solvable");
        assert!((a - 46.0).abs() < 1e-9);
        assert!((b - 0.30).abs() < 1e-9);
        assert!((fit.r_squared().expect("solvable") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_cases() {
        let mut fit = LinearFit::new();
        assert_eq!(fit.solve(), None);
        fit.push(1.0, 1.0);
        assert_eq!(fit.solve(), None);
        fit.push(1.0, 2.0); // same x twice: vertical line
        assert_eq!(fit.solve(), None);
    }

    #[test]
    fn linear_fit_r_squared_for_noisy_data() {
        let mut fit = LinearFit::new();
        for i in 0..50 {
            let x = i as f64;
            let noise = if i % 2 == 0 { 0.5 } else { -0.5 };
            fit.push(x, 10.0 + 2.0 * x + noise);
        }
        let r2 = fit.r_squared().expect("solvable");
        assert!(r2 > 0.99 && r2 <= 1.0);
    }
}
