//! A small, seedable, reproducible random number generator.
//!
//! The simulator must replay identically given the same seed, across
//! platforms and crate versions, so we implement xoshiro256** directly
//! rather than depending on an external generator whose stream might change.
//! Randomness is only used by workload generators (traffic patterns, payload
//! contents); the platform model itself is fully deterministic.

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
///
/// ```
/// use swallow_sim::DetRng;
/// let mut a = DetRng::seed_from(7);
/// let mut b = DetRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetRng {
    state: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed, expanded via splitmix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        DetRng { state }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, bound)` using Lemire's rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Widening-multiply rejection sampling; unbiased.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(0xDEAD_BEEF);
        let mut b = DetRng::seed_from(0xDEAD_BEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::seed_from(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = DetRng::seed_from(4);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[rng.below(8) as usize] += 1;
        }
        let expected = n / 8;
        for &b in &buckets {
            // Loose 5% tolerance; this is a smoke test, not a statistics suite.
            assert!((b as i64 - expected as i64).unsigned_abs() < expected as u64 / 20);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = DetRng::seed_from(5);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from(6);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = DetRng::seed_from(7);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn below_zero_bound_panics() {
        DetRng::seed_from(8).below(0);
    }
}
