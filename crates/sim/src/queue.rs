//! A deterministic, time-ordered event queue.
//!
//! Ties (events scheduled for the same instant) are broken by insertion
//! order, so a simulation that schedules the same events in the same order
//! always replays identically — a prerequisite for the cycle-exact
//! assertions made throughout the test suite.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of `(Time, E)` pairs with FIFO tie-breaking.
///
/// ```
/// use swallow_sim::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.push_at(Time::from_ps(10), 'b');
/// q.push_at(Time::from_ps(10), 'c');
/// q.push_at(Time::from_ps(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Time,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`Time::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
        }
    }

    /// The time of the most recently popped event (the simulation "now").
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `event` for instant `at`.
    ///
    /// Scheduling in the past is permitted but the event is delivered at
    /// the current time, never before it; this mirrors hardware where a
    /// stimulus raised "now" is observed on the next delta.
    pub fn push_at(&mut self, at: Time, event: E) {
        let at = at.max(self.now);
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|entry| {
            self.now = entry.at;
            (entry.at, entry.event)
        })
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|entry| entry.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events without advancing time.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeDelta;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push_at(Time::from_ps(30), 3);
        q.push_at(Time::from_ps(10), 1);
        q.push_at(Time::from_ps(20), 2);
        assert_eq!(q.pop(), Some((Time::from_ps(10), 1)));
        assert_eq!(q.pop(), Some((Time::from_ps(20), 2)));
        assert_eq!(q.pop(), Some((Time::from_ps(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_keep_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push_at(Time::from_ps(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().expect("event").1, i);
        }
    }

    #[test]
    fn now_tracks_popped_time() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Time::ZERO);
        q.push_at(Time::from_ps(7), ());
        q.pop();
        assert_eq!(q.now(), Time::from_ps(7));
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        let mut q = EventQueue::new();
        q.push_at(Time::from_ps(100), "first");
        q.pop();
        q.push_at(Time::from_ps(10), "late");
        assert_eq!(q.pop(), Some((Time::from_ps(100), "late")));
    }

    #[test]
    fn interleaved_push_pop_is_stable() {
        let mut q = EventQueue::new();
        let t = Time::ZERO + TimeDelta::from_ns(1);
        q.push_at(t, "a");
        q.push_at(t, "b");
        assert_eq!(q.pop().expect("a").1, "a");
        q.push_at(t, "c");
        assert_eq!(q.pop().expect("b").1, "b");
        assert_eq!(q.pop().expect("c").1, "c");
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push_at(Time::from_ps(1), ());
        q.push_at(Time::from_ps(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
