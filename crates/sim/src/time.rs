//! Picosecond-resolution simulated time and clock frequencies.
//!
//! A `u64` of picoseconds covers roughly 213 simulated days, far beyond any
//! experiment in this repository (most run for micro- to milliseconds of
//! simulated time). Arithmetic is checked in debug builds via the standard
//! integer overflow rules.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds in one nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds in one microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds in one millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds in one second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

/// An absolute instant of simulated time, in picoseconds since boot.
///
/// ```
/// use swallow_sim::{Time, TimeDelta};
/// let t = Time::ZERO + TimeDelta::from_ns(3);
/// assert_eq!(t.as_ps(), 3_000);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(u64);

impl Time {
    /// The boot instant.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Returns the raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the instant as (fractional) seconds, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Elapsed time since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: Time) -> TimeDelta {
        TimeDelta(self.0 - earlier.0)
    }

    /// Saturating elapsed time since `earlier` (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: Time) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// First instant of the form `anchor + k·period` (integer `k ≥ 0`) at
    /// or after `self`. Both simulation engines process work only on a
    /// clock grid; this is the shared epoch/grid-alignment primitive.
    ///
    /// ```
    /// use swallow_sim::{Time, TimeDelta};
    /// let anchor = Time::from_ps(10);
    /// let period = TimeDelta::from_ps(4);
    /// assert_eq!(Time::from_ps(11).align_up_to(anchor, period).as_ps(), 14);
    /// assert_eq!(Time::from_ps(14).align_up_to(anchor, period).as_ps(), 14);
    /// assert_eq!(Time::from_ps(3).align_up_to(anchor, period).as_ps(), 10);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `period` is zero.
    pub fn align_up_to(self, anchor: Time, period: TimeDelta) -> Time {
        debug_assert!(period.0 > 0, "grid period must be non-zero");
        if self.0 <= anchor.0 {
            return anchor;
        }
        let span = self.0 - anchor.0;
        Time(anchor.0 + span.div_ceil(period.0) * period.0)
    }

    /// Last instant of the form `anchor + k·period` (integer `k ≥ 0`) at
    /// or before `self`; `anchor` itself when `self` precedes it. The
    /// conservative-epoch engine uses this to cap an epoch strictly below
    /// a lookahead horizon without leaving the clock grid.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `period` is zero.
    pub fn align_down_to(self, anchor: Time, period: TimeDelta) -> Time {
        debug_assert!(period.0 > 0, "grid period must be non-zero");
        if self.0 <= anchor.0 {
            return anchor;
        }
        let span = self.0 - anchor.0;
        Time(anchor.0 + (span / period.0) * period.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", TimeDelta(self.0))
    }
}

/// A span of simulated time, in picoseconds.
///
/// ```
/// use swallow_sim::TimeDelta;
/// assert_eq!(TimeDelta::from_us(1), TimeDelta::from_ns(1000));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimeDelta(u64);

impl TimeDelta {
    /// A zero-length span.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Creates a span from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        TimeDelta(ps)
    }

    /// Creates a span from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        TimeDelta(ns * PS_PER_NS)
    }

    /// Creates a span from microseconds.
    pub const fn from_us(us: u64) -> Self {
        TimeDelta(us * PS_PER_US)
    }

    /// Creates a span from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        TimeDelta(ms * PS_PER_MS)
    }

    /// Creates a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        TimeDelta(s * PS_PER_S)
    }

    /// Returns the raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the span in nanoseconds, rounding to nearest.
    pub const fn as_ns_rounded(self) -> u64 {
        (self.0 + PS_PER_NS / 2) / PS_PER_NS
    }

    /// Returns the span as (fractional) seconds, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// True for a zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by an integer count, saturating on overflow.
    pub const fn saturating_mul(self, count: u64) -> TimeDelta {
        TimeDelta(self.0.saturating_mul(count))
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps.is_multiple_of(PS_PER_S) {
            write!(f, "{}s", ps / PS_PER_S)
        } else if ps.is_multiple_of(PS_PER_MS) {
            write!(f, "{}ms", ps / PS_PER_MS)
        } else if ps.is_multiple_of(PS_PER_US) {
            write!(f, "{}us", ps / PS_PER_US)
        } else if ps.is_multiple_of(PS_PER_NS) {
            write!(f, "{}ns", ps / PS_PER_NS)
        } else {
            write!(f, "{}ps", ps)
        }
    }
}

impl Add<TimeDelta> for Time {
    type Output = Time;
    fn add(self, rhs: TimeDelta) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for Time {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeDelta> for Time {
    type Output = Time;
    fn sub(self, rhs: TimeDelta) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = TimeDelta;
    fn sub(self, rhs: Time) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl AddAssign for TimeDelta {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl SubAssign for TimeDelta {
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for TimeDelta {
    type Output = TimeDelta;
    fn mul(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0 * rhs)
    }
}

impl Div<u64> for TimeDelta {
    type Output = TimeDelta;
    fn div(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0 / rhs)
    }
}

impl Sum for TimeDelta {
    fn sum<I: Iterator<Item = TimeDelta>>(iter: I) -> TimeDelta {
        iter.fold(TimeDelta::ZERO, |a, b| a + b)
    }
}

/// A clock frequency in hertz.
///
/// Swallow cores run between 71 MHz and 500 MHz; link clocks are derived
/// from the same reference. The period is rounded to the nearest picosecond,
/// which is exact for every frequency used in this repository except the
/// 71 MHz DVFS floor (error < 0.004 %).
///
/// ```
/// use swallow_sim::{Frequency, TimeDelta};
/// let f = Frequency::from_mhz(500);
/// assert_eq!(f.period(), TimeDelta::from_ps(2_000));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frequency(u64);

impl Frequency {
    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero: a stopped clock has no period.
    pub fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be non-zero");
        Frequency(hz)
    }

    /// Creates a frequency from kilohertz.
    pub fn from_khz(khz: u64) -> Self {
        Self::from_hz(khz * 1_000)
    }

    /// Creates a frequency from megahertz.
    pub fn from_mhz(mhz: u64) -> Self {
        Self::from_hz(mhz * 1_000_000)
    }

    /// Returns the frequency in hertz.
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// Returns the frequency in (fractional) megahertz.
    pub fn as_mhz_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the clock period, rounded to the nearest picosecond.
    pub fn period(self) -> TimeDelta {
        TimeDelta((PS_PER_S + self.0 / 2) / self.0)
    }

    /// Time taken by `cycles` clock cycles.
    pub fn cycles(self, cycles: u64) -> TimeDelta {
        TimeDelta(self.period().as_ps() * cycles)
    }

    /// Number of whole cycles that fit into `delta`.
    pub fn cycles_in(self, delta: TimeDelta) -> u64 {
        delta
            .as_ps()
            .checked_div(self.period().as_ps())
            .unwrap_or(0)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1_000_000) {
            write!(f, "{}MHz", self.0 / 1_000_000)
        } else if self.0.is_multiple_of(1_000) {
            write!(f, "{}kHz", self.0 / 1_000)
        } else {
            write!(f, "{}Hz", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = Time::ZERO + TimeDelta::from_ns(100);
        assert_eq!(t - Time::ZERO, TimeDelta::from_ns(100));
        assert_eq!((t - TimeDelta::from_ns(40)).as_ps(), 60_000);
        assert_eq!(t.since(Time::from_ps(50_000)), TimeDelta::from_ps(50_000));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = Time::from_ps(10);
        let late = Time::from_ps(20);
        assert_eq!(early.saturating_since(late), TimeDelta::ZERO);
        assert_eq!(late.saturating_since(early), TimeDelta::from_ps(10));
    }

    #[test]
    fn delta_display_picks_natural_unit() {
        assert_eq!(TimeDelta::from_ns(5).to_string(), "5ns");
        assert_eq!(TimeDelta::from_us(3).to_string(), "3us");
        assert_eq!(TimeDelta::from_ms(7).to_string(), "7ms");
        assert_eq!(TimeDelta::from_ps(1_500).to_string(), "1500ps");
        assert_eq!(TimeDelta::ZERO.to_string(), "0s");
        assert_eq!(TimeDelta::from_secs(2).to_string(), "2s");
    }

    #[test]
    fn frequency_periods_match_swallow_clocks() {
        assert_eq!(Frequency::from_mhz(500).period(), TimeDelta::from_ps(2_000));
        assert_eq!(Frequency::from_mhz(400).period(), TimeDelta::from_ps(2_500));
        assert_eq!(Frequency::from_mhz(250).period(), TimeDelta::from_ps(4_000));
        assert_eq!(
            Frequency::from_mhz(100).period(),
            TimeDelta::from_ps(10_000)
        );
        // 71 MHz does not divide 1e12 exactly; the period rounds to nearest.
        assert_eq!(Frequency::from_mhz(71).period(), TimeDelta::from_ps(14_085));
    }

    #[test]
    fn cycle_conversions_are_consistent() {
        let f = Frequency::from_mhz(500);
        let span = f.cycles(45);
        assert_eq!(span, TimeDelta::from_ns(90));
        assert_eq!(f.cycles_in(span), 45);
        assert_eq!(f.cycles_in(span - TimeDelta::from_ps(1)), 44);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_rejected() {
        let _ = Frequency::from_hz(0);
    }

    #[test]
    fn delta_sum_and_scaling() {
        let total: TimeDelta = (1..=4).map(TimeDelta::from_ns).sum();
        assert_eq!(total, TimeDelta::from_ns(10));
        assert_eq!(TimeDelta::from_ns(10) * 3, TimeDelta::from_ns(30));
        assert_eq!(TimeDelta::from_ns(10) / 4, TimeDelta::from_ps(2_500));
    }

    #[test]
    fn grid_alignment_round_trips() {
        let anchor = Time::from_ps(100);
        let period = TimeDelta::from_ps(7);
        for raw in 0..260 {
            let t = Time::from_ps(raw);
            let up = t.align_up_to(anchor, period);
            let down = t.align_down_to(anchor, period);
            assert!(up >= t.max(anchor));
            assert!(down <= t.max(anchor) && down >= anchor);
            assert_eq!((up.as_ps() - anchor.as_ps()) % 7, 0);
            assert_eq!((down.as_ps() - anchor.as_ps()) % 7, 0);
            // Off-grid instants straddle one period; on-grid map to
            // themselves in both directions.
            assert!(up.as_ps() - down.as_ps() <= 7);
            if raw >= 100 && (raw - 100) % 7 == 0 {
                assert_eq!(up, t);
                assert_eq!(down, t);
            }
        }
    }
}
