//! Property tests of the simulation kernel: queue ordering, time
//! arithmetic and statistics invariants under arbitrary inputs.

use swallow_sim::stats::{Histogram, LatencySketch, LinearFit, MeanVar};
use swallow_sim::{kway_merge_by, DetRng, EventQueue, Frequency, Time, TimeDelta};
use swallow_testkit::proptest::prelude::*;

proptest! {
    /// Pops are globally ordered by time, FIFO within a timestamp.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        times in proptest::collection::vec(0u64..50, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.push_at(Time::from_ps(t), seq);
        }
        let mut last: Option<(Time, usize)> = None;
        let mut count = 0;
        while let Some((at, seq)) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(at >= lt);
                if at == lt {
                    prop_assert!(seq > lseq, "FIFO violated at {at}");
                }
            }
            prop_assert_eq!(Time::from_ps(times[seq]).max(Time::ZERO), at);
            last = Some((at, seq));
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Period/cycle conversions are consistent for any frequency.
    #[test]
    fn frequency_cycle_round_trip(mhz in 1u64..2000, cycles in 0u64..100_000) {
        let f = Frequency::from_mhz(mhz);
        let span = f.cycles(cycles);
        prop_assert_eq!(f.cycles_in(span), cycles);
        // One period less always yields one cycle fewer (for cycles > 0).
        if cycles > 0 {
            prop_assert_eq!(f.cycles_in(span - TimeDelta::from_ps(1)), cycles - 1);
        }
    }

    /// Time arithmetic is associative with deltas and never wraps in range.
    #[test]
    fn time_arithmetic(a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
        let t = Time::from_ps(a);
        let d1 = TimeDelta::from_ps(b);
        let d2 = TimeDelta::from_ps(c);
        prop_assert_eq!((t + d1) + d2, t + (d1 + d2));
        prop_assert_eq!((t + d1) - t, d1);
        prop_assert_eq!((t + d1).since(t), d1);
    }

    /// MeanVar matches a direct two-pass computation.
    #[test]
    fn meanvar_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 2..100)) {
        let mut m = MeanVar::new();
        for &x in &xs {
            m.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((m.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((m.sample_variance() - var).abs() < 1e-5 * var.abs().max(1.0));
        prop_assert_eq!(m.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(m.max(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    /// A linear fit recovers exact coefficients from exact data.
    #[test]
    fn linear_fit_recovers_exact_lines(
        intercept in -1e3f64..1e3,
        slope in -1e3f64..1e3,
        n in 3usize..50,
    ) {
        let mut fit = LinearFit::new();
        for i in 0..n {
            let x = i as f64;
            fit.push(x, intercept + slope * x);
        }
        let (a, b) = fit.solve().expect("distinct xs");
        prop_assert!((a - intercept).abs() < 1e-6 * intercept.abs().max(1.0));
        prop_assert!((b - slope).abs() < 1e-6 * slope.abs().max(1.0));
    }

    /// Histogram buckets partition the input: counts sum to n and every
    /// recorded value falls inside its bucket's range.
    #[test]
    fn histogram_partitions(values in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let total: u64 = h.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, values.len() as u64);
    }

    /// The RNG's below() is in range and deterministic per seed.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = DetRng::seed_from(seed);
        let mut b = DetRng::seed_from(seed);
        for _ in 0..50 {
            let x = a.below(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.below(bound));
        }
    }

    /// Every sketch quantile under-estimates the exact order statistic by
    /// at most 1/32 of itself, at any count and value scale.
    #[test]
    fn latency_sketch_quantile_error_bound(
        values in proptest::collection::vec(0u64..u64::MAX / 2, 1..300),
        qs in proptest::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let mut sketch = LatencySketch::new();
        for &v in &values {
            sketch.record(v);
        }
        prop_assert_eq!(sketch.count(), values.len() as u64);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sketch.min(), sorted.first().copied());
        prop_assert_eq!(sketch.max(), sorted.last().copied());
        for &q in &qs {
            let rank = ((sorted.len() as f64 * q).ceil().max(1.0) as usize)
                .min(sorted.len());
            let exact = sorted[rank - 1];
            let est = sketch.quantile(q).expect("non-empty");
            prop_assert!(est <= exact, "q={} est {} > exact {}", q, est, exact);
            prop_assert!(
                exact - est <= est / 32,
                "q={} exact {} est {} outside 1/32", q, exact, est
            );
        }
    }

    /// Merging sketches is exactly equivalent to recording the
    /// concatenated stream, however the values are split.
    #[test]
    fn latency_sketch_merge_is_concatenation(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        split in 0usize..200,
    ) {
        let cut = split.min(values.len());
        let (mut left, mut right, mut whole) = (
            LatencySketch::new(), LatencySketch::new(), LatencySketch::new(),
        );
        for (i, &v) in values.iter().enumerate() {
            if i < cut { left.record(v) } else { right.record(v) }
            whole.record(v);
        }
        left.merge(&right);
        prop_assert_eq!(&left, &whole);
        for q in [0.5, 0.95, 0.99] {
            prop_assert_eq!(left.quantile(q), whole.quantile(q));
        }
    }

    /// k-way merge of sorted shards equals a stable sort of the whole.
    #[test]
    fn kway_merge_matches_stable_sort(
        raw in proptest::collection::vec(
            proptest::collection::vec(0u64..64, 0..40), 0..6),
    ) {
        let streams: Vec<Vec<u64>> = raw
            .into_iter()
            .map(|mut s| { s.sort_unstable(); s })
            .collect();
        let mut tagged: Vec<(u64, usize)> = Vec::new();
        for (i, s) in streams.iter().enumerate() {
            tagged.extend(s.iter().map(|&v| (v, i)));
        }
        tagged.sort_by_key(|&(v, i)| (v, i));
        let merged = kway_merge_by(streams, |&v| v);
        let expect: Vec<u64> = tagged.into_iter().map(|(v, _)| v).collect();
        prop_assert_eq!(merged, expect);
    }
}
