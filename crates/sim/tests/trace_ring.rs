//! Property tests of the trace ring: for any push sequence the ring
//! honours its capacity bound, accounts every eviction in `dropped`, and
//! retains the *most recent* records in insertion order.

use swallow_sim::{Time, TraceEvent, TraceLog, TraceRecord, TraceRing};
use swallow_testkit::proptest::prelude::*;

fn record(i: u64) -> TraceRecord {
    TraceRecord {
        at: Time::from_ps(i),
        event: TraceEvent::ThreadSchedule {
            core: (i % 16) as u16,
            thread: (i % 8) as u8,
            pc: i as u32,
        },
    }
}

proptest! {
    /// Pushes never exceed capacity and every displaced record is counted.
    #[test]
    fn ring_bounds_and_accounts(
        capacity in 1usize..64,
        pushes in 0usize..300,
    ) {
        let mut ring = TraceRing::with_capacity(capacity);
        for i in 0..pushes {
            ring.push(record(i as u64));
            prop_assert!(ring.len() <= capacity);
        }
        prop_assert_eq!(ring.len(), pushes.min(capacity));
        prop_assert_eq!(ring.dropped(), pushes.saturating_sub(capacity) as u64);
        prop_assert_eq!(ring.capacity(), capacity);
    }

    /// The ring keeps exactly the most recent records, in order.
    #[test]
    fn ring_keeps_a_suffix_in_order(
        capacity in 1usize..32,
        times in proptest::collection::vec(0u64..10_000, 0..120),
    ) {
        let mut ring = TraceRing::with_capacity(capacity);
        // Monotone timestamps, as every real emitter's clock is.
        let mut sorted = times.clone();
        sorted.sort_unstable();
        for &t in &sorted {
            ring.push(record(t));
        }
        let kept: Vec<u64> = ring.iter().map(|r| r.at.as_ps()).collect();
        let expected: Vec<u64> = sorted
            .iter()
            .copied()
            .skip(sorted.len().saturating_sub(capacity))
            .collect();
        prop_assert_eq!(kept.clone(), expected);
        // Retained records are chronological.
        prop_assert!(kept.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Merging rings into a log preserves chronology and drop totals
    /// regardless of how records were sharded across rings.
    #[test]
    fn merged_log_is_chronological(
        times_a in proptest::collection::vec(0u64..5_000, 0..80),
        times_b in proptest::collection::vec(0u64..5_000, 0..80),
        capacity in 1usize..48,
    ) {
        let mut a = TraceRing::with_capacity(capacity);
        let mut b = TraceRing::with_capacity(capacity);
        let (mut sa, mut sb) = (times_a.clone(), times_b.clone());
        sa.sort_unstable();
        sb.sort_unstable();
        for &t in &sa {
            a.push(record(t));
        }
        for &t in &sb {
            b.push(record(t));
        }
        let mut log = TraceLog::new();
        log.absorb(&a);
        log.absorb(&b);
        log.finish();
        prop_assert_eq!(log.len(), a.len() + b.len());
        prop_assert_eq!(log.dropped, a.dropped() + b.dropped());
        prop_assert!(log.records.windows(2).all(|w| w[0].at <= w[1].at));
    }

    /// `clear` keeps the drop count (it is a lifetime statistic) and the
    /// ring stays usable.
    #[test]
    fn clear_preserves_lifetime_drops(pushes in 0usize..100) {
        let mut ring = TraceRing::with_capacity(8);
        for i in 0..pushes {
            ring.push(record(i as u64));
        }
        let dropped = ring.dropped();
        ring.clear();
        prop_assert!(ring.is_empty());
        prop_assert_eq!(ring.dropped(), dropped);
        ring.push(record(7));
        prop_assert_eq!(ring.len(), 1);
        prop_assert_eq!(ring.iter().next().map(|r| r.at.as_ps()), Some(7));
    }
}
