//! Regression test for the zero-cost-when-off guarantee: emitting trace
//! events allocates nothing — neither through a disabled tracer (the
//! production default) nor through a ring at capacity (pre-allocated
//! storage, eviction by overwrite).
//!
//! A counting global allocator observes every heap allocation in the
//! process; the file holds exactly one `#[test]` so no concurrent test
//! can perturb the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use swallow_sim::{Time, TraceEvent, TraceSink, Tracer};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn emit_storm(tracer: &mut Tracer, rounds: u64) {
    for i in 0..rounds {
        let at = Time::from_ps(i);
        tracer.emit(at, TraceEvent::CoreWake { core: i as u16 });
        tracer.emit(
            at,
            TraceEvent::ThreadSchedule {
                core: i as u16,
                thread: (i % 8) as u8,
                pc: i as u32,
            },
        );
        tracer.emit(
            at,
            TraceEvent::BlockRetire {
                core: i as u16,
                thread: 0,
                instret: 42,
                since: Time::ZERO,
                reason: "recv",
            },
        );
        tracer.emit(
            at,
            TraceEvent::SupplySample {
                slice: 0,
                rail: (i % 5) as u8,
                microwatts: i,
            },
        );
    }
}

#[test]
fn emitting_never_allocates_on_the_hot_path() {
    // Case 1: the production default — tracing off.
    let mut off = Tracer::Off;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    emit_storm(&mut off, 10_000);
    let with_off = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(with_off, 0, "Tracer::Off must not allocate per event");

    // Case 2: a ring at capacity — eviction is an in-place overwrite.
    let mut ring = Tracer::ring_with_capacity(64);
    emit_storm(&mut ring, 64); // fill to capacity (allocations here are fine)
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    emit_storm(&mut ring, 10_000);
    let with_ring = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        with_ring, 0,
        "a full TraceRing must evict without allocating"
    );
    let ring = ring.ring().expect("ring tracer");
    assert_eq!(ring.len(), 64);
    assert!(ring.dropped() > 0, "eviction path was actually exercised");
}
