//! Sharding and the host thread pool of the parallel engine.
//!
//! The conservative-epoch engine (see `machine.rs` and DESIGN.md §3.8,
//! §3.12) splits the machine's cores into *shards* and advances each
//! shard on a host worker thread. Three pieces live here:
//!
//! * [`ShardPlan`] — the topology→shard mapping. Shards are always
//!   **chip-granular**: the two cores of an XS1-L2A package (nodes `2p`
//!   and `2p+1`) are never split across shards, so a package's internal
//!   links join cores whose epochs are planned together. The
//!   [`ShardPlan::affinity`] constructor additionally deals packages in
//!   *slice-major* order, so each shard's packages sit inside as few
//!   slices as possible and shard boundaries land on the slow
//!   inter-slice FFC cables — which is what makes the pairwise lookahead
//!   matrix sparse and the negotiated horizons long.
//! * [`EpochPool`] — a persistent pool of worker threads. Spawning
//!   threads per epoch would cost more than a short epoch simulates, so
//!   workers park on a condvar between jobs.
//! * The **pairwise watermark negotiation** ([`EpochPool::run_negotiated`])
//!   — the null-message-style protocol that replaced the barrier-per-epoch
//!   global clock. Instead of waking the pool for every 32 ns epoch, the
//!   control thread publishes *one* job covering a whole serial window
//!   (typically the 1 µs power-monitor cadence), and the shards advance
//!   through it in lock-free *rounds*: each round a shard reads the
//!   watermarks its peers published for the previous round, computes its
//!   private horizon `min over peers p of (W_p + L(p, s))` from the
//!   routed pair-latency matrix `L`, runs its own cores one epoch to that
//!   horizon, and publishes its new watermark. Workers stay hot (spin,
//!   then yield) and only park once per window; the condvar is paid once
//!   per window instead of once per epoch.
//!
//! # Why the protocol is deterministic
//!
//! Every cross-thread read is of a *round slot* `(shard, round)` that is
//! written exactly once, so the values a shard consumes are a pure
//! function of the simulation state, never of host timing. A shard's
//! horizon sequence — and therefore where each core's idle-energy spans
//! are chunked — is identical run after run at a given thread count.
//! Emission stops propagate through the same slots: a shard that stops
//! (own emission, or a peer's stop flag) publishes its stop flag into the
//! next round slot, so every waiter observes it at a deterministic round
//! boundary. A peer whose horizon contribution `W_p + L(p, s)` has moved
//! past the window bound can never constrain this shard again (watermarks
//! are monotone), so it is *cleared* and neither read nor waited on — an
//! off-board peer four token-times away clears after a handful of rounds.
//!
//! # Why the protocol is safe
//!
//! A token emitted by shard `p` during round `k` is emitted no earlier
//! than `W_p(k-1)` (the watermark is a lower bound on the shard's next
//! action) and lands in shard `s` no earlier than `W_p(k-1) + L(p, s)`
//! (every routed path costs at least the pair latency). Shard `s` ran
//! round `k` only to `H_s(k) ≤ W_p(k-1) + L(p, s)`, so no core ever runs
//! past an instant at which a token could have reached it. Cleared peers
//! satisfy the same bound with the window end in place of `H_s`.
//!
//! # Observability under sharding
//!
//! Each core owns its `Tracer` (see `swallow_sim::trace`), so a core's
//! trace ring travels with the core onto whatever shard thread runs its
//! epoch — no shared sink, no lock, no cross-thread ordering to get
//! wrong. Per-core insertion order is deterministic because each core's
//! evolution inside an epoch is; `Machine::collect_trace` then merges
//! rings in fixed node order and stable-sorts by time, so the merged log
//! is bit-identical run after run at every thread count (pinned by
//! `tests/differential_trace.rs`).
//!
//! # Safety
//!
//! Each job the control thread publishes a raw pointer to the machine's
//! core array, runs shard 0 itself, and blocks until every worker reports
//! done. Workers index the array only through their own shard's disjoint
//! node runs, so no two threads ever touch the same `Core`, and the
//! control thread touches only shard 0's runs while workers are running.
//! The negotiation additionally shares the pair-latency matrix read-only
//! for the duration of one job. This is the entire unsafe surface of the
//! crate and it is contained in this module.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use swallow_sim::{Time, TimeDelta};
use swallow_xcore::Core;

use crate::topology::GridSpec;

/// Cores per XS1-L2A package; shard boundaries never cut a package.
const CORES_PER_CHIP: usize = 2;

/// Maximum watermark rounds per negotiated window. A busy shard covers a
/// 1 µs monitor window in ~30 rounds (one on-chip token time plus one
/// core period of progress per round is guaranteed); the cap only exists
/// to bound the round-slot arrays and to terminate degenerate windows —
/// an exhausted negotiation commits what it reached and the next advance
/// starts a fresh one, so the cap affects performance, never results.
const MAX_ROUNDS: usize = 1024;

/// The topology→shard mapping: which node-id runs each host worker
/// advances.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Per shard, in shard order: disjoint contiguous `[start, end)`
    /// node-id runs, each chip-aligned, ascending within the shard.
    /// Together the runs of all shards cover `0..cores` exactly once.
    runs: Vec<Vec<(usize, usize)>>,
    /// Node id → owning shard.
    owner: Vec<usize>,
}

impl ShardPlan {
    /// Plans `threads` shards over `cores` cores (chip-granular), dealing
    /// packages in raw index order — each shard is one contiguous range.
    /// The effective shard count is capped at the package count; passing
    /// `threads == 0` asks for one shard per available host CPU.
    pub fn new(cores: usize, threads: usize) -> Self {
        let chips = cores.div_ceil(CORES_PER_CHIP).max(1);
        let order: Vec<usize> = (0..chips).collect();
        Self::from_chip_order(&order, cores, threads)
    }

    /// Plans `threads` shards over `spec`'s cores with communication
    /// affinity: packages are dealt in slice-major order (see
    /// [`GridSpec::packages_slice_major`]), so each shard's packages sit
    /// inside as few slices as possible and the cross-shard boundaries
    /// coincide with the slow inter-slice FFC cables. On a single slice
    /// this degenerates to [`ShardPlan::new`]. The plan is a
    /// deterministic function of `(spec, threads)`.
    pub fn affinity(spec: GridSpec, threads: usize) -> Self {
        let order = spec.packages_slice_major();
        Self::from_chip_order(&order, spec.core_count(), threads)
    }

    /// Deals the packages of `order` to shards in contiguous blocks, as
    /// evenly as possible (first shards one package heavier), then turns
    /// each shard's package set into sorted merged node runs.
    fn from_chip_order(order: &[usize], cores: usize, threads: usize) -> Self {
        let chips = order.len().max(1);
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let shards = threads.min(chips).max(1);
        let per = chips / shards;
        let extra = chips % shards;
        let mut runs = Vec::with_capacity(shards);
        let mut owner = vec![0usize; cores];
        let mut next = 0usize;
        for s in 0..shards {
            let take = per + usize::from(s < extra);
            let mut chip_block: Vec<usize> = order[next..next + take].to_vec();
            next += take;
            chip_block.sort_unstable();
            let mut shard_runs: Vec<(usize, usize)> = Vec::new();
            for chip in chip_block {
                let lo = chip * CORES_PER_CHIP;
                let hi = ((chip + 1) * CORES_PER_CHIP).min(cores);
                if lo >= hi {
                    continue;
                }
                match shard_runs.last_mut() {
                    Some(last) if last.1 == lo => last.1 = hi,
                    _ => shard_runs.push((lo, hi)),
                }
                owner[lo..hi].fill(s);
            }
            runs.push(shard_runs);
        }
        ShardPlan { runs, owner }
    }

    /// Number of shards (== worker threads in the pool).
    pub fn shard_count(&self) -> usize {
        self.runs.len()
    }

    /// The `[start, end)` node-id runs of one shard.
    pub fn runs(&self, shard: usize) -> &[(usize, usize)] {
        &self.runs[shard]
    }

    /// Number of cores in one shard.
    pub fn len(&self, shard: usize) -> usize {
        self.runs[shard].iter().map(|&(lo, hi)| hi - lo).sum()
    }

    /// True when a shard owns no cores (never produced by the planners).
    pub fn is_empty(&self, shard: usize) -> bool {
        self.runs[shard].is_empty()
    }

    /// Which shard a node belongs to. O(1).
    pub fn shard_of(&self, node: usize) -> usize {
        self.owner[node]
    }
}

/// A raw pointer to the core array, made `Send` so a job can cross into
/// the workers. Safety rests on the disjoint-runs protocol documented at
/// module level.
#[derive(Clone, Copy)]
struct CoresPtr(*mut Core);
unsafe impl Send for CoresPtr {}

/// A read-only view of the shard-pair latency matrix for one job (kept
/// alive by the control thread, which blocks until the job completes).
#[derive(Clone, Copy)]
struct LatencyPtr(*const u64);
unsafe impl Send for LatencyPtr {}

/// Inputs of one negotiated window, shared with every shard runner.
#[derive(Clone, Copy)]
struct NegJob {
    /// End of the window (grid-aligned): the instant the control thread
    /// must process serially (power monitor, deadline, pre-fault edge).
    serial_bound_ps: u64,
    /// Machine `now` at job start — the anchor of the base clock grid.
    anchor_ps: u64,
    /// Base clock period (grid pitch).
    period_ps: u64,
    /// `shards × shards` matrix of minimum routed pair latencies, ps.
    latency: LatencyPtr,
    shards: usize,
}

impl NegJob {
    /// Minimum routed latency from any core of shard `p` to any
    /// *distinct* core of shard `s`, in ps (`u64::MAX` when unreachable).
    fn latency_of(&self, p: usize, s: usize) -> u64 {
        debug_assert!(p < self.shards && s < self.shards);
        // SAFETY: the matrix outlives the job (module-level protocol).
        unsafe { *self.latency.0.add(p * self.shards + s) }
    }
}

/// One job's work order.
#[derive(Clone, Copy)]
enum JobKind {
    /// One global conservative epoch to a fixed target (the PR 2
    /// barrier engine, kept as the `SWALLOW_EPOCH_MODE=global` escape
    /// hatch and for differential bisection).
    Epoch(Time),
    /// One pairwise-negotiated window (see module docs).
    Negotiate(NegJob),
}

#[derive(Clone, Copy)]
struct Job {
    cores: CoresPtr,
    len: usize,
    kind: JobKind,
}

struct Ctrl {
    /// Job sequence number; bumped to wake the workers.
    seq: u64,
    /// Workers still running the current job.
    remaining: usize,
    job: Option<Job>,
    /// First worker panic of the job: (shard id, panic payload). The
    /// control thread re-raises it with the shard attached so a
    /// differential failure names the shard that died.
    panicked: Option<(usize, Box<dyn std::any::Any + Send>)>,
    quit: bool,
}

/// Round slot encoding: one `AtomicU64` per `(shard, round)`, written
/// exactly once per job. Zero means "not yet published".
const SLOT_PUBLISHED: u64 = 1 << 63;
/// The publishing shard stopped (own emission, a peer's stop, or round
/// exhaustion): consumers must not run any further round.
const SLOT_STOPPED: u64 = 1 << 62;
/// Watermark payload mask; `u64::MAX` watermarks (halted / unscheduled)
/// saturate here, far beyond any reachable simulated instant.
const SLOT_WATERMARK: u64 = SLOT_STOPPED - 1;

/// The lock-free round board of the negotiation: `(shard, round)` slots
/// plus per-shard results, all preallocated so a window allocates
/// nothing on the workers.
struct Board {
    /// `shards * (MAX_ROUNDS + 1)` slots.
    slots: Vec<AtomicU64>,
    /// Per shard: the last horizon it ran to (ps).
    result_h: Vec<AtomicU64>,
    /// Per shard: the final watermark it published (ps, saturated).
    result_w: Vec<AtomicU64>,
    /// Per shard: `emitted << 63 | highest published round`.
    result_flags: Vec<AtomicU64>,
}

impl Board {
    fn new(shards: usize) -> Self {
        Board {
            slots: (0..shards * (MAX_ROUNDS + 1))
                .map(|_| AtomicU64::new(0))
                .collect(),
            result_h: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            result_w: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            result_flags: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn slot(&self, shard: usize, round: usize) -> &AtomicU64 {
        &self.slots[shard * (MAX_ROUNDS + 1) + round]
    }

    fn publish(&self, shard: usize, round: usize, watermark_ps: u64, stopped: bool) {
        let mut v = SLOT_PUBLISHED | watermark_ps.min(SLOT_WATERMARK);
        if stopped {
            v |= SLOT_STOPPED;
        }
        self.slot(shard, round).store(v, Ordering::Release);
    }

    /// Blocks (spin, then yield) until `(shard, round)` is published and
    /// returns `(watermark_ps, stopped)`. Deterministic: the slot has
    /// exactly one writer and one value, whenever it lands.
    fn wait_slot(&self, shard: usize, round: usize) -> (u64, bool) {
        let slot = self.slot(shard, round);
        let mut spins = 0u32;
        loop {
            let v = slot.load(Ordering::Acquire);
            if v & SLOT_PUBLISHED != 0 {
                return (v & SLOT_WATERMARK, v & SLOT_STOPPED != 0);
            }
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                // Oversubscribed (or single-CPU) hosts must let the peer
                // actually run; a pure spin would deadlock-by-starvation.
                std::thread::yield_now();
            }
        }
    }

    fn set_result(
        &self,
        shard: usize,
        last_h_ps: u64,
        final_w_ps: u64,
        emitted: bool,
        max_round: usize,
    ) {
        self.result_h[shard].store(last_h_ps, Ordering::Release);
        self.result_w[shard].store(final_w_ps, Ordering::Release);
        let flags = ((emitted as u64) << 63) | max_round as u64;
        self.result_flags[shard].store(flags, Ordering::Release);
    }

    /// Clears the slots a finished job used so the next job starts from
    /// an all-unpublished board. Called by the control thread only.
    fn reset(&self, shard: usize, max_round: usize) {
        for round in 0..=max_round.min(MAX_ROUNDS) {
            self.slot(shard, round).store(0, Ordering::Relaxed);
        }
    }
}

struct Shared {
    ctrl: Mutex<Ctrl>,
    start: Condvar,
    done: Condvar,
    board: Board,
}

/// Outcome of one negotiated window.
#[derive(Clone, Copy, Debug)]
pub struct NegotiationOutcome {
    /// The earliest horizon any shard committed to (grid-aligned,
    /// strictly after the window's start): every core has simulated at
    /// least this far, no core has passed an instant a token could have
    /// reached it at, and all pending arrivals lie at or beyond it. The
    /// machine's new safe commit time.
    pub target: Time,
    /// True when some core emitted during the window: the shards stopped
    /// early and the caller must reconcile the emission instants
    /// serially before processing `target`.
    pub emitted: bool,
    /// True when every shard's *final* watermark was saturated: each
    /// core ended the window halted or blocked on external input with no
    /// scheduled wake. With `emitted == false` the machine has gone
    /// quiescent *inside* the window — the caller should commit the last
    /// transition edge (the max of the cores' frozen local clocks), not
    /// `target`, to land on the same quiescence instant as the serial
    /// engines.
    pub drained: bool,
    /// Watermark rounds run, summed over shards (observability).
    pub rounds: u64,
}

/// Parameters of one negotiated window (control-thread side).
pub struct NegotiationParams<'a> {
    /// Grid-aligned end of the window; shards never run past it.
    pub serial_bound: Time,
    /// Machine `now`: the base-clock grid anchor.
    pub anchor: Time,
    /// Base clock period.
    pub period: TimeDelta,
    /// `shards × shards` minimum routed pair latencies in ps, row-major
    /// by source shard (see `Machine::refresh_pair_latency`).
    pub pair_latency_ps: &'a [u64],
}

/// A persistent pool of epoch workers. Shard 0 always runs inline on the
/// control thread — it is idle while the workers run anyway, and on a
/// single shard this makes the engine entirely thread-free — so the pool
/// spawns `shards - 1` workers for shards `1..shards`.
pub struct EpochPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    shards: usize,
    /// Shard 0's runs, run inline.
    inline_runs: Vec<(usize, usize)>,
}

impl EpochPool {
    /// Spawns one worker per shard of `plan` beyond the first.
    pub fn new(plan: &ShardPlan) -> Self {
        let shared = Arc::new(Shared {
            ctrl: Mutex::new(Ctrl {
                seq: 0,
                remaining: 0,
                job: None,
                panicked: None,
                quit: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            board: Board::new(plan.shard_count()),
        });
        let handles = (1..plan.shard_count())
            .map(|s| {
                let shared = Arc::clone(&shared);
                let runs = plan.runs(s).to_vec();
                std::thread::Builder::new()
                    .name(format!("swallow-shard-{s}"))
                    .spawn(move || worker(&shared, s, &runs))
                    .expect("spawn epoch worker")
            })
            .collect();
        EpochPool {
            shared,
            handles,
            shards: plan.shard_count(),
            inline_runs: plan.runs(0).to_vec(),
        }
    }

    /// Publishes a job and wakes the workers. No-op for a single shard.
    fn dispatch(&self, cores: &mut [Core], kind: JobKind) {
        if self.shards == 1 {
            return;
        }
        let mut g = self.shared.ctrl.lock().expect("pool lock");
        g.job = Some(Job {
            cores: CoresPtr(cores.as_mut_ptr()),
            len: cores.len(),
            kind,
        });
        g.remaining = self.shards - 1;
        g.seq += 1;
        drop(g);
        self.shared.start.notify_all();
    }

    /// Blocks until every worker finished the current job, re-raising a
    /// worker panic (with its shard id attached) on the calling thread.
    fn join(&self) {
        if self.shards == 1 {
            return;
        }
        let mut g = self.shared.ctrl.lock().expect("pool lock");
        while g.remaining > 0 {
            g = self.shared.done.wait(g).expect("pool lock");
        }
        g.job = None;
        if let Some((shard, payload)) = g.panicked.take() {
            drop(g);
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned());
            match msg {
                Some(msg) => panic!("shard {shard} worker panicked: {msg}"),
                None => std::panic::resume_unwind(payload),
            }
        }
    }

    /// Advances every core one global epoch, sharded across the workers:
    /// each core runs [`Core::run_epoch`]`(target)` on its shard's thread
    /// (shard 0 on the calling thread). Blocks until all shards report
    /// done. On return every core has either reached `target` or stopped
    /// early with output pending (the caller reconciles those — see
    /// `Machine`).
    ///
    /// # Panics
    ///
    /// Re-raises a worker panic on the calling thread, naming the shard.
    pub fn run_epoch(&self, cores: &mut [Core], target: Time) {
        self.dispatch(cores, JobKind::Epoch(target));
        for &(lo, hi) in &self.inline_runs {
            for core in &mut cores[lo..hi] {
                let _ = core.run_epoch(target);
            }
        }
        self.join();
    }

    /// Runs one pairwise-negotiated window over all shards (see module
    /// docs for the protocol) and reports how far it safely committed.
    /// On return every core has run to its shard's last horizon (all of
    /// them at least to `outcome.target`, which is `serial_bound` itself
    /// when nothing emitted), or stopped at its emission instant with
    /// output pending.
    ///
    /// # Panics
    ///
    /// Re-raises a worker panic on the calling thread, naming the shard.
    /// Panics if the latency matrix does not match the shard count.
    pub fn run_negotiated(
        &self,
        cores: &mut [Core],
        params: &NegotiationParams<'_>,
    ) -> NegotiationOutcome {
        assert_eq!(
            params.pair_latency_ps.len(),
            self.shards * self.shards,
            "pair-latency matrix must be shards x shards"
        );
        let job = NegJob {
            serial_bound_ps: params.serial_bound.as_ps(),
            anchor_ps: params.anchor.as_ps(),
            period_ps: params.period.as_ps(),
            latency: LatencyPtr(params.pair_latency_ps.as_ptr()),
            shards: self.shards,
        };
        self.dispatch(cores, JobKind::Negotiate(job));
        // SAFETY: shard 0's runs are disjoint from every worker's.
        unsafe {
            negotiate_shard(
                &job,
                CoresPtr(cores.as_mut_ptr()),
                cores.len(),
                0,
                &self.inline_runs,
                &self.shared.board,
            );
        }
        self.join();
        let board = &self.shared.board;
        let mut target = u64::MAX;
        let mut emitted = false;
        let mut drained = true;
        let mut rounds = 0u64;
        for s in 0..self.shards {
            target = target.min(board.result_h[s].load(Ordering::Acquire));
            drained &= board.result_w[s].load(Ordering::Acquire) >= SLOT_WATERMARK;
            let flags = board.result_flags[s].load(Ordering::Acquire);
            emitted |= flags >> 63 != 0;
            let max_round = (flags & (u64::MAX >> 1)) as usize;
            rounds += max_round as u64;
            board.reset(s, max_round);
        }
        NegotiationOutcome {
            target: Time::from_ps(target),
            emitted,
            drained,
            rounds,
        }
    }
}

impl Drop for EpochPool {
    fn drop(&mut self) {
        {
            let mut g = self.shared.ctrl.lock().expect("pool lock");
            g.quit = true;
        }
        self.shared.start.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// First grid instant at or below `x` (clamped to the anchor).
fn align_down_ps(x: u64, anchor: u64, period: u64) -> u64 {
    if x <= anchor {
        anchor
    } else {
        anchor + (x - anchor) / period * period
    }
}

/// One shard's side of the negotiation protocol (module docs): publishes
/// the round-0 watermark, then loops rounds of read-peers → compute
/// horizon → run own cores → publish, until the window bound, an
/// emission (own or a peer's), or round exhaustion.
///
/// # Safety
///
/// `runs` must be disjoint from every range any other thread accesses
/// through `cores` for the duration of the call, and inside
/// `[0, len)` of a live `Core` array.
unsafe fn negotiate_shard(
    job: &NegJob,
    cores: CoresPtr,
    len: usize,
    shard: usize,
    runs: &[(usize, usize)],
    board: &Board,
) {
    let watermark = |runs: &[(usize, usize)]| -> u64 {
        let mut w = u64::MAX;
        for &(lo, hi) in runs {
            debug_assert!(hi <= len, "shard run outside the core array");
            for i in lo..hi.min(len) {
                let core = unsafe { &*cores.0.add(i) };
                w = w.min(core.watermark_ps());
            }
        }
        w
    };
    let sb = job.serial_bound_ps;
    let mut last_w = watermark(runs);
    board.publish(shard, 0, last_w, false);
    let mut cleared = vec![false; job.shards];
    let mut last_h = job.anchor_ps;
    let mut emitted = false;
    let mut max_round = 0usize;
    for round in 1..=MAX_ROUNDS {
        // Horizon for this round from the previous round's watermarks.
        // Own watermark is read locally; peers' come from their slots
        // (blocking until published — deterministic, see module docs).
        let mut h = sb;
        let mut peer_stopped = false;
        for (p, cleared_p) in cleared.iter_mut().enumerate() {
            if *cleared_p {
                continue;
            }
            let (w, stopped) = if p == shard {
                (last_w, false)
            } else {
                board.wait_slot(p, round - 1)
            };
            if stopped {
                peer_stopped = true;
                break;
            }
            let arrival = w.saturating_add(job.latency_of(p, shard));
            if arrival >= sb {
                // Monotone watermarks: once a peer cannot reach us
                // inside the window it never can again — stop reading
                // (and stop waiting on) it.
                *cleared_p = true;
                continue;
            }
            h = h.min(align_down_ps(arrival, job.anchor_ps, job.period_ps));
        }
        if peer_stopped {
            // Do not run this round; propagate the stop so transitive
            // waiters (who may have cleared the original stopper) see it.
            board.publish(shard, round, last_w, true);
            max_round = round;
            break;
        }
        if h > last_h {
            let until = Time::from_ps(h);
            for &(lo, hi) in runs {
                for i in lo..hi.min(len) {
                    // SAFETY: disjoint-runs protocol (function contract).
                    let core = unsafe { &mut *cores.0.add(i) };
                    if !core.has_tx_pending() && core.run_epoch(until) {
                        emitted = true;
                    }
                }
            }
            last_h = h;
            last_w = watermark(runs);
        }
        board.publish(shard, round, last_w, emitted);
        max_round = round;
        if emitted || h >= sb {
            break;
        }
    }
    board.set_result(shard, last_h, last_w, emitted, max_round);
}

fn worker(shared: &Shared, shard: usize, runs: &[(usize, usize)]) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut g = shared.ctrl.lock().expect("pool lock");
            loop {
                if g.quit {
                    return;
                }
                if g.seq != seen {
                    seen = g.seq;
                    break g.job.expect("job published with sequence bump");
                }
                g = shared.start.wait(g).expect("pool lock");
            }
        };
        // SAFETY: `runs` is this worker's disjoint node set; the control
        // thread is blocked until `remaining` hits zero.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match job.kind {
            JobKind::Epoch(target) => {
                for &(lo, hi) in runs {
                    debug_assert!(hi <= job.len, "shard run outside the core array");
                    for i in lo..hi.min(job.len) {
                        let core = unsafe { &mut *job.cores.0.add(i) };
                        // The return value is intentionally unused: the
                        // control thread detects early-stopped cores by
                        // their pending output, which avoids sharing a
                        // result buffer.
                        let _ = core.run_epoch(target);
                    }
                }
            }
            JobKind::Negotiate(neg) => unsafe {
                negotiate_shard(&neg, job.cores, job.len, shard, runs, &shared.board);
            },
        }));
        let mut g = shared.ctrl.lock().expect("pool lock");
        if let Err(payload) = outcome {
            if g.panicked.is_none() {
                g.panicked = Some((shard, payload));
            }
            // A panicked negotiation may leave peers waiting on this
            // shard's next slot forever: publish stop flags so every
            // waiter unblocks before the control thread re-raises.
            if let JobKind::Negotiate(_) = job.kind {
                for round in 0..=MAX_ROUNDS {
                    let slot = shared.board.slot(shard, round);
                    if slot.load(Ordering::Relaxed) & SLOT_PUBLISHED == 0 {
                        shared.board.publish(shard, round, 0, true);
                    }
                }
                shared
                    .board
                    .set_result(shard, u64::MAX, 0, false, MAX_ROUNDS);
            }
        }
        g.remaining -= 1;
        if g.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow_sim::TimeDelta;
    use swallow_xcore::CoreConfig;

    #[allow(clippy::needless_range_loop)] // Marking and asserting per node reads better indexed.
    fn flat_cover(plan: &ShardPlan, cores: usize) {
        let mut covered = vec![false; cores];
        for s in 0..plan.shard_count() {
            for &(lo, hi) in plan.runs(s) {
                assert_eq!(lo % 2, 0, "shard must not split a package");
                assert_eq!(hi % 2, if hi == cores { hi % 2 } else { 0 });
                assert!(hi > lo);
                for n in lo..hi {
                    assert!(!covered[n], "node {n} covered twice");
                    covered[n] = true;
                    assert_eq!(plan.shard_of(n), s);
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "plan must cover every node");
    }

    #[test]
    fn plan_is_chip_aligned_and_covering() {
        for cores in [16usize, 32, 96, 480] {
            for threads in [1usize, 2, 3, 4, 7, 8, 64] {
                let plan = ShardPlan::new(cores, threads);
                assert!(plan.shard_count() <= threads.max(1));
                assert!(plan.shard_count() <= cores.div_ceil(2));
                flat_cover(&plan, cores);
                assert_eq!(plan.shard_of(0), 0);
                assert_eq!(plan.shard_of(cores - 1), plan.shard_count() - 1);
            }
        }
    }

    #[test]
    fn plan_balances_within_one_chip() {
        let plan = ShardPlan::new(480, 7);
        let sizes: Vec<usize> = (0..plan.shard_count()).map(|s| plan.len(s)).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= CORES_PER_CHIP, "{sizes:?}");
    }

    #[test]
    fn affinity_plan_matches_plain_on_one_slice() {
        let plan_a = ShardPlan::affinity(GridSpec::ONE_SLICE, 3);
        let plan_p = ShardPlan::new(16, 3);
        for s in 0..plan_a.shard_count() {
            assert_eq!(plan_a.runs(s), plan_p.runs(s));
        }
    }

    #[test]
    fn affinity_plan_keeps_slices_whole() {
        // 2×1 grid, two shards: each shard must own exactly one slice
        // (the boundary between them is the inter-slice FFC cable).
        let spec = GridSpec {
            slices_x: 2,
            slices_y: 1,
        };
        let plan = ShardPlan::affinity(spec, 2);
        assert_eq!(plan.shard_count(), 2);
        flat_cover(&plan, 32);
        for node in 0..32usize {
            let slice = spec.slice_of(swallow_isa::NodeId(node as u16));
            assert_eq!(
                plan.shard_of(node),
                slice,
                "node {node} must shard with its slice"
            );
        }
    }

    #[test]
    fn pool_advances_busy_cores_and_freezes_blocked_ones() {
        let busy = swallow_isa::Assembler::new()
            .assemble("ldc r0, 40\nlp: sub r0, r0, 1\n bt r0, lp\n freet")
            .expect("assembles");
        let mut cores: Vec<Core> = (0..8)
            .map(|n| Core::new(CoreConfig::swallow(swallow_isa::NodeId(n))))
            .collect();
        for core in &mut cores[..4] {
            core.load_program(&busy).expect("fits");
        }
        let plan = ShardPlan::new(cores.len(), 3);
        let pool = EpochPool::new(&plan);
        let target = Time::ZERO + TimeDelta::from_us(1);
        pool.run_epoch(&mut cores, target);
        for core in &cores[..4] {
            // Busy cores run to their halt edge inside the epoch.
            assert!(core.local_now() > Time::ZERO);
            assert!(core.local_now() <= target);
            assert!(core.is_quiescent());
            assert!(core.ledger().total().as_joules() > 0.0);
        }
        for core in &cores[4..] {
            // Unprogrammed cores are blocked on external input: the epoch
            // freezes them at their transition edge (here, time zero) so
            // the engine can observe the machine's quiescence instant.
            // The machine charges their idle span when it commits.
            assert_eq!(core.local_now(), Time::ZERO);
            assert_eq!(core.ledger().total().as_joules(), 0.0);
        }
        // A second epoch reuses the same workers and is a clean no-op on
        // the drained machine.
        pool.run_epoch(&mut cores, target + TimeDelta::from_us(1));
        assert!(cores.iter().all(|c| c.local_now() <= target));
    }

    #[test]
    fn negotiation_reports_a_drained_machine() {
        // Unloaded cores have no scheduled activity: every watermark is
        // infinite, all peers clear in round 1, each shard's horizon jumps
        // straight to the serial bound, and the window reports the
        // machine drained (cores stay frozen; the machine commits the
        // quiescence instant instead of the bound).
        let mut cores: Vec<Core> = (0..8)
            .map(|n| Core::new(CoreConfig::swallow(swallow_isa::NodeId(n))))
            .collect();
        let plan = ShardPlan::new(cores.len(), 4);
        let pool = EpochPool::new(&plan);
        let shards = plan.shard_count();
        let matrix = vec![TimeDelta::from_ns(32).as_ps(); shards * shards];
        let bound = Time::ZERO + TimeDelta::from_us(1);
        let outcome = pool.run_negotiated(
            &mut cores,
            &NegotiationParams {
                serial_bound: bound,
                anchor: Time::ZERO,
                period: TimeDelta::from_ps(2000),
                pair_latency_ps: &matrix,
            },
        );
        assert_eq!(outcome.target, bound);
        assert!(!outcome.emitted);
        assert!(outcome.drained, "all-blocked machine must report drained");
        assert!(outcome.rounds >= shards as u64, "every shard runs a round");
        for core in &cores {
            assert_eq!(core.local_now(), Time::ZERO, "blocked cores freeze");
        }
        // Back-to-back windows reuse the board (slots were reset).
        let bound2 = Time::ZERO + TimeDelta::from_us(2);
        let outcome2 = pool.run_negotiated(
            &mut cores,
            &NegotiationParams {
                serial_bound: bound2,
                anchor: Time::ZERO,
                period: TimeDelta::from_ps(2000),
                pair_latency_ps: &matrix,
            },
        );
        assert_eq!(outcome2.target, bound2);
        assert!(outcome2.drained);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn worker_panic_is_reraised_with_its_shard_id() {
        let plan = ShardPlan::new(8, 2); // shard 1 owns nodes 4..8
        let pool = EpochPool::new(&plan);
        // Hand the pool fewer cores than the plan covers: shard 1's run
        // trips its bounds debug_assert on the worker thread, and the
        // control thread must re-raise it naming the shard.
        let mut cores: Vec<Core> = (0..4)
            .map(|n| Core::new(CoreConfig::swallow(swallow_isa::NodeId(n))))
            .collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_epoch(&mut cores, Time::ZERO + TimeDelta::from_ns(50));
        }));
        let payload = result.expect_err("worker bounds assert must re-raise");
        let msg = payload
            .downcast_ref::<String>()
            .expect("re-raised payload carries the message");
        assert!(msg.contains("shard 1"), "panic must name the shard: {msg}");
    }
}
