//! Sharding and the host thread pool of the parallel engine.
//!
//! The conservative-epoch engine (see `machine.rs` and DESIGN.md §3.8)
//! splits the machine's cores into *shards* and advances each shard on a
//! host worker thread for one epoch at a time. Two pieces live here:
//!
//! * [`ShardPlan`] — the topology→shard mapping. Shards are always
//!   **chip-granular**: the two cores of an XS1-L2A package (nodes `2p`
//!   and `2p+1`) are never split across shards, so a package's internal
//!   links join cores whose epochs are planned together. Packages are
//!   dealt to shards in contiguous runs, which also keeps a slice's
//!   packages on as few shards as possible.
//! * [`EpochPool`] — a persistent pool of worker threads. Spawning
//!   threads per epoch would cost more than a short epoch simulates, so
//!   workers park on a condvar between epochs and are woken with a job
//!   describing the epoch target.
//!
//! # Observability under sharding
//!
//! Each core owns its `Tracer` (see `swallow_sim::trace`), so a core's
//! trace ring travels with the core onto whatever shard thread runs its
//! epoch — no shared sink, no lock, no cross-thread ordering to get
//! wrong. Per-core insertion order is deterministic because each core's
//! evolution inside an epoch is; `Machine::collect_trace` then merges
//! rings in fixed node order and stable-sorts by time, so the merged log
//! is bit-identical run after run at every thread count (pinned by
//! `tests/differential_trace.rs`).
//!
//! # Safety
//!
//! Each epoch the control thread publishes a raw pointer to the machine's
//! core array, runs shard 0 itself, and blocks until every worker reports
//! done. Workers index the array only through their own shard's disjoint
//! node ranges, so no two threads ever touch the same `Core`, and the
//! control thread touches only shard 0's range while workers are running.
//! This is the entire unsafe surface of the crate and it is contained in
//! this module.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use swallow_sim::Time;
use swallow_xcore::Core;

/// Cores per XS1-L2A package; shard boundaries never cut a package.
const CORES_PER_CHIP: usize = 2;

/// The topology→shard mapping: which contiguous node-id ranges each host
/// worker advances.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// One contiguous `[start, end)` node-id range per shard, in shard
    /// order. Ranges are chip-aligned, disjoint and cover `0..cores`.
    ranges: Vec<(usize, usize)>,
}

impl ShardPlan {
    /// Plans `threads` shards over `cores` cores (chip-granular). The
    /// effective shard count is capped at the package count; passing
    /// `threads == 0` asks for one shard per available host CPU.
    pub fn new(cores: usize, threads: usize) -> Self {
        let chips = cores.div_ceil(CORES_PER_CHIP).max(1);
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let shards = threads.min(chips).max(1);
        // Deal chips to shards as evenly as possible, first shards one
        // chip heavier — deterministic for any (cores, threads).
        let per = chips / shards;
        let extra = chips % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut chip = 0usize;
        for s in 0..shards {
            let take = per + usize::from(s < extra);
            let start = chip * CORES_PER_CHIP;
            chip += take;
            let end = (chip * CORES_PER_CHIP).min(cores);
            ranges.push((start, end));
        }
        ShardPlan { ranges }
    }

    /// Number of shards (== worker threads in the pool).
    pub fn shard_count(&self) -> usize {
        self.ranges.len()
    }

    /// The `[start, end)` node-id range of one shard.
    pub fn range(&self, shard: usize) -> (usize, usize) {
        self.ranges[shard]
    }

    /// Which shard a node belongs to.
    pub fn shard_of(&self, node: usize) -> usize {
        self.ranges
            .iter()
            .position(|&(s, e)| node >= s && node < e)
            .expect("node inside the planned range")
    }
}

/// A raw pointer to the core array, made `Send` so a job can cross into
/// the workers. Safety rests on the disjoint-range protocol documented at
/// module level.
#[derive(Clone, Copy)]
struct CoresPtr(*mut Core);
unsafe impl Send for CoresPtr {}

/// One epoch's work order.
#[derive(Clone, Copy)]
struct Job {
    cores: CoresPtr,
    len: usize,
    target: Time,
}

struct Ctrl {
    /// Epoch sequence number; bumped to wake the workers.
    seq: u64,
    /// Workers still running the current epoch.
    remaining: usize,
    job: Option<Job>,
    panicked: bool,
    quit: bool,
}

struct Shared {
    ctrl: Mutex<Ctrl>,
    start: Condvar,
    done: Condvar,
}

/// A persistent pool of epoch workers. Shard 0 always runs inline on the
/// control thread — it is idle while the workers run anyway, and on a
/// single shard this makes the engine entirely thread-free — so the pool
/// spawns `shards - 1` workers for shards `1..shards`.
pub struct EpochPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    shards: usize,
    /// Shard 0's range, run inline.
    inline_range: (usize, usize),
}

impl EpochPool {
    /// Spawns one worker per shard of `plan` beyond the first.
    pub fn new(plan: &ShardPlan) -> Self {
        let shared = Arc::new(Shared {
            ctrl: Mutex::new(Ctrl {
                seq: 0,
                remaining: 0,
                job: None,
                panicked: false,
                quit: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..plan.shard_count())
            .map(|s| {
                let shared = Arc::clone(&shared);
                let (lo, hi) = plan.range(s);
                std::thread::Builder::new()
                    .name(format!("swallow-shard-{s}"))
                    .spawn(move || worker(&shared, lo, hi))
                    .expect("spawn epoch worker")
            })
            .collect();
        EpochPool {
            shared,
            handles,
            shards: plan.shard_count(),
            inline_range: plan.range(0),
        }
    }

    /// Advances every core one epoch, sharded across the workers: each
    /// core runs [`Core::run_epoch`]`(target)` on its shard's thread
    /// (shard 0 on the calling thread). Blocks until all shards report
    /// done. On return every core has either reached `target` or stopped
    /// early with output pending (the caller reconciles those — see
    /// `Machine`).
    ///
    /// # Panics
    ///
    /// Re-raises a worker panic on the calling thread.
    pub fn run_epoch(&self, cores: &mut [Core], target: Time) {
        if self.shards > 1 {
            let mut g = self.shared.ctrl.lock().expect("pool lock");
            g.job = Some(Job {
                cores: CoresPtr(cores.as_mut_ptr()),
                len: cores.len(),
                target,
            });
            g.remaining = self.shards - 1;
            g.seq += 1;
            drop(g);
            self.shared.start.notify_all();
        }
        let (lo, hi) = self.inline_range;
        for core in &mut cores[lo..hi] {
            let _ = core.run_epoch(target);
        }
        if self.shards > 1 {
            let mut g = self.shared.ctrl.lock().expect("pool lock");
            while g.remaining > 0 {
                g = self.shared.done.wait(g).expect("pool lock");
            }
            g.job = None;
            assert!(!g.panicked, "a shard worker panicked during the epoch");
        }
    }
}

impl Drop for EpochPool {
    fn drop(&mut self) {
        {
            let mut g = self.shared.ctrl.lock().expect("pool lock");
            g.quit = true;
        }
        self.shared.start.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker(shared: &Shared, lo: usize, hi: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut g = shared.ctrl.lock().expect("pool lock");
            loop {
                if g.quit {
                    return;
                }
                if g.seq != seen {
                    seen = g.seq;
                    break g.job.expect("job published with sequence bump");
                }
                g = shared.start.wait(g).expect("pool lock");
            }
        };
        debug_assert!(hi <= job.len, "shard range outside the core array");
        // SAFETY: `lo..hi` is this worker's disjoint range; the control
        // thread is blocked in `run_epoch` until `remaining` hits zero.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for i in lo..hi.min(job.len) {
                let core = unsafe { &mut *job.cores.0.add(i) };
                // The return value is intentionally unused: the control
                // thread detects early-stopped cores by their pending
                // output, which avoids sharing a result buffer.
                let _ = core.run_epoch(job.target);
            }
        }));
        let mut g = shared.ctrl.lock().expect("pool lock");
        if outcome.is_err() {
            g.panicked = true;
        }
        g.remaining -= 1;
        if g.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow_sim::TimeDelta;
    use swallow_xcore::CoreConfig;

    #[test]
    fn plan_is_chip_aligned_and_covering() {
        for cores in [16usize, 32, 96, 480] {
            for threads in [1usize, 2, 3, 4, 7, 8, 64] {
                let plan = ShardPlan::new(cores, threads);
                assert!(plan.shard_count() <= threads.max(1));
                assert!(plan.shard_count() <= cores.div_ceil(2));
                let mut covered = 0;
                for s in 0..plan.shard_count() {
                    let (lo, hi) = plan.range(s);
                    assert_eq!(lo, covered, "ranges must be contiguous");
                    assert_eq!(lo % 2, 0, "shard must not split a package");
                    assert!(hi > lo);
                    covered = hi;
                }
                assert_eq!(covered, cores);
                assert_eq!(plan.shard_of(0), 0);
                assert_eq!(plan.shard_of(cores - 1), plan.shard_count() - 1);
            }
        }
    }

    #[test]
    fn plan_balances_within_one_chip() {
        let plan = ShardPlan::new(480, 7);
        let sizes: Vec<usize> = (0..plan.shard_count())
            .map(|s| {
                let (lo, hi) = plan.range(s);
                hi - lo
            })
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= CORES_PER_CHIP, "{sizes:?}");
    }

    #[test]
    fn pool_advances_idle_cores_to_target() {
        let mut cores: Vec<Core> = (0..8)
            .map(|n| Core::new(CoreConfig::swallow(swallow_isa::NodeId(n))))
            .collect();
        let plan = ShardPlan::new(cores.len(), 3);
        let pool = EpochPool::new(&plan);
        let target = Time::ZERO + TimeDelta::from_ns(100);
        pool.run_epoch(&mut cores, target);
        for core in &cores {
            // Idle cores skip analytically: local time lands within one
            // period of the target and idle energy was charged.
            assert!(core.local_now() <= target);
            assert!(target.since(core.local_now()) < TimeDelta::from_ns(2));
            assert!(core.ledger().total().as_joules() > 0.0);
        }
        // A second epoch reuses the same workers.
        let target2 = Time::ZERO + TimeDelta::from_ns(200);
        pool.run_epoch(&mut cores, target2);
        for core in &cores {
            assert!(core.local_now() > target);
        }
    }
}
