//! Physical assembly of the Swallow platform.
//!
//! This crate turns the component models — [`swallow_xcore`] cores,
//! [`swallow_noc`] switches/links and the [`swallow_energy`] power tree —
//! into the machine the paper describes:
//!
//! * [`topology`] — XS1-L2A dual-core packages, 16-core slices with the
//!   unwoven-lattice wiring (Fig. 7), grids of slices joined by FFC
//!   cables, optional connector-yield fault injection (§IV.B),
//! * [`ethernet`] — the 80 Mbit/s Ethernet bridge node (§V.E),
//! * [`power`] — the five-SMPS power tree with shunt measurement points,
//!   ADC daughter-boards and the probe feedback loop (§II),
//! * [`machine`] — [`Machine`]: everything assembled and clocked in
//!   lock-step,
//! * [`shard`] — the chip-granular shard plan and host thread pool
//!   behind the parallel conservative-epoch engine,
//! * [`metrics`] — [`MetricsHub`]: per-supply energy time series sampled
//!   on the power-monitor cadence (the observability layer's numbers),
//! * `resilience` — the scheduled-fault cursor and recovery bookkeeping
//!   behind [`MachineConfig`]'s `faults` plan (DESIGN.md §3.10).
//!
//! ```
//! use swallow_board::{Machine, MachineConfig};
//! use swallow_sim::TimeDelta;
//!
//! let mut machine = Machine::new(MachineConfig::one_slice());
//! machine.run_for(TimeDelta::from_us(2));
//! // Sixteen idle cores still burn static + clock power.
//! assert!(machine.machine_ledger().total().as_joules() > 0.0);
//! ```

pub mod ethernet;
pub mod machine;
pub mod metrics;
pub mod power;
mod resilience;
pub mod shard;
mod snapshot;
pub mod topology;

pub use ethernet::{BridgeFrame, BridgeStats, EthernetBridge};
pub use machine::{epoch_mode_default, EngineMode, EpochMode, Machine, MachineConfig, RouterKind};
pub use metrics::{MetricsHub, SupplyRow};
pub use power::PowerMonitor;
pub use shard::{EpochPool, NegotiationOutcome, NegotiationParams, ShardPlan};
pub use topology::{GridSpec, TopologyOptions, CORES_PER_SLICE};
