//! The Ethernet bridge module (§V.E).
//!
//! The bridge attaches to a reserved South link and is addressable as an
//! ordinary network node; it forwards everything between the Swallow
//! network and a host. Each bridge sustains up to 80 Mbit/s of full-duplex
//! data — the pacing modelled here — and is how programs and data enter
//! and leave a physical Swallow machine.

use crate::snapshot;
use std::collections::VecDeque;
use swallow_isa::token::word_to_tokens;
use swallow_isa::{ControlToken, NodeId, ResType, ResourceId, Token};
use swallow_sim::{ByteReader, ByteWriter, CodecError, Time, TimeDelta};

/// Bridge throughput cap per direction (bits per second).
pub const BRIDGE_RATE_BPS: u64 = 80_000_000;

/// Time the bridge needs per eight-bit token at 80 Mbit/s.
pub const BRIDGE_TOKEN_TIME: TimeDelta = TimeDelta::from_ns(100);

/// An Ethernet bridge: a pseudo-core whose "channel end 0" is the host.
#[derive(Debug)]
pub struct EthernetBridge {
    node: NodeId,
    now: Time,
    next_tx: Time,
    tx: VecDeque<(ResourceId, Token)>,
    rx: Vec<Token>,
}

impl EthernetBridge {
    /// Creates a bridge occupying the given network node.
    pub fn new(node: NodeId) -> Self {
        EthernetBridge {
            node,
            now: Time::ZERO,
            next_tx: Time::ZERO,
            tx: VecDeque::new(),
            rx: Vec::new(),
        }
    }

    /// The bridge's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The resource id cores aim `setd` at to reach the host.
    pub fn chanend(&self) -> ResourceId {
        ResourceId::new(self.node, 0, ResType::Chanend)
    }

    /// Updates the bridge's notion of time (drives the 80 Mbit/s pacing).
    pub fn set_now(&mut self, now: Time) {
        self.now = now;
    }

    /// True when pacing allows the next token out.
    pub fn can_transmit(&self) -> bool {
        self.next_tx <= self.now
    }

    /// Queues a 32-bit word for a destination chanend in the network.
    pub fn send_word(&mut self, dest: ResourceId, word: u32) {
        for t in word_to_tokens(word) {
            self.tx.push_back((dest, t));
        }
    }

    /// Queues a control token (e.g. END to close the route).
    pub fn send_ct(&mut self, dest: ResourceId, ct: ControlToken) {
        self.tx.push_back((dest, Token::Ctrl(ct)));
    }

    /// Tokens queued but not yet on the network.
    pub fn tx_backlog(&self) -> usize {
        self.tx.len()
    }

    /// The instant pacing next allows a token out (may be in the past).
    /// With [`EthernetBridge::tx_backlog`], this is the bridge's
    /// contribution to the machine's next-activity estimate.
    pub fn next_tx_at(&self) -> Time {
        self.next_tx
    }

    /// Everything received from the network so far.
    pub fn received(&self) -> &[Token] {
        &self.rx
    }

    /// Received payload reassembled into words (control tokens skipped).
    pub fn received_words(&self) -> Vec<u32> {
        let bytes: Vec<u8> = self.rx.iter().filter_map(|t| t.data()).collect();
        bytes
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Clears the receive archive, returning its length.
    pub fn drain_received(&mut self) -> usize {
        let n = self.rx.len();
        self.rx.clear();
        n
    }

    // Endpoint hooks used by the machine's `CoreEndpoints` impl.

    pub(crate) fn ep_tx_front(&self) -> Option<(ResourceId, Token)> {
        if self.can_transmit() {
            self.tx.front().copied()
        } else {
            None
        }
    }

    pub(crate) fn ep_tx_pop(&mut self) -> Option<(ResourceId, Token)> {
        if !self.can_transmit() {
            return None;
        }
        let item = self.tx.pop_front()?;
        self.next_tx = self.now + BRIDGE_TOKEN_TIME;
        Some(item)
    }

    pub(crate) fn ep_deliver(&mut self, token: Token) {
        self.rx.push(token);
    }

    // Snapshot codec (the node id is topology-derived, not serialized).

    pub(crate) fn encode_state(&self, w: &mut ByteWriter) {
        snapshot::write_time(w, self.now);
        snapshot::write_time(w, self.next_tx);
        w.u64(self.tx.len() as u64);
        for &(dest, token) in &self.tx {
            w.u32(dest.raw());
            snapshot::write_token(w, token);
        }
        w.u64(self.rx.len() as u64);
        for &token in &self.rx {
            snapshot::write_token(w, token);
        }
    }

    pub(crate) fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.now = snapshot::read_time(r)?;
        self.next_tx = snapshot::read_time(r)?;
        self.tx.clear();
        for _ in 0..r.len_prefixed(6)? {
            let dest = ResourceId::from_raw(r.u32()?);
            let token = snapshot::read_token(r)?;
            self.tx.push_back((dest, token));
        }
        self.rx.clear();
        for _ in 0..r.len_prefixed(2)? {
            self.rx.push(snapshot::read_token(r)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacing_enforces_80mbps() {
        let mut b = EthernetBridge::new(NodeId(16));
        let dest = ResourceId::new(NodeId(0), 0, ResType::Chanend);
        b.send_word(dest, 0xAABB_CCDD);
        b.set_now(Time::ZERO);
        assert!(b.ep_tx_pop().is_some());
        // Second token refused until 100 ns later.
        assert!(b.ep_tx_pop().is_none());
        b.set_now(Time::from_ps(99_000));
        assert!(b.ep_tx_pop().is_none());
        b.set_now(Time::from_ps(100_000));
        assert!(b.ep_tx_pop().is_some());
    }

    #[test]
    fn word_reassembly() {
        let mut b = EthernetBridge::new(NodeId(16));
        for t in word_to_tokens(0x0102_0304) {
            b.ep_deliver(t);
        }
        b.ep_deliver(Token::Ctrl(ControlToken::END));
        assert_eq!(b.received_words(), vec![0x0102_0304]);
        assert_eq!(b.drain_received(), 5);
        assert!(b.received().is_empty());
    }

    #[test]
    fn rate_constant_is_consistent() {
        // 8 bits / 100 ns = 80 Mbit/s.
        let bits_per_sec = 8.0 / BRIDGE_TOKEN_TIME.as_secs_f64();
        assert!((bits_per_sec - BRIDGE_RATE_BPS as f64).abs() < 1.0);
    }
}
