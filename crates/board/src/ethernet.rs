//! The Ethernet bridge module (§V.E).
//!
//! The bridge attaches to a reserved South link and is addressable as an
//! ordinary network node; it forwards everything between the Swallow
//! network and a host. Each bridge sustains up to 80 Mbit/s of full-duplex
//! data — the pacing modelled here — and is how programs and data enter
//! and leave a physical Swallow machine.
//!
//! For multi-tenant use (many machines behind one traffic front-end, the
//! `swallow-fleet` layer) the bridge additionally speaks *frames*: a frame
//! is a run of words closed by an END control token. Egress frames are
//! admission-controlled against a configurable ingress capacity — the
//! front-end sees an explicit rejection instead of silent queue growth —
//! and ingress frames are reassembled with the machine's tag and the exact
//! simulated instant their END token arrived, so per-request latency can
//! be measured without polling.

use crate::snapshot;
use std::collections::VecDeque;
use swallow_isa::token::word_to_tokens;
use swallow_isa::{ControlToken, NodeId, ResType, ResourceId, Token};
use swallow_sim::{ByteReader, ByteWriter, CodecError, Time, TimeDelta};

/// Bridge throughput cap per direction (bits per second).
pub const BRIDGE_RATE_BPS: u64 = 80_000_000;

/// Time the bridge needs per eight-bit token at 80 Mbit/s.
pub const BRIDGE_TOKEN_TIME: TimeDelta = TimeDelta::from_ns(100);

/// Traffic counters for one bridge: the observable counterpart of the
/// admission control, surfaced through `MetricsReport` so a saturated
/// bridge shows up in reports instead of as silent queue growth.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BridgeStats {
    /// Frames accepted for transmission into the network.
    pub frames_sent: u64,
    /// Complete frames received from the network (END-terminated).
    pub frames_received: u64,
    /// Frames refused by ingress admission control (queue at capacity).
    pub frames_rejected: u64,
    /// Highest transmit-queue depth observed, in tokens.
    pub peak_backlog: u64,
}

/// One END-terminated frame received from the network, stamped with the
/// bridge's machine tag and the delivery instant of its closing token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BridgeFrame {
    /// The owning machine's tag (see [`EthernetBridge::set_tag`]).
    pub tag: u32,
    /// Payload words in arrival order.
    pub words: Vec<u32>,
    /// Simulated instant the END token reached the bridge.
    pub completed_at: Time,
}

/// An Ethernet bridge: a pseudo-core whose "channel end 0" is the host.
#[derive(Debug)]
pub struct EthernetBridge {
    node: NodeId,
    now: Time,
    next_tx: Time,
    tx: VecDeque<(ResourceId, Token)>,
    rx: Vec<Token>,
    /// Machine tag stamped on reassembled ingress frames.
    tag: u32,
    /// Admission bound on the transmit queue, in tokens.
    capacity: u64,
    stats: BridgeStats,
    /// Bytes of the ingress frame currently being assembled.
    partial: Vec<u8>,
    /// Completed ingress frames awaiting the host.
    frames: VecDeque<BridgeFrame>,
}

impl EthernetBridge {
    /// Creates a bridge occupying the given network node.
    pub fn new(node: NodeId) -> Self {
        EthernetBridge {
            node,
            now: Time::ZERO,
            next_tx: Time::ZERO,
            tx: VecDeque::new(),
            rx: Vec::new(),
            tag: 0,
            capacity: u64::MAX,
            stats: BridgeStats::default(),
            partial: Vec::new(),
            frames: VecDeque::new(),
        }
    }

    /// The bridge's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The resource id cores aim `setd` at to reach the host.
    pub fn chanend(&self) -> ResourceId {
        ResourceId::new(self.node, 0, ResType::Chanend)
    }

    /// Updates the bridge's notion of time (drives the 80 Mbit/s pacing).
    pub fn set_now(&mut self, now: Time) {
        self.now = now;
    }

    /// True when pacing allows the next token out.
    pub fn can_transmit(&self) -> bool {
        self.next_tx <= self.now
    }

    /// Sets the machine tag stamped on ingress frames — how a fleet
    /// front-end attributes replies when it merges many bridges' streams.
    pub fn set_tag(&mut self, tag: u32) {
        self.tag = tag;
    }

    /// The machine tag.
    pub fn tag(&self) -> u32 {
        self.tag
    }

    /// Bounds the transmit queue to `tokens`; frames that would overflow
    /// it are rejected by [`EthernetBridge::send_frame`] and counted in
    /// [`BridgeStats::frames_rejected`]. Unlimited by default.
    pub fn set_ingress_capacity(&mut self, tokens: u64) {
        self.capacity = tokens;
    }

    /// Traffic counters.
    pub fn stats(&self) -> BridgeStats {
        self.stats
    }

    fn note_backlog(&mut self) {
        self.stats.peak_backlog = self.stats.peak_backlog.max(self.tx.len() as u64);
    }

    /// Queues a 32-bit word for a destination chanend in the network.
    pub fn send_word(&mut self, dest: ResourceId, word: u32) {
        for t in word_to_tokens(word) {
            self.tx.push_back((dest, t));
        }
        self.note_backlog();
    }

    /// Queues a control token (e.g. END to close the route).
    pub fn send_ct(&mut self, dest: ResourceId, ct: ControlToken) {
        self.tx.push_back((dest, Token::Ctrl(ct)));
        self.note_backlog();
    }

    /// Queues a whole END-terminated frame for `dest`, subject to the
    /// ingress capacity: when the frame's tokens would push the transmit
    /// queue past the bound, nothing is queued, the rejection is counted
    /// and `false` is returned — explicit backpressure instead of
    /// unbounded growth.
    pub fn send_frame(&mut self, dest: ResourceId, words: &[u32]) -> bool {
        let needed = words.len() as u64 * 4 + 1;
        if self.tx.len() as u64 + needed > self.capacity {
            self.stats.frames_rejected += 1;
            return false;
        }
        for &w in words {
            self.send_word(dest, w);
        }
        self.send_ct(dest, ControlToken::END);
        self.stats.frames_sent += 1;
        true
    }

    /// Tokens queued but not yet on the network.
    pub fn tx_backlog(&self) -> usize {
        self.tx.len()
    }

    /// The instant pacing next allows a token out (may be in the past).
    /// With [`EthernetBridge::tx_backlog`], this is the bridge's
    /// contribution to the machine's next-activity estimate.
    pub fn next_tx_at(&self) -> Time {
        self.next_tx
    }

    /// Everything received from the network so far.
    pub fn received(&self) -> &[Token] {
        &self.rx
    }

    /// Received payload reassembled into words (control tokens skipped).
    pub fn received_words(&self) -> Vec<u32> {
        let bytes: Vec<u8> = self.rx.iter().filter_map(|t| t.data()).collect();
        bytes
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Clears the receive archive, returning its length.
    pub fn drain_received(&mut self) -> usize {
        let n = self.rx.len();
        self.rx.clear();
        n
    }

    /// Completed ingress frames not yet taken by the host.
    pub fn pending_frames(&self) -> usize {
        self.frames.len()
    }

    /// Takes the oldest completed ingress frame.
    pub fn pop_frame(&mut self) -> Option<BridgeFrame> {
        self.frames.pop_front()
    }

    // Endpoint hooks used by the machine's `CoreEndpoints` impl.

    pub(crate) fn ep_tx_front(&self) -> Option<(ResourceId, Token)> {
        if self.can_transmit() {
            self.tx.front().copied()
        } else {
            None
        }
    }

    pub(crate) fn ep_tx_pop(&mut self) -> Option<(ResourceId, Token)> {
        if !self.can_transmit() {
            return None;
        }
        let item = self.tx.pop_front()?;
        self.next_tx = self.now + BRIDGE_TOKEN_TIME;
        Some(item)
    }

    pub(crate) fn ep_deliver(&mut self, token: Token) {
        if let Some(byte) = token.data() {
            self.partial.push(byte);
        } else if token == Token::Ctrl(ControlToken::END) {
            let words = self
                .partial
                .chunks_exact(4)
                .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            self.partial.clear();
            self.frames.push_back(BridgeFrame {
                tag: self.tag,
                words,
                completed_at: self.now,
            });
            self.stats.frames_received += 1;
        }
        self.rx.push(token);
    }

    // Snapshot codec (the node id is topology-derived, not serialized).

    pub(crate) fn encode_state(&self, w: &mut ByteWriter) {
        snapshot::write_time(w, self.now);
        snapshot::write_time(w, self.next_tx);
        w.u64(self.tx.len() as u64);
        for &(dest, token) in &self.tx {
            w.u32(dest.raw());
            snapshot::write_token(w, token);
        }
        w.u64(self.rx.len() as u64);
        for &token in &self.rx {
            snapshot::write_token(w, token);
        }
        w.u32(self.tag);
        w.u64(self.capacity);
        w.u64(self.stats.frames_sent);
        w.u64(self.stats.frames_received);
        w.u64(self.stats.frames_rejected);
        w.u64(self.stats.peak_backlog);
        w.u64(self.partial.len() as u64);
        for &b in &self.partial {
            w.u8(b);
        }
        w.u64(self.frames.len() as u64);
        for frame in &self.frames {
            w.u32(frame.tag);
            snapshot::write_time(w, frame.completed_at);
            w.u64(frame.words.len() as u64);
            for &word in &frame.words {
                w.u32(word);
            }
        }
    }

    pub(crate) fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.now = snapshot::read_time(r)?;
        self.next_tx = snapshot::read_time(r)?;
        self.tx.clear();
        for _ in 0..r.len_prefixed(6)? {
            let dest = ResourceId::from_raw(r.u32()?);
            let token = snapshot::read_token(r)?;
            self.tx.push_back((dest, token));
        }
        self.rx.clear();
        for _ in 0..r.len_prefixed(2)? {
            self.rx.push(snapshot::read_token(r)?);
        }
        self.tag = r.u32()?;
        self.capacity = r.u64()?;
        self.stats = BridgeStats {
            frames_sent: r.u64()?,
            frames_received: r.u64()?,
            frames_rejected: r.u64()?,
            peak_backlog: r.u64()?,
        };
        self.partial.clear();
        for _ in 0..r.len_prefixed(1)? {
            self.partial.push(r.u8()?);
        }
        self.frames.clear();
        for _ in 0..r.len_prefixed(8)? {
            let tag = r.u32()?;
            let completed_at = snapshot::read_time(r)?;
            let mut words = Vec::new();
            for _ in 0..r.len_prefixed(4)? {
                words.push(r.u32()?);
            }
            self.frames.push_back(BridgeFrame {
                tag,
                words,
                completed_at,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacing_enforces_80mbps() {
        let mut b = EthernetBridge::new(NodeId(16));
        let dest = ResourceId::new(NodeId(0), 0, ResType::Chanend);
        b.send_word(dest, 0xAABB_CCDD);
        b.set_now(Time::ZERO);
        assert!(b.ep_tx_pop().is_some());
        // Second token refused until 100 ns later.
        assert!(b.ep_tx_pop().is_none());
        b.set_now(Time::from_ps(99_000));
        assert!(b.ep_tx_pop().is_none());
        b.set_now(Time::from_ps(100_000));
        assert!(b.ep_tx_pop().is_some());
    }

    #[test]
    fn word_reassembly() {
        let mut b = EthernetBridge::new(NodeId(16));
        for t in word_to_tokens(0x0102_0304) {
            b.ep_deliver(t);
        }
        b.ep_deliver(Token::Ctrl(ControlToken::END));
        assert_eq!(b.received_words(), vec![0x0102_0304]);
        assert_eq!(b.drain_received(), 5);
        assert!(b.received().is_empty());
    }

    #[test]
    fn rate_constant_is_consistent() {
        // 8 bits / 100 ns = 80 Mbit/s.
        let bits_per_sec = 8.0 / BRIDGE_TOKEN_TIME.as_secs_f64();
        assert!((bits_per_sec - BRIDGE_RATE_BPS as f64).abs() < 1.0);
    }

    #[test]
    fn frames_carry_tag_and_completion_instant() {
        let mut b = EthernetBridge::new(NodeId(16));
        b.set_tag(7);
        b.set_now(Time::from_ps(1_000));
        for t in word_to_tokens(41) {
            b.ep_deliver(t);
        }
        for t in word_to_tokens(42) {
            b.ep_deliver(t);
        }
        b.set_now(Time::from_ps(5_000));
        b.ep_deliver(Token::Ctrl(ControlToken::END));
        assert_eq!(b.pending_frames(), 1);
        let frame = b.pop_frame().expect("framed");
        assert_eq!(frame.tag, 7);
        assert_eq!(frame.words, vec![41, 42]);
        assert_eq!(frame.completed_at, Time::from_ps(5_000));
        assert_eq!(b.stats().frames_received, 1);
        assert!(b.pop_frame().is_none());
    }

    #[test]
    fn ingress_capacity_rejects_and_counts() {
        let mut b = EthernetBridge::new(NodeId(16));
        let dest = ResourceId::new(NodeId(0), 0, ResType::Chanend);
        // Two words + END = 9 tokens; cap to exactly one frame.
        b.set_ingress_capacity(9);
        assert!(b.send_frame(dest, &[1, 2]));
        assert!(!b.send_frame(dest, &[3, 4]), "queue at capacity");
        let stats = b.stats();
        assert_eq!(stats.frames_sent, 1);
        assert_eq!(stats.frames_rejected, 1);
        assert_eq!(stats.peak_backlog, 9);
        assert_eq!(b.tx_backlog(), 9);
        // Draining the queue re-opens admission.
        b.set_now(Time::from_ps(u64::MAX / 2));
        while b.ep_tx_pop().is_some() {
            b.set_now(b.next_tx_at());
        }
        assert!(b.send_frame(dest, &[3, 4]));
        assert_eq!(b.stats().frames_sent, 2);
    }

    #[test]
    fn codec_round_trips_frame_state() {
        let mut b = EthernetBridge::new(NodeId(16));
        b.set_tag(3);
        b.set_ingress_capacity(100);
        let dest = ResourceId::new(NodeId(2), 0, ResType::Chanend);
        assert!(b.send_frame(dest, &[10, 20]));
        for t in word_to_tokens(5) {
            b.ep_deliver(t);
        }
        b.ep_deliver(Token::Ctrl(ControlToken::END));
        // A half-assembled ingress frame survives the round trip too.
        for t in word_to_tokens(6) {
            b.ep_deliver(t);
        }
        let mut w = ByteWriter::new();
        b.encode_state(&mut w);
        let bytes = w.finish();
        let mut restored = EthernetBridge::new(NodeId(16));
        let mut r = ByteReader::new(&bytes);
        restored.restore_state(&mut r).expect("restores");
        assert_eq!(restored.tag(), 3);
        assert_eq!(restored.stats(), b.stats());
        assert_eq!(restored.tx_backlog(), b.tx_backlog());
        assert_eq!(restored.pending_frames(), 1);
        assert_eq!(restored.pop_frame(), b.pop_frame());
        // The partial frame closes identically on both sides.
        restored.ep_deliver(Token::Ctrl(ControlToken::END));
        b.ep_deliver(Token::Ctrl(ControlToken::END));
        assert_eq!(restored.pop_frame(), b.pop_frame());
        // Re-encoding is byte-identical (snapshot losslessness).
        let mut w2 = ByteWriter::new();
        b.encode_state(&mut w2);
        let mut w3 = ByteWriter::new();
        // Rebuild b's state from bytes once more for a fair comparison.
        let mut again = EthernetBridge::new(NodeId(16));
        let mut r2 = ByteReader::new(&bytes);
        again.restore_state(&mut r2).expect("restores");
        again.encode_state(&mut w3);
        assert_eq!(w3.finish(), bytes);
    }
}
